"""End-to-end pipeline benchmark: generate→run→ingest→archive→analyze.

The PageRank Pipeline Benchmark argues the whole pipeline is the unit
that must be fast; this module times Granula's own
Monitoring→Archiving→Analysis loop across the experiment suite's run
matrix under the two accelerators this repository ships:

- **end-to-end**: the suite's workload runs executed serially against a
  cold artifact cache, then again with a warm cache fanned out across
  ``--jobs`` worker processes.  Both phases produce byte-identical
  archives (asserted), so the speedup is pure overhead removal.
- **ingest/archive**: the monitoring→archive stage alone — the legacy
  per-record path (field-map parse, one object per event, nested v2
  JSON) against the streaming columnar path (fixed-layout parse into
  column buffers, columnar tree build, v3 JSON) over the same platform
  log.
- **columnar query**: warm archive queries answered from the mmap'd
  ``.gcol`` binary sidecar (:mod:`repro.core.archive.columnar`)
  against the same battery run by materializing the JSON operation
  tree — the zero-copy hot path the archive service takes.
- **fan-out RSS**: the parallel harness's shared-memory graph pages
  (:mod:`repro.graph.shm`) measured via PSS — doubling the worker
  count must grow the dataset's physical residency sublinearly.

The gate metrics distilled from one run (speedup ratios, not absolute
times) feed the repo-root ``BENCH_pipeline.json`` perf-trajectory
baseline; :func:`compare_pipeline_bench` flags any metric that
regressed beyond tolerance (``granula bench --gate``).

``GRANULA_BENCH_SMALL=1`` (or ``small=True``) shrinks the matrix to
dg100-scaled for CI smoke runs.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import re
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.cache import CACHE_DIR_ENV
from repro.core.archive.builder import build_archive
from repro.core.archive.serialize import archive_from_json, archive_to_json
from repro.core.monitor.logparser import parse_log_columns, parse_log_report
from repro.core.monitor.session import MonitoredRun
from repro.core.process import EvaluationIteration
from repro.workloads.datasets import clear_cache
from repro.workloads.parallel import RunRequest
from repro.workloads.runner import WorkloadRunner
from repro.workloads.spec import WorkloadSpec

#: Environment switch shrinking the benchmark to CI-smoke size.
SMALL_ENV = "GRANULA_BENCH_SMALL"

#: The four platforms of the cross-platform experiment.
PLATFORMS = ("Giraph", "PowerGraph", "Hadoop", "PGX.D")


def small_mode() -> bool:
    """Whether the environment asks for the CI-smoke matrix."""
    return bool(os.environ.get(SMALL_ENV))


def bench_requests(small: bool = False) -> List[RunRequest]:
    """The run matrix the benchmark times.

    Full mode mirrors the experiment suite's distinct workload runs
    (see :func:`repro.experiments.report.experiment_runs`): the four
    dg1000-scaled platform BFS runs plus the dg100-scaled fault
    scenarios.  Small mode keeps the same shape on dg100-scaled only.
    """
    from repro.experiments.ext_faults import transient_plan

    dataset = "dg100-scaled" if small else "dg1000-scaled"
    runner = WorkloadRunner()
    giraph_nodes = runner.platform("Giraph").cluster.node_names
    requests = [
        RunRequest(WorkloadSpec(platform, "bfs", dataset, workers=8))
        for platform in PLATFORMS
    ]
    giraph_100 = WorkloadSpec("Giraph", "bfs", "dg100-scaled", workers=8)
    requests.append(
        RunRequest(giraph_100, faults=transient_plan(giraph_nodes))
    )
    if not small:
        from repro.experiments.ext_faults import (
            dead_node_plan,
            loader_crash_plan,
        )
        from repro.experiments.ext_salvage import salvage_plan

        powergraph_100 = WorkloadSpec("PowerGraph", "bfs", "dg100-scaled",
                                      workers=8)
        requests.extend([
            RunRequest(giraph_100),
            RunRequest(giraph_100, faults=dead_node_plan(giraph_nodes)),
            RunRequest(powergraph_100, faults=loader_crash_plan()),
            RunRequest(giraph_100, faults=salvage_plan()),
        ])
    return requests


@contextmanager
def _cache_dir(path: Union[str, Path]):
    """Point the artifact cache at ``path`` for the duration."""
    old = os.environ.get(CACHE_DIR_ENV)
    os.environ[CACHE_DIR_ENV] = str(path)
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(CACHE_DIR_ENV, None)
        else:
            os.environ[CACHE_DIR_ENV] = old


def _timed_suite(
    requests: List[RunRequest],
    jobs: Optional[int],
) -> Tuple[float, List[EvaluationIteration]]:
    """Run the matrix on a fresh runner; in-process caches cleared."""
    clear_cache()
    runner = WorkloadRunner()
    t0 = time.perf_counter()
    iterations = runner.run_many(requests, jobs=jobs)
    return time.perf_counter() - t0, iterations


def _bench_ingest(
    iteration: EvaluationIteration,
    runner: WorkloadRunner,
    platform: str,
    reps: int,
) -> Dict[str, Any]:
    """Legacy vs streaming monitoring→archive stage over one job log."""
    run = iteration.run
    result = run.result
    model = runner.library.get(platform)

    t0 = time.perf_counter()
    for _ in range(reps):
        records, report = parse_log_report(result.log_lines)
        legacy = MonitoredRun(
            result=result,
            records=records,
            env_series=run.env_series,
            env_samples=run.env_samples,
            node_names=run.node_names,
            parse_report=report,
        )
        old_archive, _ = build_archive(legacy, model)
        old_text = archive_to_json(old_archive, version=2)
    old_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(reps):
        columns, report = parse_log_columns(result.log_lines)
        streaming = MonitoredRun(
            result=result,
            records=columns.records(),
            env_series=run.env_series,
            env_samples=run.env_samples,
            node_names=run.node_names,
            parse_report=report,
            columns=columns,
        )
        new_archive, _ = build_archive(streaming, model)
        new_text = archive_to_json(new_archive)
    new_s = time.perf_counter() - t0

    # Both paths must agree on content (layout differs by design).
    same = (
        archive_to_json(new_archive, version=2) == old_text
        and archive_to_json(old_archive) == new_text
    )
    return {
        "job": result.job_id,
        "log_lines": len(result.log_lines),
        "reps": reps,
        "legacy_s": round(old_s, 4),
        "streaming_s": round(new_s, 4),
        "speedup": round(old_s / new_s, 2) if new_s else None,
        "identical_archives": same,
    }


def _query_battery(query) -> Tuple[Any, ...]:
    """The aggregation battery both query paths must answer identically.

    Works unchanged against a tree :class:`ArchiveQuery` and a
    :class:`ColumnarArchiveView` — the selector/aggregation surface is
    shared by name, and every result here is shape-identical.
    """
    return (
        len(query),
        query.total(),
        query.durations(),
        query.mission("Superstep").total(),
        query.mission("Superstep").values("Duration"),
        query.actor("Worker").total(),
    )


def _bench_columnar_query(
    iteration: EvaluationIteration, reps: int
) -> Dict[str, Any]:
    """Warm queries: mmap'd ``.gcol`` sidecar vs JSON tree build.

    Per rep each path starts from the stored bytes — read + verify +
    build the query surface + answer the battery — exactly what the
    archive service does on a cache miss.  Objects are rebuilt every
    rep; only the page cache is warm.
    """
    from repro.core.archive.columnar import load_sidecar
    from repro.core.archive.query import ArchiveQuery
    from repro.core.archive.store import ArchiveStore

    archive = iteration.archive
    with tempfile.TemporaryDirectory(prefix="granula-gcol-") as tmp:
        store = ArchiveStore(tmp)
        store.save(archive, overwrite=True)
        json_path = Path(tmp) / f"{archive.job_id}.json"
        gcol_path = store.sidecar_path(archive.job_id)
        if not gcol_path.exists():
            return {"skipped": "archive produced no .gcol sidecar"}

        # One untimed warmup per path (page cache, import side effects),
        # then the timed reps.
        _query_battery(ArchiveQuery(archive_from_json(json_path.read_text())))
        t0 = time.perf_counter()
        for _ in range(reps):
            tree = archive_from_json(json_path.read_text())
            tree_results = _query_battery(ArchiveQuery(tree))
        tree_s = time.perf_counter() - t0

        warmup = load_sidecar(gcol_path)
        _query_battery(warmup)
        warmup.close()
        t0 = time.perf_counter()
        for _ in range(reps):
            view = load_sidecar(gcol_path)
            gcol_results = _query_battery(view)
            view.close()
        gcol_s = time.perf_counter() - t0

    return {
        "job": archive.job_id,
        "operations": len(list(archive.walk())),
        "reps": reps,
        "tree_s": round(tree_s, 4),
        "gcol_s": round(gcol_s, 4),
        "speedup": round(tree_s / gcol_s, 2) if gcol_s else None,
        "identical_results": tree_results == gcol_results,
    }


# -- fan-out RSS ----------------------------------------------------------

_PSS_LINE = re.compile(r"^Pss:\s+(\d+) kB", re.MULTILINE)
_MAP_HEADER = re.compile(r"^[0-9a-f]+-[0-9a-f]+\s", re.ASCII)


def _self_pss_kb() -> Optional[int]:
    """This process's proportional set size, or None off-Linux."""
    try:
        text = Path("/proc/self/smaps_rollup").read_text()
    except OSError:
        return None
    found = _PSS_LINE.search(text)
    return int(found.group(1)) if found else None


def _shm_pss_kb() -> Optional[int]:
    """PSS of this process's shared-memory graph mappings.

    Sums the ``Pss:`` of every ``/dev/shm/psm_*`` mapping — the POSIX
    segments :mod:`repro.graph.shm` creates.  Shared pages are divided
    across attaching processes, so summing this over all workers
    measures the *physical* footprint of the dataset, which is exactly
    what stays flat when the pages are truly shared.
    """
    try:
        text = Path("/proc/self/smaps").read_text()
    except OSError:
        return None
    total = 0
    in_shm_mapping = False
    for line in text.splitlines():
        if _MAP_HEADER.match(line):
            in_shm_mapping = "/dev/shm/psm_" in line
        elif in_shm_mapping and line.startswith("Pss:"):
            total += int(line.split()[1])
    return total


def _rss_init(library, n_nodes, engine_mode, handles, barrier) -> None:
    from repro.workloads import parallel as par

    par._init_worker(library, n_nodes, engine_mode, handles)
    par._WORKER_STATE["pss_barrier"] = barrier


def _rss_probe() -> Tuple[int, int]:
    """(total PSS, shm-mapping PSS) of one pool worker.

    The barrier holds every worker inside its own probe, so exactly one
    probe lands on each of them.
    """
    from repro.workloads import parallel as par

    par._WORKER_STATE["pss_barrier"].wait(120)
    return _self_pss_kb() or 0, _shm_pss_kb() or 0


def _fanout_pss(requests: List[RunRequest], workers: int,
                ctx) -> Optional[Tuple[int, int]]:
    """Summed worker (PSS, shm PSS) after a fan-out of ``requests``."""
    from repro.workloads import parallel as par

    runner = WorkloadRunner()
    pages, handles = par._share_datasets(requests)
    if pages is None:
        return None
    barrier = ctx.Barrier(workers)
    try:
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=ctx,
            initializer=_rss_init,
            initargs=(runner.library, runner.n_nodes,
                      runner.engine_mode, handles, barrier),
        ) as pool:
            for future in [pool.submit(par._run_request, r)
                           for r in requests]:
                future.result()
            probes = [pool.submit(_rss_probe) for _ in range(workers)]
            samples = [probe.result() for probe in probes]
    finally:
        pages.close()
    return (sum(total for total, _ in samples),
            sum(shm for _, shm in samples))


def _bench_fanout_rss(small: bool) -> Dict[str, Any]:
    """Dataset residency of the fan-out at two worker counts.

    Four distinct Giraph runs over one dataset, executed by 2 and then
    4 workers.  With the shared-memory graph pages a worker's share of
    the dataset shrinks as more workers attach, so the summed PSS must
    grow sublinearly — the unshared counterfactual doubles it.
    """
    try:
        ctx = mp.get_context("fork")
    except ValueError:
        return {"skipped": "platform cannot fork"}
    if _self_pss_kb() is None:
        return {"skipped": "no /proc/self/smaps_rollup"}

    dataset = "dg100-scaled" if small else "dg1000-scaled"
    requests = [
        RunRequest(WorkloadSpec("Giraph", algorithm, dataset, workers=8))
        for algorithm in ("bfs", "pagerank", "wcc", "sssp")
    ]
    totals: Dict[int, Tuple[int, int]] = {}
    for workers in (2, 4):
        clear_cache()
        sample = _fanout_pss(requests, workers, ctx)
        if sample is None:
            return {"skipped": "shared-memory pages unavailable"}
        totals[workers] = sample
    clear_cache()
    (pss2, shm2), (pss4, shm4) = totals[2], totals[4]
    return {
        "dataset": dataset,
        "runs": len(requests),
        "workers_2": {"total_pss_kb": pss2, "shm_pss_kb": shm2},
        "workers_4": {"total_pss_kb": pss4, "shm_pss_kb": shm4},
        # Physical dataset footprint growth when workers double; 1.0 =
        # perfectly shared, 2.0 = every worker holds a private copy.
        "shm_pss_ratio_4v2": round(shm4 / shm2, 3) if shm2 else None,
        "total_pss_ratio_4v2": round(pss4 / pss2, 3) if pss2 else None,
    }


def run_pipeline_bench(
    jobs: int = 4,
    small: Optional[bool] = None,
    reps: Optional[int] = None,
) -> Dict[str, Any]:
    """Time the pipeline end to end; returns the artifact document."""
    if small is None:
        small = small_mode()
    requests = bench_requests(small)
    if reps is None:
        reps = 3 if small else 10

    with tempfile.TemporaryDirectory(prefix="granula-bench-") as tmp:
        with _cache_dir(tmp):
            serial_cold_s, serial = _timed_suite(requests, jobs=None)
            warm_jobs_s, parallel = _timed_suite(requests, jobs=jobs)
    identical = all(
        archive_to_json(a.archive) == archive_to_json(b.archive)
        for a, b in zip(serial, parallel)
    )

    # The ingest and query stages are measured on the Giraph BFS run
    # (the paper's headline workload) from the serial phase.
    runner = WorkloadRunner()
    ingest = _bench_ingest(serial[0], runner, PLATFORMS[0], reps)
    # The query battery is milliseconds per rep, so extra reps are
    # nearly free — and the small-mode rep count is far too noisy for
    # a ratio that gates CI.
    columnar = _bench_columnar_query(serial[0], max(reps, 20))
    with tempfile.TemporaryDirectory(prefix="granula-bench-") as tmp:
        with _cache_dir(tmp):
            fanout = _bench_fanout_rss(small)

    return {
        "small": small,
        "jobs": jobs,
        "runs": len(requests),
        "workloads": [r.memo_key() for r in requests],
        "end_to_end": {
            "serial_cold_s": round(serial_cold_s, 3),
            "warm_jobs_s": round(warm_jobs_s, 3),
            "speedup": round(serial_cold_s / warm_jobs_s, 2)
            if warm_jobs_s else None,
        },
        "ingest_archive": ingest,
        "columnar_query": columnar,
        "fanout_rss": fanout,
        "byte_identical_archives": identical,
    }


def write_pipeline_bench(path: Union[str, Path], document: Dict[str, Any]) -> None:
    """Persist the benchmark artifact as JSON."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def render_pipeline_bench(document: Dict[str, Any]) -> str:
    """Human-readable summary of one benchmark document."""
    e2e = document["end_to_end"]
    ingest = document["ingest_archive"]
    lines = [
        f"pipeline benchmark ({document['runs']} runs, "
        f"{'small' if document['small'] else 'full'} matrix)",
        f"  end-to-end: serial cold {e2e['serial_cold_s']:.2f}s, "
        f"warm --jobs {document['jobs']} {e2e['warm_jobs_s']:.2f}s "
        f"({e2e['speedup']}x)",
        f"  ingest/archive: legacy {ingest['legacy_s']:.2f}s, "
        f"streaming {ingest['streaming_s']:.2f}s "
        f"({ingest['speedup']}x over {ingest['reps']} reps)",
    ]
    columnar = document.get("columnar_query", {})
    if "speedup" in columnar:
        lines.append(
            f"  columnar query: tree {columnar['tree_s']:.2f}s, "
            f".gcol {columnar['gcol_s']:.2f}s "
            f"({columnar['speedup']}x over {columnar['reps']} reps)"
        )
    elif columnar:
        lines.append(f"  columnar query: {columnar.get('skipped')}")
    fanout = document.get("fanout_rss", {})
    if "shm_pss_ratio_4v2" in fanout:
        lines.append(
            f"  fan-out RSS: dataset pages grew "
            f"{fanout['shm_pss_ratio_4v2']}x (total PSS "
            f"{fanout['total_pss_ratio_4v2']}x) when workers doubled"
        )
    elif fanout:
        lines.append(f"  fan-out RSS: {fanout.get('skipped')}")
    lines.append(
        f"  archives byte-identical: "
        f"{document['byte_identical_archives']}"
    )
    return "\n".join(lines)


# -- perf-trajectory gate -------------------------------------------------

#: Gate metrics and their good direction.  Ratios, never absolute
#: seconds, so the committed baseline survives machine changes.
GATE_METRICS: Dict[str, str] = {
    "end_to_end_speedup": "higher",
    "ingest_speedup": "higher",
    "columnar_query_speedup": "higher",
    "fanout_shm_pss_ratio_4v2": "lower",
}

#: Allowed relative regression before the gate fails.
GATE_TOLERANCE = 0.25


def extract_metrics(document: Dict[str, Any]) -> Dict[str, Any]:
    """The gate metrics of one benchmark document (None = unmeasured)."""
    return {
        "end_to_end_speedup": document["end_to_end"].get("speedup"),
        "ingest_speedup": document["ingest_archive"].get("speedup"),
        "columnar_query_speedup":
            document.get("columnar_query", {}).get("speedup"),
        "fanout_shm_pss_ratio_4v2":
            document.get("fanout_rss", {}).get("shm_pss_ratio_4v2"),
    }


def baseline_document(document: Dict[str, Any]) -> Dict[str, Any]:
    """The committed ``BENCH_pipeline.json`` shape for one bench run."""
    return {
        "schema": 1,
        "small": document["small"],
        "tolerance": GATE_TOLERANCE,
        "metrics": extract_metrics(document),
    }


def compare_gate_metrics(
    baseline_metrics: Dict[str, Any],
    current_metrics: Dict[str, Any],
    gate_metrics: Dict[str, str],
    tolerance: float,
) -> List[str]:
    """Gate metrics of ``current_metrics`` that regressed past tolerance.

    The shared trajectory comparator: each benchmark suite supplies its
    own metric extraction and direction table and funnels through here,
    so every ``granula bench --gate`` failure message reads the same.
    Metrics absent from either side are skipped — a baseline recorded
    on a fork-less or non-Linux machine must not wedge the gate
    elsewhere.
    """
    regressions = []
    for metric, direction in gate_metrics.items():
        base = baseline_metrics.get(metric)
        now = current_metrics.get(metric)
        if base is None or now is None:
            continue
        if direction == "higher":
            floor = base * (1.0 - tolerance)
            if now < floor:
                regressions.append(
                    f"{metric}: {now} fell below {floor:.2f} "
                    f"(baseline {base}, tolerance {tolerance:.0%})"
                )
        else:
            ceiling = base * (1.0 + tolerance)
            if now > ceiling:
                regressions.append(
                    f"{metric}: {now} rose above {ceiling:.2f} "
                    f"(baseline {base}, tolerance {tolerance:.0%})"
                )
    return regressions


def compare_pipeline_bench(
    baseline: Dict[str, Any],
    document: Dict[str, Any],
    tolerance: Optional[float] = None,
) -> List[str]:
    """Regressions of ``document`` against a committed baseline."""
    if tolerance is None:
        tolerance = float(baseline.get("tolerance", GATE_TOLERANCE))
    return compare_gate_metrics(
        baseline.get("metrics", {}), extract_metrics(document),
        GATE_METRICS, tolerance,
    )
