"""End-to-end pipeline benchmark: generate→run→ingest→archive→analyze.

The PageRank Pipeline Benchmark argues the whole pipeline is the unit
that must be fast; this module times Granula's own
Monitoring→Archiving→Analysis loop across the experiment suite's run
matrix under the two accelerators this repository ships:

- **end-to-end**: the suite's workload runs executed serially against a
  cold artifact cache, then again with a warm cache fanned out across
  ``--jobs`` worker processes.  Both phases produce byte-identical
  archives (asserted), so the speedup is pure overhead removal.
- **ingest/archive**: the monitoring→archive stage alone — the legacy
  per-record path (field-map parse, one object per event, nested v2
  JSON) against the streaming columnar path (fixed-layout parse into
  column buffers, columnar tree build, v3 JSON) over the same platform
  log.

``GRANULA_BENCH_SMALL=1`` (or ``small=True``) shrinks the matrix to
dg100-scaled for CI smoke runs.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.cache import CACHE_DIR_ENV
from repro.core.archive.builder import build_archive
from repro.core.archive.serialize import archive_to_json
from repro.core.monitor.logparser import parse_log_columns, parse_log_report
from repro.core.monitor.session import MonitoredRun
from repro.core.process import EvaluationIteration
from repro.workloads.datasets import clear_cache
from repro.workloads.parallel import RunRequest
from repro.workloads.runner import WorkloadRunner
from repro.workloads.spec import WorkloadSpec

#: Environment switch shrinking the benchmark to CI-smoke size.
SMALL_ENV = "GRANULA_BENCH_SMALL"

#: The four platforms of the cross-platform experiment.
PLATFORMS = ("Giraph", "PowerGraph", "Hadoop", "PGX.D")


def small_mode() -> bool:
    """Whether the environment asks for the CI-smoke matrix."""
    return bool(os.environ.get(SMALL_ENV))


def bench_requests(small: bool = False) -> List[RunRequest]:
    """The run matrix the benchmark times.

    Full mode mirrors the experiment suite's distinct workload runs
    (see :func:`repro.experiments.report.experiment_runs`): the four
    dg1000-scaled platform BFS runs plus the dg100-scaled fault
    scenarios.  Small mode keeps the same shape on dg100-scaled only.
    """
    from repro.experiments.ext_faults import transient_plan

    dataset = "dg100-scaled" if small else "dg1000-scaled"
    runner = WorkloadRunner()
    giraph_nodes = runner.platform("Giraph").cluster.node_names
    requests = [
        RunRequest(WorkloadSpec(platform, "bfs", dataset, workers=8))
        for platform in PLATFORMS
    ]
    giraph_100 = WorkloadSpec("Giraph", "bfs", "dg100-scaled", workers=8)
    requests.append(
        RunRequest(giraph_100, faults=transient_plan(giraph_nodes))
    )
    if not small:
        from repro.experiments.ext_faults import (
            dead_node_plan,
            loader_crash_plan,
        )
        from repro.experiments.ext_salvage import salvage_plan

        powergraph_100 = WorkloadSpec("PowerGraph", "bfs", "dg100-scaled",
                                      workers=8)
        requests.extend([
            RunRequest(giraph_100),
            RunRequest(giraph_100, faults=dead_node_plan(giraph_nodes)),
            RunRequest(powergraph_100, faults=loader_crash_plan()),
            RunRequest(giraph_100, faults=salvage_plan()),
        ])
    return requests


@contextmanager
def _cache_dir(path: Union[str, Path]):
    """Point the artifact cache at ``path`` for the duration."""
    old = os.environ.get(CACHE_DIR_ENV)
    os.environ[CACHE_DIR_ENV] = str(path)
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(CACHE_DIR_ENV, None)
        else:
            os.environ[CACHE_DIR_ENV] = old


def _timed_suite(
    requests: List[RunRequest],
    jobs: Optional[int],
) -> Tuple[float, List[EvaluationIteration]]:
    """Run the matrix on a fresh runner; in-process caches cleared."""
    clear_cache()
    runner = WorkloadRunner()
    t0 = time.perf_counter()
    iterations = runner.run_many(requests, jobs=jobs)
    return time.perf_counter() - t0, iterations


def _bench_ingest(
    iteration: EvaluationIteration,
    runner: WorkloadRunner,
    platform: str,
    reps: int,
) -> Dict[str, Any]:
    """Legacy vs streaming monitoring→archive stage over one job log."""
    run = iteration.run
    result = run.result
    model = runner.library.get(platform)

    t0 = time.perf_counter()
    for _ in range(reps):
        records, report = parse_log_report(result.log_lines)
        legacy = MonitoredRun(
            result=result,
            records=records,
            env_series=run.env_series,
            env_samples=run.env_samples,
            node_names=run.node_names,
            parse_report=report,
        )
        old_archive, _ = build_archive(legacy, model)
        old_text = archive_to_json(old_archive, version=2)
    old_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(reps):
        columns, report = parse_log_columns(result.log_lines)
        streaming = MonitoredRun(
            result=result,
            records=columns.records(),
            env_series=run.env_series,
            env_samples=run.env_samples,
            node_names=run.node_names,
            parse_report=report,
            columns=columns,
        )
        new_archive, _ = build_archive(streaming, model)
        new_text = archive_to_json(new_archive)
    new_s = time.perf_counter() - t0

    # Both paths must agree on content (layout differs by design).
    same = (
        archive_to_json(new_archive, version=2) == old_text
        and archive_to_json(old_archive) == new_text
    )
    return {
        "job": result.job_id,
        "log_lines": len(result.log_lines),
        "reps": reps,
        "legacy_s": round(old_s, 4),
        "streaming_s": round(new_s, 4),
        "speedup": round(old_s / new_s, 2) if new_s else None,
        "identical_archives": same,
    }


def run_pipeline_bench(
    jobs: int = 4,
    small: Optional[bool] = None,
    reps: Optional[int] = None,
) -> Dict[str, Any]:
    """Time the pipeline end to end; returns the artifact document."""
    if small is None:
        small = small_mode()
    requests = bench_requests(small)
    if reps is None:
        reps = 3 if small else 10

    with tempfile.TemporaryDirectory(prefix="granula-bench-") as tmp:
        with _cache_dir(tmp):
            serial_cold_s, serial = _timed_suite(requests, jobs=None)
            warm_jobs_s, parallel = _timed_suite(requests, jobs=jobs)
    identical = all(
        archive_to_json(a.archive) == archive_to_json(b.archive)
        for a, b in zip(serial, parallel)
    )

    # The ingest stage is measured on the Giraph BFS run (the paper's
    # headline workload) from the serial phase.
    runner = WorkloadRunner()
    ingest = _bench_ingest(serial[0], runner, PLATFORMS[0], reps)

    return {
        "small": small,
        "jobs": jobs,
        "runs": len(requests),
        "workloads": [r.memo_key() for r in requests],
        "end_to_end": {
            "serial_cold_s": round(serial_cold_s, 3),
            "warm_jobs_s": round(warm_jobs_s, 3),
            "speedup": round(serial_cold_s / warm_jobs_s, 2)
            if warm_jobs_s else None,
        },
        "ingest_archive": ingest,
        "byte_identical_archives": identical,
    }


def write_pipeline_bench(path: Union[str, Path], document: Dict[str, Any]) -> None:
    """Persist the benchmark artifact as JSON."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def render_pipeline_bench(document: Dict[str, Any]) -> str:
    """Human-readable summary of one benchmark document."""
    e2e = document["end_to_end"]
    ingest = document["ingest_archive"]
    return "\n".join([
        f"pipeline benchmark ({document['runs']} runs, "
        f"{'small' if document['small'] else 'full'} matrix)",
        f"  end-to-end: serial cold {e2e['serial_cold_s']:.2f}s, "
        f"warm --jobs {document['jobs']} {e2e['warm_jobs_s']:.2f}s "
        f"({e2e['speedup']}x)",
        f"  ingest/archive: legacy {ingest['legacy_s']:.2f}s, "
        f"streaming {ingest['streaming_s']:.2f}s "
        f"({ingest['speedup']}x over {ingest['reps']} reps)",
        f"  archives byte-identical: "
        f"{document['byte_identical_archives']}",
    ])
