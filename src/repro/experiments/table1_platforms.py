"""Table 1: diversity in (large-scale) graph processing platforms."""

from __future__ import annotations

from typing import Optional

from repro.core.visualize.render_text import table
from repro.experiments.common import ExperimentResult
from repro.platforms.registry import PLATFORM_TABLE, TABLE_COLUMNS, table_rows
from repro.workloads.runner import WorkloadRunner

#: The paper's Table 1 row count and evaluated systems.
_PAPER_ROWS = 7
_PAPER_EVALUATED = ("Giraph", "PowerGraph")


def run_table1(runner: Optional[WorkloadRunner] = None) -> ExperimentResult:
    """Regenerate Table 1 from the platform registry.

    The table is static metadata, but the reproduction checks that the
    registry is faithful: the row set, the evaluated systems, and the key
    per-platform characteristics the text of Section 3.4 relies on.
    """
    rows = table_rows()
    giraph = next(p for p in PLATFORM_TABLE if p.name == "Giraph")
    powergraph = next(p for p in PLATFORM_TABLE if p.name == "PowerGraph")
    evaluated = tuple(p.name for p in PLATFORM_TABLE if p.evaluated)

    checks = [
        (f"table has {_PAPER_ROWS} platforms", len(rows) == _PAPER_ROWS),
        ("evaluated systems are Giraph and PowerGraph",
         evaluated == _PAPER_EVALUATED),
        ("Giraph: Java / Yarn / Pregel / VertexStore / HDFS",
         (giraph.language, giraph.provisioning, giraph.programming_model,
          giraph.data_format, giraph.file_system)
         == ("Java", "Yarn", "Pregel", "VertexStore", "HDFS")),
        ("PowerGraph: C++ / OpenMPI / GAS / edge-based / local-shared",
         (powergraph.language, powergraph.provisioning,
          powergraph.programming_model, powergraph.data_format,
          powergraph.file_system)
         == ("C++", "OpenMPI", "GAS", "Edge-based", "local/shared")),
        ("single-node platforms need no resource manager",
         all(p.provisioning.startswith("Native")
             for p in PLATFORM_TABLE if not p.distributed)),
    ]
    text = table(TABLE_COLUMNS, rows)
    return ExperimentResult(
        experiment_id="table1",
        title="Diversity in graph processing platforms",
        paper={"platforms": _PAPER_ROWS, "evaluated": list(_PAPER_EVALUATED)},
        measured={"platforms": len(rows), "evaluated": list(evaluated)},
        checks=checks,
        text=text,
        data={"rows": rows},
    )
