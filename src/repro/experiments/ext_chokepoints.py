"""Extension experiment: choke-point analysis of the headline runs.

Applies the future-work choke-point analysis (Section 6) to the same two
jobs the paper's Figures 5-8 analyze, and checks that it finds — fully
automatically — the issues the paper's authors identified by reading the
charts:

- Giraph: the compute-intensive data loading (``LocalLoad``, cpu-bound)
  and the latency-bound deployment (``LocalStartup``).
- PowerGraph: the sequential edge streaming (``StreamEdges``) dominating
  nearly the whole job.
"""

from __future__ import annotations

from typing import Optional

from repro.core.analysis.chokepoint import (
    find_choke_points,
    render_choke_points,
)
from repro.experiments.common import (
    ExperimentResult,
    GIRAPH_BFS,
    POWERGRAPH_BFS,
    shared_runner,
)
from repro.workloads.runner import WorkloadRunner


def run_chokepoints(
    runner: Optional[WorkloadRunner] = None,
) -> ExperimentResult:
    """Choke-point analysis of both dg1000-scaled BFS runs."""
    runner = runner or shared_runner()
    giraph = runner.run(GIRAPH_BFS).archive
    powergraph = runner.run(POWERGRAPH_BFS).archive

    g_points = find_choke_points(giraph, top_n=6, min_share=0.04)
    p_points = find_choke_points(powergraph, top_n=6, min_share=0.04)
    g_by_mission = {p.mission: p for p in g_points}
    p_by_mission = {p.mission: p for p in p_points}

    checks = [
        ("Giraph: LocalLoad is a top choke point",
         "LocalLoad" in g_by_mission),
        ("Giraph: LocalLoad is cpu-bound (the Fig. 6 observation)",
         g_by_mission.get("LocalLoad") is not None
         and g_by_mission["LocalLoad"].bound == "cpu-bound"),
        ("Giraph: LocalStartup is latency-bound (the Fig. 6 observation)",
         g_by_mission.get("LocalStartup") is not None
         and g_by_mission["LocalStartup"].bound == "latency-bound"),
        ("PowerGraph: StreamEdges is the dominant choke point",
         bool(p_points) and p_points[0].mission == "StreamEdges"),
        ("PowerGraph: StreamEdges covers most of the job (> 80%)",
         p_by_mission.get("StreamEdges") is not None
         and p_by_mission["StreamEdges"].share > 0.80),
        ("PowerGraph: StreamEdges classified as single-node cpu-bound "
         "(the Fig. 7 diagnosis, found automatically)",
         p_by_mission.get("StreamEdges") is not None
         and p_by_mission["StreamEdges"].bound == "cpu-bound-single-node"),
    ]
    text = "\n\n".join([
        "Extension: automatic choke-point analysis "
        "(BFS, dg1000-scaled, 8 nodes)",
        "Giraph:\n" + render_choke_points(g_points),
        "PowerGraph:\n" + render_choke_points(p_points),
    ])
    return ExperimentResult(
        experiment_id="ext-chokepoints",
        title="Automatic choke-point analysis (future work)",
        paper={
            "giraph": "compute-intensive loading; latency-bound deployment",
            "powergraph": "sequential loading dominates",
        },
        measured={
            "giraph_top": [
                (p.mission, round(p.share, 3), p.bound) for p in g_points
            ],
            "powergraph_top": [
                (p.mission, round(p.share, 3), p.bound) for p in p_points
            ],
        },
        checks=checks,
        text=text,
    )
