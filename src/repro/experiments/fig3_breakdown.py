"""Figure 3: the high-level breakdown of a graph processing job.

The figure is conceptual — five operations grouped into three phases —
so the reproduction checks that the domain-level model encodes exactly
that structure, and that both platform models refine it (which is what
makes the Ts/Td/Tp cross-platform metrics well-defined).
"""

from __future__ import annotations

from typing import Optional

from repro.core.model.giraph_model import giraph_model
from repro.core.model.library import (
    DOMAIN_OPERATIONS,
    DOMAIN_PHASES,
    PHASE_OF_OPERATION,
    domain_level_model,
)
from repro.core.model.powergraph_model import powergraph_model
from repro.core.visualize.render_text import table
from repro.experiments.common import ExperimentResult
from repro.workloads.runner import WorkloadRunner

#: The paper's phase -> operations mapping (Section 3.4 + Figure 3).
_PAPER_STRUCTURE = {
    "Setup": ("Startup", "Cleanup"),
    "Input/output": ("LoadGraph", "OffloadGraph"),
    "Processing": ("ProcessGraph",),
}


def run_fig3(runner: Optional[WorkloadRunner] = None) -> ExperimentResult:
    """Regenerate the Figure 3 phase structure from the domain model."""
    model = domain_level_model()
    domain_ops = tuple(c.mission for c in model.root.children)

    structure_ok = all(
        all(PHASE_OF_OPERATION[op] == phase for op in ops)
        for phase, ops in _PAPER_STRUCTURE.items()
    )
    giraph = giraph_model()
    powergraph = powergraph_model()
    refine_ok = all(
        tuple(c.mission for c in m.root.children) == DOMAIN_OPERATIONS
        for m in (giraph, powergraph)
    )

    checks = [
        ("five domain operations in workflow order",
         domain_ops == DOMAIN_OPERATIONS),
        ("three phases: Setup, Input/output, Processing",
         tuple(DOMAIN_PHASES) == ("Setup", "Input/output", "Processing")),
        ("operations map to the paper's phases", structure_ok),
        ("both platform models refine the identical domain level",
         refine_ok),
    ]
    rows = [
        (op, PHASE_OF_OPERATION[op], model.root.child(op).description)
        for op in DOMAIN_OPERATIONS
    ]
    text = (
        "Figure 3: high-level breakdown of a graph processing job\n"
        + table(("Operation", "Phase", "Meaning"), rows)
    )
    return ExperimentResult(
        experiment_id="fig3",
        title="High-level breakdown of a graph processing job",
        paper={"phases": list(DOMAIN_PHASES),
               "operations": list(DOMAIN_OPERATIONS)},
        measured={"phases": list(DOMAIN_PHASES),
                  "operations": list(domain_ops)},
        checks=checks,
        text=text,
    )
