"""Extension experiment: fault injection and recovery attribution.

Exercises the fault-tolerant execution path end to end: scheduled faults
are injected into real runs, the engines recover (retry, failover,
checkpoint restore, blacklist), the algorithm outputs stay reference-
correct, and the recovery cost surfaces in the Granula archive as
attributable operations that the diagnosis layer detects.

Three scenarios on dg100-scaled BFS:

- **Giraph, transient faults**: a container-launch failure, HDFS
  block-read errors, and a worker crash under a 2-superstep checkpoint
  interval.  ``RetryContainer``, ``ReplicaFailover``, ``Checkpoint`` and
  ``RecoverWorker`` must all appear and be diagnosed.
- **Giraph, dead node**: every launch on one node fails; the node is
  blacklisted and the job finishes on 7 workers after a
  ``RedistributePartitions`` operation.
- **PowerGraph, loader crash**: rank 0 dies mid-stream and resumes from
  its flushed offset (``RestartLoad``), plus a rank crash recovered from
  an engine checkpoint.

Determinism is asserted by replaying the Giraph fault plan and requiring
a byte-identical archive serialization.
"""

from __future__ import annotations

from typing import Optional

from repro.core.analysis.diagnosis import (
    diagnose,
    recovery_overhead,
    render_findings,
)
from repro.core.archive.serialize import archive_to_json
from repro.experiments.common import ExperimentResult, shared_runner
from repro.graph.algorithms import bfs_levels
from repro.graph.validate import compare_exact
from repro.platforms.faults import (
    ContainerLaunchFailure,
    FaultPlan,
    HdfsReadError,
    LoaderCrash,
    NodeFailure,
    WorkerCrash,
)
from repro.workloads.datasets import DATASETS, build_dataset
from repro.workloads.runner import WorkloadRunner
from repro.workloads.spec import WorkloadSpec

GIRAPH_BFS_100 = WorkloadSpec("Giraph", "bfs", "dg100-scaled", workers=8)
POWERGRAPH_BFS_100 = WorkloadSpec("PowerGraph", "bfs", "dg100-scaled",
                                  workers=8)


def transient_plan(giraph_nodes) -> FaultPlan:
    """Scenario 1: transient faults (launch failure, HDFS errors, crash)."""
    return FaultPlan(
        events=(
            ContainerLaunchFailure(giraph_nodes[2], failures=1),
            HdfsReadError(giraph_nodes[0], blocks=2),
            WorkerCrash(worker=1, superstep=2),
        ),
        checkpoint_interval=2,
        seed=13,
    )


def dead_node_plan(giraph_nodes) -> FaultPlan:
    """Scenario 2: one node dead for the whole job (blacklisting)."""
    return FaultPlan(events=(NodeFailure(giraph_nodes[4]),), seed=13)


def loader_crash_plan() -> FaultPlan:
    """Scenario 3: loader crash mid-stream plus a rank crash."""
    return FaultPlan(
        events=(
            LoaderCrash(at_fraction=0.4, restarts=1, restart_s=4.0),
            WorkerCrash(worker=2, superstep=1),
        ),
        checkpoint_interval=2,
        seed=13,
    )


def run_faults(runner: Optional[WorkloadRunner] = None) -> ExperimentResult:
    """Fault-injection scenarios with recovery attribution."""
    runner = runner or shared_runner()
    graph = build_dataset("dg100-scaled")
    reference = bfs_levels(graph, DATASETS["dg100-scaled"].bfs_source)

    giraph_nodes = runner.platform("Giraph").cluster.node_names

    # -- scenario 1: Giraph under transient faults -------------------------
    healthy = runner.run(GIRAPH_BFS_100)
    transient = runner.run(GIRAPH_BFS_100,
                           faults=transient_plan(giraph_nodes))
    t_archive = transient.archive
    t_findings = diagnose(t_archive)
    t_overhead = recovery_overhead(t_archive)
    t_ok = compare_exact(reference, transient.run.result.output)

    # Determinism: replaying the identical plan must reproduce the
    # archive byte for byte.
    replay = runner.run(GIRAPH_BFS_100, faults=transient_plan(giraph_nodes),
                        fresh=True)
    identical = (
        archive_to_json(t_archive) == archive_to_json(replay.archive)
    )

    # -- scenario 2: Giraph with a dead node -------------------------------
    degraded = runner.run(GIRAPH_BFS_100, faults=dead_node_plan(giraph_nodes))
    d_archive = degraded.archive
    d_ok = compare_exact(reference, degraded.run.result.output)
    d_stats = degraded.run.result.stats

    # -- scenario 3: PowerGraph loader crash + rank crash ------------------
    pg_faulty = runner.run(POWERGRAPH_BFS_100, faults=loader_crash_plan())
    p_archive = pg_faulty.archive
    p_ok = compare_exact(reference, pg_faulty.run.result.output)
    p_overhead = recovery_overhead(p_archive)

    def count(archive, base):
        return len(archive.find(mission_base=base))

    recovery_kinds = {f.subject for f in t_findings if f.kind == "recovery"}
    checks = [
        ("Giraph output reference-correct under transient faults", t_ok.ok),
        ("Giraph archive fully modeled under faults",
         transient.report.unmodeled == []),
        ("RetryContainer operation archived",
         count(t_archive, "RetryContainer") >= 1),
        ("ReplicaFailover operations archived",
         count(t_archive, "ReplicaFailover") >= 1),
        ("Checkpoints written at the configured interval",
         count(t_archive, "Checkpoint") >= 2),
        ("RecoverWorker operation archived",
         count(t_archive, "RecoverWorker") == 1),
        ("diagnosis attributes every recovery kind",
         any(s.startswith("RetryContainer") for s in recovery_kinds)
         and any(s.startswith("ReplicaFailover") for s in recovery_kinds)
         and any(s.startswith("RecoverWorker") for s in recovery_kinds)),
        ("recovery overhead is positive and attributed",
         t_overhead["total"] > 0 and 0 < t_overhead["share"] < 1),
        ("faults slow the job, never corrupt it",
         transient.run.result.makespan > healthy.run.result.makespan),
        ("identical plan + seed replays a byte-identical archive",
         identical),
        ("dead node: job completes on 7 survivors",
         d_ok.ok and d_stats.get("blacklisted_nodes") == [giraph_nodes[4]]),
        ("dead node: RedistributePartitions archived",
         count(d_archive, "RedistributePartitions") == 1),
        ("PowerGraph output reference-correct under loader+rank crash",
         p_ok.ok),
        ("PowerGraph archive fully modeled under faults",
         pg_faulty.report.unmodeled == []),
        ("RestartLoad operation archived",
         count(p_archive, "RestartLoad") == 1),
        ("PowerGraph rank crash recovered from checkpoint",
         count(p_archive, "RecoverWorker") == 1
         and p_overhead["total"] > 0),
    ]

    text = "\n\n".join([
        "Extension: fault injection and recovery attribution "
        "(BFS, dg100-scaled, 8 nodes)",
        "Giraph transient-fault diagnosis:\n" + render_findings(t_findings),
        "Giraph recovery overhead: "
        + ", ".join(
            f"{k}={v:.2f}s" for k, v in sorted(t_overhead.items())
            if k not in ("total", "share")
        )
        + f"; total {t_overhead['total']:.2f}s "
        f"({t_overhead['share'] * 100:.1f}% of makespan)",
        "PowerGraph loader-crash diagnosis:\n"
        + render_findings(diagnose(p_archive, "Gather")),
    ])
    return ExperimentResult(
        experiment_id="ext-faults",
        title="Fault injection with recovery attribution (future work)",
        paper={
            "claim": "failure diagnosis: performance analysis should "
                     "attribute the cost of failures and recovery",
        },
        measured={
            "giraph_recovery_share": round(t_overhead["share"], 4),
            "giraph_recovery_total_s": round(t_overhead["total"], 3),
            "powergraph_recovery_share": round(p_overhead["share"], 4),
            "deterministic_replay": identical,
            "blacklisted": d_stats.get("blacklisted_nodes", []),
        },
        checks=checks,
        text=text,
        data={
            "giraph_findings": len(t_findings),
            "giraph_overhead": {k: round(v, 4)
                                for k, v in t_overhead.items()},
            "powergraph_overhead": {k: round(v, 4)
                                    for k, v in p_overhead.items()},
        },
    )
