"""Extension experiment: the general-platform baseline.

Not a numbered paper artifact — it validates the introduction's premise:
"General Big Data platforms, such as the MapReduce-based Apache Hadoop,
have not been able so far to process graphs without severe performance
penalties [14, 20, 23]."  We run the same BFS workload on the Hadoop
engine and decompose it with Granula, which also *explains* the penalty:
processing dominates because every round re-scans all vertices and
re-materializes all state.
"""

from __future__ import annotations

from typing import Optional

from repro.core.archive.query import ArchiveQuery
from repro.core.visualize.render_text import table
from repro.experiments.common import (
    ExperimentResult,
    GIRAPH_BFS,
    shared_runner,
)
from repro.workloads.runner import WorkloadRunner
from repro.workloads.spec import WorkloadSpec

HADOOP_BFS = WorkloadSpec("Hadoop", "bfs", "dg1000-scaled", workers=8)


def run_hadoop_baseline(
    runner: Optional[WorkloadRunner] = None,
) -> ExperimentResult:
    """BFS on Hadoop vs Giraph, decomposed by Granula."""
    runner = runner or shared_runner()
    giraph = runner.run(GIRAPH_BFS)
    hadoop = runner.run(HADOOP_BFS)

    ratio = hadoop.breakdown.total / giraph.breakdown.total
    hadoop_processing = hadoop.breakdown.phases["Processing"][1]

    # Granula's explanation: total records scanned across rounds vastly
    # exceeds the vertex count (settled vertices are re-scanned).
    query = ArchiveQuery(hadoop.archive)
    records_scanned = query.mission("MapPhase").total("RecordsScanned")
    num_vertices = 100_000  # dg1000-scaled
    scan_amplification = records_scanned / num_vertices

    rounds = hadoop.run.result.stats["rounds"]
    supersteps = giraph.run.result.stats["supersteps"]

    checks = [
        ("Hadoop pays a severe penalty vs Giraph (>= 3x total runtime)",
         ratio >= 3.0),
        ("the penalty is in processing, not I/O (processing share >= 60%)",
         hadoop_processing >= 0.60),
        ("every round scans the full vertex set "
         "(scan amplification ~= rounds)",
         scan_amplification >= rounds * 0.99),
        ("round counts comparable (same algorithm structure)",
         abs(rounds - supersteps) <= 2),
    ]
    rows = [
        ("Giraph", f"{giraph.breakdown.total:.1f}s",
         f"{giraph.breakdown.phases['Processing'][1] * 100:.1f}%",
         str(supersteps), "frontier only"),
        ("Hadoop", f"{hadoop.breakdown.total:.1f}s",
         f"{hadoop_processing * 100:.1f}%",
         str(rounds), f"all vertices x{scan_amplification:.1f}"),
    ]
    text = "\n\n".join([
        "Extension: Hadoop baseline (BFS, dg1000-scaled, 8 nodes)",
        table(("System", "Total", "Processing share", "Rounds",
               "Vertices scanned"), rows),
        hadoop.breakdown.render_text(),
    ])
    return ExperimentResult(
        experiment_id="ext-hadoop",
        title="General-platform baseline (intro's penalty claim)",
        paper={"claim": "severe performance penalties on MapReduce",
               "references": ["Guo et al. IPDPS'14", "Lu et al. PVLDB'14",
                              "Satish et al. SIGMOD'14"]},
        measured={
            "hadoop_total_s": round(hadoop.breakdown.total, 1),
            "giraph_total_s": round(giraph.breakdown.total, 1),
            "penalty_ratio": round(ratio, 2),
            "hadoop_processing_share": round(hadoop_processing, 3),
            "scan_amplification": round(scan_amplification, 1),
        },
        checks=checks,
        text=text,
        data={"hadoop": hadoop, "giraph": giraph},
    )
