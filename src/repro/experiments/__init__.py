"""Experiment drivers: one module per paper table/figure.

Each driver exposes ``run(runner=None) -> ExperimentResult`` producing
both the data rows and a printable rendering; the benchmark harness and
:mod:`repro.experiments.report` (which writes EXPERIMENTS.md) both build
on them.
"""

from repro.experiments.common import ExperimentResult
from repro.experiments.table1_platforms import run_table1
from repro.experiments.fig3_breakdown import run_fig3
from repro.experiments.fig4_model import run_fig4
from repro.experiments.fig5_decomposition import run_fig5
from repro.experiments.fig6_giraph_cpu import run_fig6
from repro.experiments.fig7_powergraph_cpu import run_fig7
from repro.experiments.fig8_superstep import run_fig8
from repro.experiments.ext_hadoop_baseline import run_hadoop_baseline

__all__ = [
    "ExperimentResult",
    "run_table1",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_hadoop_baseline",
]
