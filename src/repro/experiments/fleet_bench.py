"""Fleet-analytics benchmark: columnar cross-archive scans vs trees.

The fleet engine (:mod:`repro.core.analysis.fleet`) answers group-by
aggregations, per-run series, and regression sweeps across *every*
archive in a store.  Its hot path never materializes a
``PerformanceArchive`` — it runs vectorized numpy reductions directly
over the memory-mapped ``.gcol`` sidecars.  This module measures that
claim on a synthetic fleet of hundreds of archives:

- **fleet scan**: a fixed query battery (group-by aggregation with
  percentiles and top-k, info-metric aggregation, a time series, and a
  regression sweep) executed in ``mode="tree"`` (the reference
  implementation, every archive parsed and materialized) and in
  ``mode="auto"`` (the columnar scan).  Both must return value-identical
  documents; the speedup is the gate metric.
- **degraded store**: the same battery after one sidecar is corrupted
  and another deleted — the columnar scan must fall back per job,
  report the fallbacks in ``degraded_jobs``, and still match the tree
  reference exactly.

The distilled ratio feeds the repo-root ``BENCH_fleet.json``
perf-trajectory baseline via the same ``granula bench --gate``
machinery as the pipeline suite (``--suite fleet``).

``GRANULA_BENCH_SMALL=1`` (or ``small=True``) shrinks the fleet for CI
smoke runs.
"""

from __future__ import annotations

import random
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.core.analysis.fleet import run_fleet_query
from repro.core.analysis.fleetplan import FleetPlan
from repro.core.archive.archive import ArchivedOperation, PerformanceArchive
from repro.core.archive.store import ArchiveStore
from repro.experiments.pipeline_bench import (
    GATE_TOLERANCE,
    compare_gate_metrics,
    small_mode,
)

#: Synthetic fleet sizes (archives in the store).
FLEET_ARCHIVES_FULL = 500
FLEET_ARCHIVES_SMALL = 120

#: The axes the synthetic fleet spans.
PLATFORMS = ("Giraph", "PowerGraph", "Hadoop", "PGX.D")
ALGORITHMS = ("bfs", "pagerank", "wcc")
DATASETS = ("dg100", "dg1000")

#: Gate metrics and their good direction (ratios, never seconds).
FLEET_GATE_METRICS: Dict[str, str] = {
    "fleet_scan_speedup": "higher",
}


def synthetic_fleet_archive(job_id: str, index: int,
                            rng: random.Random) -> PerformanceArchive:
    """One deterministic synthetic job archive.

    Shaped like a real monitored run — a load phase with per-worker
    children and a superstep loop with per-worker compute operations,
    timestamped in milliseconds — so the tree path pays the
    materialization cost a real fleet scan would.  A few jobs get a
    deliberately inflated load phase, giving the regression sweep
    genuine outliers to flag.
    """
    platform = PLATFORMS[index % len(PLATFORMS)]
    algorithm = ALGORITHMS[(index // len(PLATFORMS)) % len(ALGORITHMS)]
    dataset = DATASETS[index % len(DATASETS)]
    supersteps = 40 + rng.randrange(20)
    workers = 10
    base = 1_000_000_000 + index * 60_000
    slow_load = index % 37 == 5  # sparse, deterministic outliers

    t = float(base)
    load_span = (18_000.0 if slow_load else 2_000.0) + rng.random() * 500
    load = ArchivedOperation(f"{job_id}:load", "LoadGraph", "Master",
                             t, t + load_span)
    for w in range(workers):
        child = ArchivedOperation(
            f"{job_id}:load{w}", "LocalLoad", f"Worker-{w}",
            t, t + load_span * (0.6 + 0.1 * w),
            infos={"BytesRead": float(1000 * (w + 1))}, parent=load,
        )
        load.children.append(child)
    t += load_span

    process_start = t
    process = ArchivedOperation(f"{job_id}:proc", "ProcessGraph",
                                "Master", process_start, process_start)
    for s in range(supersteps):
        span = 400.0 + rng.random() * 200
        step = ArchivedOperation(
            f"{job_id}:s{s}", f"Superstep-{s}", "Master", t, t + span,
            infos={"Supersteps": float(s + 1)}, parent=process,
        )
        for w in range(workers):
            step.children.append(ArchivedOperation(
                f"{job_id}:s{s}w{w}", "Compute", f"Worker-{w}",
                t, t + span * (0.5 + 0.12 * w),
                infos={"ProcessedVertices": float(rng.randrange(10_000))},
                parent=step,
            ))
        process.children.append(step)
        t += span
    process.end_time = t

    root = ArchivedOperation(f"{job_id}:root", "Job", "Client",
                             float(base), t + 100.0)
    load.parent = root
    process.parent = root
    root.children.extend([load, process])
    return PerformanceArchive(
        job_id, root, platform=platform,
        metadata={"algorithm": algorithm, "dataset": dataset,
                  "tier": "bench"},
    )


def build_fleet_store(directory, archives: int,
                      seed: int = 7) -> ArchiveStore:
    """A synthetic store of ``archives`` jobs (deterministic)."""
    rng = random.Random(seed)
    store = ArchiveStore(directory)
    for index in range(archives):
        job_id = f"fleet-{index:05d}"
        store.save(synthetic_fleet_archive(job_id, index, rng),
                   overwrite=True)
    return store


def fleet_battery() -> List[FleetPlan]:
    """The fixed query battery both scan modes must answer identically."""
    return [
        FleetPlan.from_params(
            {"group_by": "platform,algorithm",
             "agg": "count,sum,mean,p95,top3"}, op="query"),
        FleetPlan.from_params(
            {"group_by": "dataset", "agg": "mean,max",
             "metric": "ProcessedVertices"}, op="query"),
        FleetPlan.from_params(
            {"group_by": "platform", "agg": "sum",
             "mission": "Superstep"}, op="series"),
        FleetPlan.from_params(
            {"group_by": "platform,algorithm", "k": "2.5"},
            op="regressions"),
    ]


def _run_battery(store: ArchiveStore, plans: List[FleetPlan],
                 mode: str) -> List[Dict[str, Any]]:
    return [run_fleet_query(store, plan, mode=mode) for plan in plans]


def _timed_battery(
    store: ArchiveStore, plans: List[FleetPlan], mode: str, reps: int,
) -> Tuple[float, List[Dict[str, Any]]]:
    """(total seconds, last results) of ``reps`` battery passes."""
    results = _run_battery(store, plans, mode)  # untimed warmup
    t0 = time.perf_counter()
    for _ in range(reps):
        results = _run_battery(store, plans, mode)
    return time.perf_counter() - t0, results


def _degrade_store(store: ArchiveStore) -> List[str]:
    """Corrupt one job's sidecar and delete another's; the victims."""
    jobs = store.list()
    corrupt, missing = jobs[len(jobs) // 3], jobs[(2 * len(jobs)) // 3]
    store.sidecar_path(corrupt).write_bytes(b"GCOL\x00garbage")
    store.sidecar_path(missing).unlink()
    return sorted([corrupt, missing])


def run_fleet_bench(
    archives: Optional[int] = None,
    small: Optional[bool] = None,
    reps: Optional[int] = None,
) -> Dict[str, Any]:
    """Measure the fleet battery; returns the artifact document."""
    if small is None:
        small = small_mode()
    if archives is None:
        archives = FLEET_ARCHIVES_SMALL if small else FLEET_ARCHIVES_FULL
    if reps is None:
        reps = 1 if small else 3

    with tempfile.TemporaryDirectory(prefix="granula-fleet-") as tmp:
        store = build_fleet_store(Path(tmp) / "fleet", archives)
        plans = fleet_battery()

        tree_s, tree_results = _timed_battery(store, plans, "tree", reps)
        scan_s, scan_results = _timed_battery(store, plans, "auto", reps)
        identical = scan_results == tree_results
        clean = not any(d["degraded_jobs"] for d in scan_results)

        victims = _degrade_store(store)
        degraded_scan = _run_battery(store, plans, "auto")
        degraded_tree = _run_battery(store, plans, "tree")
        # The tree reference never consults sidecars, so it reports no
        # degradation; values must still match the fallback scan.
        degraded_identical = all(
            dict(s, degraded_jobs=[]) == t
            for s, t in zip(degraded_scan, degraded_tree)
        )
        reported = sorted(
            {job for d in degraded_scan for job in d["degraded_jobs"]}
        )

    return {
        "small": small,
        "archives": archives,
        "reps": reps,
        "plans": [plan.canonical() for plan in plans],
        "scan": {
            "tree_s": round(tree_s, 4),
            "columnar_s": round(scan_s, 4),
            "speedup": round(tree_s / scan_s, 2) if scan_s else None,
            "identical_results": identical,
            "clean_scan": clean,
        },
        "degraded": {
            "jobs": victims,
            "reported": reported,
            "identical_results": degraded_identical,
        },
    }


def render_fleet_bench(document: Dict[str, Any]) -> str:
    """Human-readable summary of one fleet benchmark document."""
    scan = document["scan"]
    degraded = document["degraded"]
    return "\n".join([
        f"fleet benchmark ({document['archives']} archives, "
        f"{len(document['plans'])} plans, "
        f"{'small' if document['small'] else 'full'} fleet)",
        f"  scan: tree {scan['tree_s']:.2f}s, "
        f"columnar {scan['columnar_s']:.2f}s "
        f"({scan['speedup']}x over {document['reps']} reps)",
        f"  results identical: {scan['identical_results']}",
        f"  degraded store: {len(degraded['jobs'])} damaged, "
        f"reported {degraded['reported']}, "
        f"identical: {degraded['identical_results']}",
    ])


def extract_fleet_metrics(document: Dict[str, Any]) -> Dict[str, Any]:
    """The gate metrics of one fleet benchmark document."""
    return {
        "fleet_scan_speedup": document.get("scan", {}).get("speedup"),
    }


def fleet_baseline_document(document: Dict[str, Any]) -> Dict[str, Any]:
    """The committed ``BENCH_fleet.json`` shape for one bench run."""
    return {
        "schema": 1,
        "small": document["small"],
        "tolerance": GATE_TOLERANCE,
        "metrics": extract_fleet_metrics(document),
    }


def compare_fleet_bench(
    baseline: Dict[str, Any],
    document: Dict[str, Any],
    tolerance: Optional[float] = None,
) -> List[str]:
    """Regressions of ``document`` against a committed fleet baseline."""
    if tolerance is None:
        tolerance = float(baseline.get("tolerance", GATE_TOLERANCE))
    return compare_gate_metrics(
        baseline.get("metrics", {}), extract_fleet_metrics(document),
        FLEET_GATE_METRICS, tolerance,
    )
