"""Extension experiment: four-platform cross-comparison.

The payoff of identical domain-level models (Section 3.4): one table
comparing every platform with a working engine — the paper's two systems
under test plus the Hadoop baseline and the PGX.D-style engine — on the
same BFS workload, with Ts/Td/Tp derived uniformly from the archives.

Expected shape (from Table 1's positioning and the platforms' papers):
PGX.D fastest overall, Giraph beating PowerGraph end-to-end despite the
slower processing phase, Hadoop slowest.
"""

from __future__ import annotations

from typing import Optional

from repro.core.comparison import compare_platforms
from repro.experiments.common import (
    ExperimentResult,
    GIRAPH_BFS,
    POWERGRAPH_BFS,
    shared_runner,
)
from repro.experiments.ext_hadoop_baseline import HADOOP_BFS
from repro.workloads.runner import WorkloadRunner
from repro.workloads.spec import WorkloadSpec

PGXD_BFS = WorkloadSpec("PGX.D", "bfs", "dg1000-scaled", workers=8)


def run_cross_platform(
    runner: Optional[WorkloadRunner] = None,
) -> ExperimentResult:
    """BFS on dg1000-scaled across all four working engines."""
    runner = runner or shared_runner()
    archives = [
        runner.run(spec).archive
        for spec in (GIRAPH_BFS, POWERGRAPH_BFS, HADOOP_BFS, PGXD_BFS)
    ]
    report = compare_platforms(archives)
    order = [m.platform for m in report.metrics]
    by_platform = {m.platform: m for m in report.metrics}
    speedups = report.speedup("total_s")

    checks = [
        ("PGX.D is the fastest platform end-to-end",
         order[0] == "PGX.D"),
        ("Hadoop is the slowest platform end-to-end",
         order[-1] == "Hadoop"),
        ("Giraph beats PowerGraph end-to-end (the Fig. 5 result)",
         order.index("Giraph") < order.index("PowerGraph")),
        ("PowerGraph's processing beats Giraph's (the Fig. 5 nuance)",
         by_platform["PowerGraph"].processing_s
         < by_platform["Giraph"].processing_s),
        ("specialized platforms beat the general one by design "
         "(every specialized total < Hadoop's)",
         all(by_platform[p].total_s < by_platform["Hadoop"].total_s
             for p in ("Giraph", "PowerGraph", "PGX.D"))),
    ]
    text = "\n\n".join([
        "Extension: four-platform comparison "
        "(BFS, dg1000-scaled, 8 nodes)",
        report.render_text(),
        "slowdown vs fastest: " + ", ".join(
            f"{platform} {factor:.1f}x"
            for platform, factor in sorted(speedups.items(),
                                           key=lambda kv: kv[1])
        ),
    ])
    return ExperimentResult(
        experiment_id="ext-cross-platform",
        title="Four-platform cross-comparison (Section 3.4 metrics)",
        paper={
            "premise": "identical domain-level operations enable "
                       "cross-platform comparison and benchmarking",
        },
        measured={
            "order_fastest_first": order,
            "totals_s": {m.platform: round(m.total_s, 1)
                         for m in report.metrics},
            "processing_s": {m.platform: round(m.processing_s, 1)
                             for m in report.metrics},
        },
        checks=checks,
        text=text,
    )
