"""Shared experiment plumbing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.workloads.runner import WorkloadRunner
from repro.workloads.spec import WorkloadSpec


@dataclass
class ExperimentResult:
    """Outcome of reproducing one paper artifact.

    Attributes:
        experiment_id: ``"table1"``, ``"fig5"``, ...
        title: the paper artifact's caption, abbreviated.
        paper: the paper's reported numbers/claims, as label -> value.
        measured: our measured values, aligned with ``paper`` labels
            where a quantitative comparison exists.
        checks: (claim, holds) pairs — the qualitative shape assertions
            ("PowerGraph I/O dominates", "Compute-4 longest", ...).
        text: printable rendering of the artifact.
        data: extra machine-readable payload for downstream use.
    """

    experiment_id: str
    title: str
    paper: Dict[str, Any] = field(default_factory=dict)
    measured: Dict[str, Any] = field(default_factory=dict)
    checks: List[Tuple[str, bool]] = field(default_factory=list)
    text: str = ""
    data: Dict[str, Any] = field(default_factory=dict)

    @property
    def all_checks_pass(self) -> bool:
        """True when every qualitative shape check holds."""
        return all(ok for _claim, ok in self.checks)

    def summary_line(self) -> str:
        """One status line for harness output."""
        status = "OK" if self.all_checks_pass else "SHAPE MISMATCH"
        return (
            f"[{self.experiment_id}] {self.title}: {status} "
            f"({sum(ok for _c, ok in self.checks)}/{len(self.checks)} checks)"
        )


_SHARED_RUNNER: Optional[WorkloadRunner] = None


def shared_runner() -> WorkloadRunner:
    """A process-wide runner so experiments reuse each other's runs.

    Figures 5, 6 and 8 all analyze the same Giraph BFS job (as the paper
    does); sharing the runner means that job executes once.
    """
    global _SHARED_RUNNER
    if _SHARED_RUNNER is None:
        _SHARED_RUNNER = WorkloadRunner()
    return _SHARED_RUNNER


#: The paper's headline workloads.
GIRAPH_BFS = WorkloadSpec("Giraph", "bfs", "dg1000-scaled", workers=8)
POWERGRAPH_BFS = WorkloadSpec("PowerGraph", "bfs", "dg1000-scaled", workers=8)
