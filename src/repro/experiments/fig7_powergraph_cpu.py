"""Figure 7: CPU utilization of PowerGraph operations.

The paper's observations to reproduce:

1. During LoadGraph only ONE compute node utilizes the CPU; the others
   idle ("only one compute node is responsible for loading").
2. Only toward the end of LoadGraph do the other nodes participate
   (building the in-memory structure) and continue into ProcessGraph.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import (
    ExperimentResult,
    POWERGRAPH_BFS,
    shared_runner,
)
from repro.workloads.runner import WorkloadRunner


def run_fig7(runner: Optional[WorkloadRunner] = None) -> ExperimentResult:
    """Reproduce the Figure 7 utilization analysis."""
    runner = runner or shared_runner()
    iteration = runner.run(POWERGRAPH_BFS)
    chart = iteration.utilization

    load_windows = [(s, e) for m, s, e in chart.boundaries
                    if m == "LoadGraph"]
    load_start = min(s for s, _e in load_windows)
    load_end = max(e for _s, e in load_windows)
    # "Toward the end": the last 10% of the LoadGraph window, where graph
    # finalization engages every rank.
    tail_start = load_end - 0.1 * (load_end - load_start)

    cpu_head = {}
    cpu_tail = {}
    for node, points in chart.series.items():
        head = [v for t, v in points if load_start <= t < tail_start]
        tail = [v for t, v in points if tail_start <= t < load_end]
        cpu_head[node] = sum(head) / len(head) if head else 0.0
        cpu_tail[node] = sum(tail) / len(tail) if tail else 0.0

    loader = max(cpu_head, key=lambda n: cpu_head[n])
    others_head = [v for n, v in cpu_head.items() if n != loader]
    others_tail = [v for n, v in cpu_tail.items() if n != loader]

    proc_windows = [(s, e) for m, s, e in chart.boundaries
                    if m == "ProcessGraph"]
    proc_active_nodes = sum(
        1 for points in chart.series.values()
        if any(v > 1.0 for t, v in points
               if any(s <= t < e for s, e in proc_windows))
    )

    checks = [
        ("exactly one node busy during the bulk of LoadGraph",
         cpu_head[loader] > 8.0 and all(v < 1.0 for v in others_head)),
        ("other nodes idle while the loader streams (< 1 core avg)",
         all(v < 1.0 for v in others_head)),
        ("other nodes join toward the end of LoadGraph",
         all(v > 1.0 for v in others_tail)),
        ("all nodes participate in ProcessGraph",
         proc_active_nodes == len(chart.series)),
    ]
    text = ("Figure 7: CPU utilization of PowerGraph operations\n"
            + chart.render_text())
    return ExperimentResult(
        experiment_id="fig7",
        title="CPU utilization of PowerGraph operations",
        paper={
            "load": "only one node utilizes the CPU; others idle",
            "load_end": "other nodes join to build the in-memory graph",
        },
        measured={
            "loader_node": loader,
            "loader_mean_cores": round(cpu_head[loader], 2),
            "others_mean_cores_head": round(
                sum(others_head) / len(others_head), 3),
            "others_mean_cores_tail": round(
                sum(others_tail) / len(others_tail), 2),
        },
        checks=checks,
        text=text,
        data={"chart": chart},
    )
