"""Figure 5: job decomposition at the domain level.

BFS on dg1000 with 8 nodes, Giraph vs PowerGraph.  The paper reports:

- Giraph: setup 30.9%, input/output 43.3%, processing 25.8% of 81.59 s.
- PowerGraph: input/output 94.8%, processing < 3.1% of 400.38 s, despite
  a faster processing time than Giraph's.
"""

from __future__ import annotations

from typing import Optional

from repro.core.visualize.render_text import table
from repro.experiments.common import (
    ExperimentResult,
    GIRAPH_BFS,
    POWERGRAPH_BFS,
    shared_runner,
)
from repro.workloads.runner import WorkloadRunner

#: Paper-reported shares (percent) and totals (seconds).
PAPER_GIRAPH = {"Setup": 30.9, "Input/output": 43.3, "Processing": 25.8,
                "total_s": 81.59}
PAPER_POWERGRAPH = {"Input/output": 94.8, "Processing": 3.1,
                    "total_s": 400.38}

#: Tolerance on reproduced shares (percentage points).
SHARE_TOLERANCE = 6.0


def run_fig5(runner: Optional[WorkloadRunner] = None) -> ExperimentResult:
    """Reproduce the Figure 5 decomposition for both platforms."""
    runner = runner or shared_runner()
    giraph = runner.run(GIRAPH_BFS).breakdown
    powergraph = runner.run(POWERGRAPH_BFS).breakdown

    g_shares = {phase: share * 100 for phase, (_d, share)
                in giraph.phases.items()}
    p_shares = {phase: share * 100 for phase, (_d, share)
                in powergraph.phases.items()}

    giraph_processing_s = giraph.phases["Processing"][0]
    powergraph_processing_s = powergraph.phases["Processing"][0]

    checks = [
        *(
            (f"Giraph {phase} share within {SHARE_TOLERANCE:.0f}pp of "
             f"{PAPER_GIRAPH[phase]:.1f}%",
             abs(g_shares[phase] - PAPER_GIRAPH[phase]) <= SHARE_TOLERANCE)
            for phase in ("Setup", "Input/output", "Processing")
        ),
        ("PowerGraph input/output dominates (>= 90%)",
         p_shares["Input/output"] >= 90.0),
        ("PowerGraph processing share small (<= 5%)",
         p_shares["Processing"] <= 5.0),
        ("PowerGraph processing absolutely faster than Giraph's",
         powergraph_processing_s < giraph_processing_s),
        ("PowerGraph total runtime a multiple of Giraph's (3-7x)",
         3.0 <= powergraph.total / giraph.total <= 7.0),
    ]
    rows = [
        ("Giraph", f"{giraph.total:.2f}", f"{g_shares['Setup']:.1f}",
         f"{g_shares['Input/output']:.1f}", f"{g_shares['Processing']:.1f}"),
        ("paper", f"{PAPER_GIRAPH['total_s']:.2f}", "30.9", "43.3", "25.8"),
        ("PowerGraph", f"{powergraph.total:.2f}", f"{p_shares['Setup']:.1f}",
         f"{p_shares['Input/output']:.1f}", f"{p_shares['Processing']:.1f}"),
        ("paper", f"{PAPER_POWERGRAPH['total_s']:.2f}", "-", ">= 94.8",
         "< 3.1"),
    ]
    text = "\n\n".join([
        "Figure 5: job decomposition at the domain level "
        "(BFS, dg1000-scaled, 8 nodes)",
        giraph.render_text(),
        powergraph.render_text(),
        table(("System", "Total (s)", "Setup %", "I/O %", "Processing %"),
              rows),
    ])
    return ExperimentResult(
        experiment_id="fig5",
        title="Job decomposition at the domain level",
        paper={"giraph": PAPER_GIRAPH, "powergraph": PAPER_POWERGRAPH},
        measured={
            "giraph": {**{k: round(v, 1) for k, v in g_shares.items()},
                       "total_s": round(giraph.total, 2)},
            "powergraph": {**{k: round(v, 1) for k, v in p_shares.items()},
                           "total_s": round(powergraph.total, 2)},
        },
        checks=checks,
        text=text,
        data={"giraph": giraph, "powergraph": powergraph},
    )
