"""Extension experiment: salvage ingestion and degraded analysis.

Exercises the resilient monitoring→archive pipeline end to end on a
*faulted* run whose log is then damaged the way real crashed collectors
damage logs: crash-truncated at ~70%, last line cut mid-field, lines
duplicated, neighbors reordered, binary garbage and malformed GRANULA
lines injected.

The pipeline must:

- salvage the log into an archive (typed ingest report, no raw
  exceptions), attributing every anomaly to its node;
- mark synthesized spans as ``inferred`` so degraded analysis
  (diagnosis, choke points, Figure 5 breakdown) reports a completeness
  score instead of overstating confidence;
- still attribute a large, quantified fraction of the true makespan;
- survive storage damage: a corrupted ``index.json`` is rebuilt from
  the archive files, a bit-flipped archive is caught by its checksum,
  and a crash-truncated archive file is recovered by the lenient
  loader and made structurally sound by ``repair``.
"""

from __future__ import annotations

import random
import tempfile
from pathlib import Path
from typing import List, Optional

from repro.core.analysis.chokepoint import find_choke_points
from repro.core.analysis.completeness import (
    assess_completeness,
    effective_makespan,
)
from repro.core.analysis.diagnosis import diagnose, render_findings
from repro.core.archive.integrity import (
    load_salvaged,
    repair_archive,
    validate_archive,
    validate_text,
    worst_severity,
)
from repro.core.archive.serialize import archive_from_json, archive_to_json
from repro.core.archive.store import ArchiveStore
from repro.core.monitor.salvage import salvage_archive
from repro.core.visualize.breakdown import compute_breakdown
from repro.experiments.common import ExperimentResult, shared_runner
from repro.platforms.faults import FaultPlan, WorkerCrash
from repro.workloads.runner import WorkloadRunner
from repro.workloads.spec import WorkloadSpec

GIRAPH_BFS_100 = WorkloadSpec("Giraph", "bfs", "dg100-scaled", workers=8)

#: Fraction of the log kept before the simulated collector crash.
TRUNCATE_AT = 0.7


def salvage_plan() -> FaultPlan:
    """The faulted run whose log gets damaged: worker crash + recovery."""
    return FaultPlan(
        events=(WorkerCrash(worker=1, superstep=2),),
        checkpoint_interval=2,
        seed=13,
    )


def _mangle(lines: List[str], seed: int = 29) -> List[str]:
    """Damage a log the way crashed collectors do (deterministically)."""
    rng = random.Random(seed)
    kept = list(lines[: int(len(lines) * TRUNCATE_AT)])
    # The collector died mid-write: the last line stops mid-field.
    kept[-1] = kept[-1][: len(kept[-1]) // 2]
    mangled = list(kept)
    # Retransmissions duplicate a few lines verbatim.
    for index in sorted(rng.sample(range(len(kept) // 2), 5), reverse=True):
        mangled.insert(index, kept[index])
    # Buffered per-node flushing reorders neighbors.
    for index in rng.sample(range(len(mangled) - 1), 8):
        mangled[index], mangled[index + 1] = (
            mangled[index + 1], mangled[index],
        )
    # Interleaved binary garbage and a half-written GRANULA line.
    mangled.insert(12, "\x00\x7f\x1b[0m binary garbage")
    mangled.insert(30, "GRANULA ts=not-a-number job=broken event=start")
    return mangled


def run_salvage(runner: Optional[WorkloadRunner] = None) -> ExperimentResult:
    """Salvage a crash-damaged log and analyse the partial archive."""
    runner = runner or shared_runner()

    # A faulted run (PR 1's fault machinery): worker crash + recovery.
    iteration = runner.run(GIRAPH_BFS_100, faults=salvage_plan())
    full_archive = iteration.archive
    full_makespan = effective_makespan(full_archive)
    lines = iteration.run.result.log_lines

    # -- salvage ingestion -------------------------------------------------
    mangled = _mangle(lines)
    archive, report = salvage_archive(mangled, platform="Giraph")
    completeness = assess_completeness(archive)
    findings = diagnose(archive)
    chokes = find_choke_points(archive)
    breakdown = compute_breakdown(archive)
    salvaged_span = effective_makespan(archive)
    measurable = salvaged_span / full_makespan

    # Salvage is deterministic: same damage, byte-identical archive.
    replay, _ = salvage_archive(_mangle(lines), platform="Giraph")
    identical = archive_to_json(archive) == archive_to_json(replay)

    # The salvaged archive round-trips through the checksummed format.
    round_trip = archive_from_json(archive_to_json(archive), verify=True)

    # -- storage damage ----------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        store = ArchiveStore(tmp)
        path = store.save(archive)
        # 1: corrupt index.json -> rebuilt from the archive files.
        (Path(tmp) / "index.json").write_text("{ not json", encoding="utf-8")
        reopened = ArchiveStore(tmp)
        index_rebuilt = archive.job_id in reopened
        # 2: bit-flip the archive payload -> checksum catches it, the
        # lenient loader still returns the archive.
        text = path.read_text()
        flipped = text.replace('"platform":"Giraph"',
                               '"platform":"Xiraph"', 1)
        flip_findings = validate_text(flipped)
        flip_caught = worst_severity(flip_findings) == "critical"
        flip_archive, _ = load_salvaged(flipped)
        # 3: crash-truncate the file -> prefix recovery + repair.
        truncated = text[: int(len(text) * 0.6)]
        recovered, recovery_findings = load_salvaged(truncated)
        repaired_ok = False
        if recovered is not None:
            repaired, _fixes = repair_archive(recovered)
            repaired_ok = worst_severity(validate_archive(repaired)) in (
                None, "warning", "info",
            )

    checks = [
        ("salvage recovers records from the damaged log",
         report.records > 0 and not report.clean),
        ("every injected anomaly class is reported",
         report.malformed >= 1 and report.duplicate_records >= 5
         and report.reordered >= 1 and report.inferred_ends >= 1),
        ("anomalies are attributed per node",
         sum(stats.total for stats in report.per_node.values()) > 0),
        ("synthesized spans carry inferred provenance",
         completeness.inferred >= report.inferred_ends
         and 0 < completeness.score < 1),
        ("diagnosis flags the archive as incomplete instead of raising",
         any(f.kind == "incomplete" for f in findings)),
        ("choke points still computable on the partial archive",
         len(chokes) >= 1),
        ("degraded breakdown carries its completeness score",
         breakdown.completeness < 1
         and "PARTIAL ARCHIVE" in breakdown.render_text()),
        (f"salvage attributes >= {TRUNCATE_AT:.0%} x 0.8 of the makespan",
         measurable >= TRUNCATE_AT * 0.8),
        ("salvage is deterministic (byte-identical replay)", identical),
        ("salvaged archive round-trips with a verified checksum",
         round_trip.job_id == archive.job_id),
        ("corrupt index.json is rebuilt from archive files",
         index_rebuilt),
        ("bit-flipped archive is caught by its checksum",
         flip_caught and flip_archive is not None),
        ("crash-truncated archive file is recovered and repaired",
         recovered is not None
         and any(f.code == "truncated-json" for f in recovery_findings)
         and repaired_ok),
    ]

    text_report = "\n\n".join([
        "Extension: salvage ingestion and degraded analysis "
        "(faulted Giraph BFS, dg100-scaled, crash-truncated log)",
        report.render_text(),
        completeness.render_text(),
        f"measurable window: {salvaged_span:.2f}s of "
        f"{full_makespan:.2f}s ({measurable * 100:.1f}%)",
        "degraded diagnosis:\n" + render_findings(findings),
    ])
    return ExperimentResult(
        experiment_id="ext-salvage",
        title="Salvage ingestion with degraded analysis (robustness)",
        paper={
            "claim": "fine-grained analysis needs complete logs; this "
                     "extension quantifies how much analysis survives "
                     "incomplete ones",
        },
        measured={
            "records_salvaged": report.records,
            "completeness": round(completeness.score, 4),
            "measurable_fraction": round(measurable, 4),
            "inferred_operations": completeness.inferred,
            "deterministic_replay": identical,
        },
        checks=checks,
        text=text_report,
        data={
            "ingest": report.to_dict(),
            "completeness": completeness.to_dict(),
            "choke_points": [c.mission for c in chokes],
        },
    )
