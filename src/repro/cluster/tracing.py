"""Cluster event tracing.

A lightweight append-only trace of simulated-cluster events (provisioning,
filesystem activity, network transfers).  The Granula monitor does not read
this trace directly — platforms emit their own logs — but it is invaluable
for debugging simulations and is exposed to tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence


@dataclass(frozen=True)
class TraceEvent:
    """One traced cluster event.

    Attributes:
        timestamp: simulated time of the event.
        category: coarse grouping, e.g. ``"yarn"``, ``"hdfs"``, ``"mpi"``.
        name: event name within the category, e.g. ``"container_started"``.
        node: node name the event concerns, if any.
        payload: extra structured detail.
    """

    timestamp: float
    category: str
    name: str
    node: Optional[str] = None
    payload: Dict[str, Any] = field(default_factory=dict)


class Trace:
    """Append-only sequence of :class:`TraceEvent`."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []

    def emit(
        self,
        timestamp: float,
        category: str,
        name: str,
        node: Optional[str] = None,
        **payload: Any,
    ) -> TraceEvent:
        """Append an event and return it."""
        event = TraceEvent(timestamp, category, name, node, dict(payload))
        self._events.append(event)
        return event

    @property
    def events(self) -> Sequence[TraceEvent]:
        """All events, in emission order."""
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def by_category(self, category: str) -> List[TraceEvent]:
        """All events with the given category, in order."""
        return [e for e in self._events if e.category == category]

    def by_node(self, node: str) -> List[TraceEvent]:
        """All events attributed to the given node, in order."""
        return [e for e in self._events if e.node == node]

    def clear(self) -> None:
        """Drop all events (between independent runs)."""
        self._events.clear()
