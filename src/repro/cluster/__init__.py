"""Simulated cluster environment substrate.

The paper evaluates Giraph and PowerGraph on 8 compute nodes of the DAS5
supercomputer.  This package provides the stand-in: a deterministic,
discrete-time cluster simulation with per-node CPU accounting, a network
cost model, local/shared/HDFS-like filesystems, and Yarn/MPI-style resource
provisioning.  Platform engines execute *real* graph algorithms while
charging simulated time to nodes; the Granula environment monitor then
samples per-node CPU series exactly as the paper's Figures 6-7 plot them.
"""

from repro.cluster.clock import SimClock
from repro.cluster.cpu import BusyInterval, CpuAccount, UsageSeries
from repro.cluster.node import Node
from repro.cluster.cluster import Cluster
from repro.cluster.network import NetworkModel
from repro.cluster.filesystem import LocalFileSystem, SharedFileSystem, SimulatedFile
from repro.cluster.hdfs import HdfsFileSystem
from repro.cluster.provisioning import (
    Allocation,
    MpiLauncher,
    NativeLauncher,
    YarnManager,
)
from repro.cluster.tracing import Trace, TraceEvent

__all__ = [
    "SimClock",
    "BusyInterval",
    "CpuAccount",
    "UsageSeries",
    "Node",
    "Cluster",
    "NetworkModel",
    "LocalFileSystem",
    "SharedFileSystem",
    "SimulatedFile",
    "HdfsFileSystem",
    "Allocation",
    "YarnManager",
    "MpiLauncher",
    "NativeLauncher",
    "Trace",
    "TraceEvent",
]
