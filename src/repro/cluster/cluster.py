"""The simulated cluster: nodes + clock + network + storage + trace."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cluster.clock import SimClock
from repro.cluster.filesystem import LocalFileSystem, SharedFileSystem, StorageModel
from repro.cluster.hdfs import HdfsFileSystem
from repro.cluster.network import NetworkModel, das5_network
from repro.cluster.node import Node, das5_node
from repro.cluster.tracing import Trace
from repro.errors import ClusterError

#: Node names used in the paper's Giraph experiment (Figure 6).
DAS5_GIRAPH_NODES = (
    "node340", "node345", "node341", "node346",
    "node342", "node347", "node344", "node339",
)

#: Node names used in the paper's PowerGraph experiment (Figure 7).
DAS5_POWERGRAPH_NODES = (
    "node309", "node312", "node314", "node310",
    "node311", "node308", "node307", "node313",
)


class Cluster:
    """A set of simulated compute nodes sharing clock, network and storage.

    A cluster owns:

    - one :class:`~repro.cluster.clock.SimClock` (all activity is stamped
      against it),
    - one :class:`~repro.cluster.network.NetworkModel`,
    - a per-node :class:`~repro.cluster.filesystem.LocalFileSystem`,
    - one :class:`~repro.cluster.filesystem.SharedFileSystem` mounted
      everywhere, and
    - one :class:`~repro.cluster.hdfs.HdfsFileSystem` with every node as a
      datanode,
    - one :class:`~repro.cluster.tracing.Trace`.
    """

    def __init__(
        self,
        nodes: Sequence[Node],
        network: Optional[NetworkModel] = None,
        clock: Optional[SimClock] = None,
        hdfs_block_size: int = 128 << 20,
        hdfs_replication: int = 3,
        storage: Optional[StorageModel] = None,
    ):
        if not nodes:
            raise ClusterError("cluster needs at least one node")
        names = [n.name for n in nodes]
        if len(set(names)) != len(names):
            raise ClusterError(f"duplicate node names: {names}")
        self.nodes: List[Node] = list(nodes)
        self.network = network or das5_network()
        self.clock = clock or SimClock()
        self.trace = Trace()
        self.local_fs: Dict[str, LocalFileSystem] = {
            n.name: LocalFileSystem(n.name, storage) for n in self.nodes
        }
        self.shared_fs = SharedFileSystem(storage)
        self.hdfs = HdfsFileSystem(
            names,
            block_size=hdfs_block_size,
            replication=hdfs_replication,
            storage=storage,
        )

    @property
    def size(self) -> int:
        """Number of compute nodes."""
        return len(self.nodes)

    @property
    def node_names(self) -> List[str]:
        """Names of all nodes, in cluster order."""
        return [n.name for n in self.nodes]

    def node(self, name: str) -> Node:
        """Look up a node by name; raises if unknown."""
        for n in self.nodes:
            if n.name == name:
                return n
        raise ClusterError(f"no such node: {name!r}")

    def reset(self) -> None:
        """Clear per-run state: clock, CPU accounting, trace.

        Filesystem contents are kept — datasets survive across runs just
        like on a real cluster.
        """
        self.clock.reset()
        self.trace.clear()
        for n in self.nodes:
            n.reset()

    def parallel_work(
        self,
        durations: Dict[str, float],
        cores: float,
        tag: str,
        advance: bool = True,
    ) -> float:
        """Charge per-node work running in parallel from ``clock.now()``.

        ``durations`` maps node name to that node's busy duration.  All
        nodes start together; the region ends when the slowest finishes.
        Returns the region's span (max duration).  When ``advance`` is
        True the cluster clock moves to the end of the region.
        """
        if not durations:
            return 0.0
        start = self.clock.now()
        span = 0.0
        for name, duration in durations.items():
            if duration < 0:
                raise ClusterError(f"negative duration for {name}: {duration}")
            self.node(name).work(start, duration, cores, tag)
            span = max(span, duration)
        if advance:
            self.clock.advance(span)
        return span

    def __repr__(self) -> str:
        return f"Cluster(size={self.size}, now={self.clock.now():.3f})"


def das5_cluster(
    n_nodes: int = 8,
    node_names: Optional[Sequence[str]] = None,
) -> Cluster:
    """Build a DAS5-like cluster of ``n_nodes`` 16-core/64 GiB nodes.

    ``node_names`` overrides the generated names (the experiments pass the
    paper's actual node lists so figures label identically).
    """
    if node_names is not None:
        names = list(node_names)
        if len(names) != n_nodes:
            raise ClusterError(
                f"{n_nodes} nodes requested but {len(names)} names given"
            )
    else:
        names = [f"node{300 + i}" for i in range(n_nodes)]
    return Cluster([das5_node(name) for name in names])
