"""Simulated filesystems: local disk and shared (NFS-like) storage.

PowerGraph in the paper loads its input from a local/shared filesystem,
sequentially, from a single node — the behaviour behind Figure 7.  These
filesystems store *simulated files*: a path, a byte size, and an optional
payload object (e.g. the actual edge list) so that engines can both charge
realistic I/O time and really read the data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import FileSystemError


@dataclass
class SimulatedFile:
    """A file stored in a simulated filesystem.

    Attributes:
        path: absolute path within the filesystem namespace.
        size_bytes: logical size used for I/O cost computation.
        payload: the actual in-memory content (any object); engines read
            this to do real work while the size drives simulated time.
    """

    path: str
    size_bytes: int
    payload: Any = None

    def __post_init__(self) -> None:
        if not self.path.startswith("/"):
            raise FileSystemError(f"path must be absolute: {self.path!r}")
        if self.size_bytes < 0:
            raise FileSystemError(f"negative file size: {self.size_bytes}")


@dataclass(frozen=True)
class StorageModel:
    """Cost model of one storage device/service."""

    read_bps: float = 500e6
    write_bps: float = 350e6
    seek_s: float = 5e-3

    def read_time(self, nbytes: int) -> float:
        """Seconds to read ``nbytes`` sequentially."""
        if nbytes < 0:
            raise FileSystemError(f"negative read size: {nbytes}")
        return self.seek_s + nbytes / self.read_bps

    def write_time(self, nbytes: int) -> float:
        """Seconds to write ``nbytes`` sequentially."""
        if nbytes < 0:
            raise FileSystemError(f"negative write size: {nbytes}")
        return self.seek_s + nbytes / self.write_bps


class _BaseFileSystem:
    """Shared implementation of a flat path -> file namespace."""

    def __init__(self, name: str, storage: Optional[StorageModel] = None):
        self.name = name
        self.storage = storage or StorageModel()
        self._files: Dict[str, SimulatedFile] = {}

    def put(self, path: str, size_bytes: int, payload: Any = None) -> SimulatedFile:
        """Create or replace a file; returns the stored file."""
        f = SimulatedFile(path, size_bytes, payload)
        self._files[path] = f
        return f

    def get(self, path: str) -> SimulatedFile:
        """Look up a file; raises :class:`FileSystemError` if missing."""
        try:
            return self._files[path]
        except KeyError:
            raise FileSystemError(f"{self.name}: no such file {path!r}") from None

    def exists(self, path: str) -> bool:
        """Whether a file exists at ``path``."""
        return path in self._files

    def delete(self, path: str) -> None:
        """Remove a file; raises if it does not exist."""
        if path not in self._files:
            raise FileSystemError(f"{self.name}: cannot delete missing file {path!r}")
        del self._files[path]

    def listdir(self, prefix: str = "/") -> List[str]:
        """Paths beginning with ``prefix``, sorted."""
        return sorted(p for p in self._files if p.startswith(prefix))

    def total_bytes(self) -> int:
        """Sum of all file sizes."""
        return sum(f.size_bytes for f in self._files.values())

    def __contains__(self, path: str) -> bool:
        return self.exists(path)

    def __iter__(self) -> Iterator[SimulatedFile]:
        return iter(self._files.values())

    def read_time(self, path: str) -> float:
        """Seconds one reader needs to stream the whole file."""
        return self.storage.read_time(self.get(path).size_bytes)

    def write_time(self, nbytes: int) -> float:
        """Seconds to write ``nbytes``."""
        return self.storage.write_time(nbytes)


class LocalFileSystem(_BaseFileSystem):
    """Node-local disk; visible only to one node."""

    def __init__(self, node_name: str, storage: Optional[StorageModel] = None):
        super().__init__(f"local:{node_name}", storage)
        self.node_name = node_name


class SharedFileSystem(_BaseFileSystem):
    """NFS-like shared filesystem mounted on every node.

    Concurrent readers contend for the server's bandwidth:
    :meth:`contended_read_time` divides throughput by the number of
    concurrent streams.
    """

    def __init__(self, storage: Optional[StorageModel] = None, name: str = "shared"):
        super().__init__(name, storage)

    def contended_read_time(self, path: str, concurrent_readers: int) -> float:
        """Seconds to stream ``path`` when ``concurrent_readers`` share it."""
        if concurrent_readers <= 0:
            raise FileSystemError(
                f"need at least one reader, got {concurrent_readers}"
            )
        return self.storage.seek_s + (
            self.get(path).size_bytes * concurrent_readers / self.storage.read_bps
        )
