"""HDFS-like distributed filesystem.

Giraph in the paper loads its partitions from HDFS: files are split into
blocks, blocks are replicated and spread across datanodes, and each worker
reads (mostly) node-local blocks in parallel.  That parallel, CPU-heavy
load path is what separates Figure 6 from PowerGraph's Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.cluster.filesystem import StorageModel
from repro.cluster.retry import HDFS_READ_RETRY, RetryPolicy
from repro.errors import FileSystemError


@dataclass(frozen=True)
class FailoverRead:
    """Outcome of reading one block through replica failover.

    Attributes:
        duration_s: total wall time the reader spent on the block
            (failed partial reads + the successful replica read).
        wasted_s: the share of ``duration_s`` burnt in failed attempts.
        attempts: replica reads made (1 = the local read succeeded).
        recovered: whether any replica finally served the block.
    """

    duration_s: float
    wasted_s: float
    attempts: int
    recovered: bool


@dataclass(frozen=True)
class HdfsBlock:
    """One block of a distributed file.

    Attributes:
        path: owning file path.
        index: block index within the file.
        size_bytes: block size (last block may be short).
        replicas: node names holding a replica, primary first.
    """

    path: str
    index: int
    size_bytes: int
    replicas: Sequence[str]

    @property
    def primary(self) -> str:
        """The node holding the primary replica."""
        return self.replicas[0]


@dataclass
class HdfsFile:
    """Metadata of a distributed file: ordered blocks plus payload."""

    path: str
    size_bytes: int
    blocks: List[HdfsBlock]
    payload: Any = None


class HdfsFileSystem:
    """A block-structured distributed filesystem over a set of nodes.

    Blocks are placed round-robin over the datanodes, with replicas on the
    following nodes, which yields the even spread HDFS's default placement
    approximates on a small dedicated cluster.
    """

    def __init__(
        self,
        datanodes: Sequence[str],
        block_size: int = 128 << 20,
        replication: int = 3,
        storage: Optional[StorageModel] = None,
    ):
        if not datanodes:
            raise FileSystemError("HDFS needs at least one datanode")
        if block_size <= 0:
            raise FileSystemError(f"block size must be positive, got {block_size}")
        if replication <= 0:
            raise FileSystemError(f"replication must be positive, got {replication}")
        self.datanodes = list(datanodes)
        self.block_size = block_size
        self.replication = min(replication, len(self.datanodes))
        self.storage = storage or StorageModel()
        self._files: Dict[str, HdfsFile] = {}

    def put(self, path: str, size_bytes: int, payload: Any = None) -> HdfsFile:
        """Store a file, splitting it into placed, replicated blocks."""
        if not path.startswith("/"):
            raise FileSystemError(f"path must be absolute: {path!r}")
        if size_bytes < 0:
            raise FileSystemError(f"negative file size: {size_bytes}")
        blocks: List[HdfsBlock] = []
        remaining = size_bytes
        index = 0
        n = len(self.datanodes)
        while remaining > 0 or (index == 0 and size_bytes == 0):
            size = min(self.block_size, remaining) if size_bytes > 0 else 0
            replicas = tuple(
                self.datanodes[(index + r) % n] for r in range(self.replication)
            )
            blocks.append(HdfsBlock(path, index, size, replicas))
            remaining -= size
            index += 1
            if size_bytes == 0:
                break
        f = HdfsFile(path, size_bytes, blocks, payload)
        self._files[path] = f
        return f

    def get(self, path: str) -> HdfsFile:
        """Look up a file's metadata; raises if missing."""
        try:
            return self._files[path]
        except KeyError:
            raise FileSystemError(f"hdfs: no such file {path!r}") from None

    def exists(self, path: str) -> bool:
        """Whether a file exists at ``path``."""
        return path in self._files

    def delete(self, path: str) -> None:
        """Remove a file; raises when it does not exist."""
        if path not in self._files:
            raise FileSystemError(f"hdfs: cannot delete missing file {path!r}")
        del self._files[path]

    def listdir(self, prefix: str = "/") -> List[str]:
        """Paths beginning with ``prefix``, sorted."""
        return sorted(p for p in self._files if p.startswith(prefix))

    def blocks_on(self, path: str, node: str) -> List[HdfsBlock]:
        """Blocks of ``path`` with a replica on ``node``."""
        return [b for b in self.get(path).blocks if node in b.replicas]

    def assign_splits(self, path: str, readers: Sequence[str]) -> Dict[str, List[HdfsBlock]]:
        """Assign each block of ``path`` to one of ``readers``.

        Locality-aware: a block goes to a reader that holds a replica when
        possible, with ties broken toward the least-loaded reader; remote
        blocks go to the least-loaded reader.  This mirrors Hadoop's input
        split scheduling closely enough for the load-balance behaviour the
        paper observes.
        """
        if not readers:
            raise FileSystemError("need at least one reader")
        load: Dict[str, int] = {r: 0 for r in readers}
        assignment: Dict[str, List[HdfsBlock]] = {r: [] for r in readers}
        for block in self.get(path).blocks:
            local = [r for r in readers if r in block.replicas]
            pool = local if local else list(readers)
            chosen = min(pool, key=lambda r: (load[r], r))
            assignment[chosen].append(block)
            load[chosen] += block.size_bytes
        return assignment

    def read_time(self, nbytes: int, local: bool) -> float:
        """Seconds for one reader to stream ``nbytes`` of block data.

        Remote reads pay the datanode's disk plus a network-ish penalty
        folded into halved throughput.
        """
        if nbytes < 0:
            raise FileSystemError(f"negative read size: {nbytes}")
        bps = self.storage.read_bps if local else self.storage.read_bps / 2
        return self.storage.seek_s + nbytes / bps

    def read_with_failover(
        self,
        nbytes: int,
        failures: int,
        fail_fraction: float = 0.5,
        retry: Optional[RetryPolicy] = None,
    ) -> FailoverRead:
        """Time one block read that fails over to remote replicas.

        The local read dies after streaming ``fail_fraction`` of the
        block ``failures`` times (an I/O error on the local replica);
        each failed attempt is retried on the next replica in the
        pipeline per ``retry`` (default :data:`HDFS_READ_RETRY`).
        Replica reads beyond the first are remote and pay the remote
        read penalty.

        Returns the resolved :class:`FailoverRead`; ``recovered`` is
        False when every replica failed (``failures`` >= the policy's
        ``max_attempts``), in which case the caller escalates.
        """
        if nbytes < 0:
            raise FileSystemError(f"negative read size: {nbytes}")
        if failures < 0:
            raise FileSystemError(f"negative failure count: {failures}")
        if not 0.0 < fail_fraction <= 1.0:
            raise FileSystemError(
                f"fail fraction must be in (0, 1], got {fail_fraction}"
            )
        policy = retry or HDFS_READ_RETRY
        duration = 0.0
        wasted = 0.0
        attempts = 0
        recovered = False
        for attempt in range(1, policy.max_attempts + 1):
            attempts = attempt
            local = attempt == 1
            full = self.read_time(nbytes, local=local)
            if attempt <= failures:
                partial = self.storage.seek_s + (
                    (full - self.storage.seek_s) * fail_fraction
                )
                duration += partial
                wasted += partial
                if attempt < policy.max_attempts:
                    duration += policy.backoff_s(attempt)
                continue
            duration += full
            recovered = True
            break
        return FailoverRead(duration, wasted, attempts, recovered)

    def write_time(self, nbytes: int) -> float:
        """Seconds to write ``nbytes`` through the replication pipeline."""
        if nbytes < 0:
            raise FileSystemError(f"negative write size: {nbytes}")
        # The replication pipeline streams through `replication` nodes.
        return self.storage.seek_s + nbytes * self.replication / self.storage.write_bps

    def total_bytes(self) -> int:
        """Logical bytes stored (before replication)."""
        return sum(f.size_bytes for f in self._files.values())
