"""Resource provisioning: Yarn-like, MPI-like, and native launchers.

Table 1 of the paper distinguishes platforms by their provisioning layer:
Giraph/Hadoop go through Yarn, PowerGraph/GraphMat through MPI, and the
single-node platforms launch natively.  The paper's Figure 6 shows that
Giraph's Startup/Cleanup are latency-bound (low CPU), which is exactly the
behaviour these launchers produce: time passes while containers negotiate,
but almost no CPU is charged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.cluster.clock import SimClock
from repro.cluster.node import Node
from repro.cluster.retry import CONTAINER_RETRY, RetryPolicy
from repro.cluster.tracing import Trace
from repro.errors import ProvisioningError


@dataclass(frozen=True)
class ContainerRetry:
    """One container-launch attempt beyond the first on a node.

    Attributes:
        node: node the container was relaunched on.
        attempt: attempt index (2 = first retry).
        start / end: simulated attempt window (including the preceding
            backoff is the engine's business; this is the launch only).
        ok: whether the attempt brought the container up.
    """

    node: str
    attempt: int
    start: float
    end: float
    ok: bool


@dataclass
class Allocation:
    """A set of provisioned execution containers/slots.

    Attributes:
        allocation_id: unique id within the manager.
        nodes: nodes hosting one container each (a node may appear twice
            when two containers land on it).
        granted_at: simulated time the allocation completed.
        released_at: simulated time it was released, or None while held.
        retries: container relaunch attempts (empty on a healthy path).
        blacklisted: nodes that exhausted the launch retry policy and
            host no container (the engine degrades around them).
    """

    allocation_id: int
    nodes: List[Node]
    granted_at: float
    released_at: Optional[float] = None
    retries: List[ContainerRetry] = field(default_factory=list)
    blacklisted: List[str] = field(default_factory=list)

    @property
    def active(self) -> bool:
        """Whether the allocation is still held."""
        return self.released_at is None

    @property
    def node_names(self) -> List[str]:
        """Names of the nodes hosting containers."""
        return [n.name for n in self.nodes]


class YarnManager:
    """Yarn-like resource manager.

    Container allocation is dominated by latency: the application master
    negotiates with the resource manager, then containers start one
    heartbeat-round at a time.  CPU usage during this period is minimal —
    a small bookkeeping charge on each node.
    """

    def __init__(
        self,
        nodes: Sequence[Node],
        clock: SimClock,
        trace: Optional[Trace] = None,
        am_negotiation_s: float = 4.0,
        container_launch_s: float = 2.2,
        containers_per_round: int = 4,
        bookkeeping_cores: float = 0.08,
    ):
        if not nodes:
            raise ProvisioningError("Yarn manager needs at least one node")
        self.nodes = list(nodes)
        self.clock = clock
        self.trace = trace or Trace()
        self.am_negotiation_s = am_negotiation_s
        self.container_launch_s = container_launch_s
        self.containers_per_round = containers_per_round
        self.bookkeeping_cores = bookkeeping_cores
        self._next_id = 1
        self._allocations: Dict[int, Allocation] = {}

    def allocate(
        self,
        count: int,
        launch_failures: Optional[Mapping[str, int]] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> Allocation:
        """Allocate ``count`` containers, one per node round-robin.

        Advances the clock by the negotiation plus launch-round time and
        charges light bookkeeping CPU on the involved nodes.

        ``launch_failures`` (node name -> failing leading attempts, from
        a fault plan) triggers the retry path: failed launches are
        retried per ``retry`` (default :data:`CONTAINER_RETRY`) with
        backoff, recorded on ``Allocation.retries``; a node that
        exhausts the policy is blacklisted and hosts no container — the
        allocation then returns fewer containers than requested and the
        caller degrades around the dead node.
        """
        if count <= 0:
            raise ProvisioningError(f"container count must be positive: {count}")
        if count > len(self.nodes):
            raise ProvisioningError(
                f"requested {count} containers but only {len(self.nodes)} nodes"
            )
        policy = retry or CONTAINER_RETRY
        failures = dict(launch_failures or {})
        start = self.clock.now()
        self.trace.emit(start, "yarn", "allocation_requested", count=count)
        # Application-master negotiation round-trip.
        self.clock.advance(self.am_negotiation_s)
        chosen = self.nodes[:count]
        # Containers launch in heartbeat rounds of `containers_per_round`.
        rounds = (count + self.containers_per_round - 1) // self.containers_per_round
        launch_total = rounds * self.container_launch_s
        launch_start = self.clock.now()
        granted: List[Node] = []
        retries: List[ContainerRetry] = []
        blacklisted: List[str] = []
        end = launch_start + launch_total
        for i, node in enumerate(chosen):
            round_index = i // self.containers_per_round
            t0 = launch_start + round_index * self.container_launch_s
            schedule = policy.schedule(
                t0, self.container_launch_s, failures.get(node.name, 0)
            )
            for attempt in schedule.attempts:
                node.work(attempt.start, attempt.duration,
                          self.bookkeeping_cores,
                          "yarn:launch" if attempt.index == 1
                          else "yarn:relaunch")
                if not attempt.ok:
                    self.trace.emit(
                        attempt.end, "yarn", "container_launch_failed",
                        node=node.name, attempt=attempt.index,
                    )
                if attempt.index > 1:
                    retries.append(ContainerRetry(
                        node.name, attempt.index,
                        attempt.start, attempt.end, attempt.ok,
                    ))
            if schedule.succeeded:
                granted.append(node)
                self.trace.emit(
                    schedule.end, "yarn", "container_started", node=node.name
                )
            else:
                blacklisted.append(node.name)
                self.trace.emit(
                    schedule.end, "yarn", "node_blacklisted", node=node.name,
                    attempts=policy.max_attempts,
                )
            end = max(end, schedule.end)
        self.clock.advance(end - launch_start)
        if not granted:
            raise ProvisioningError(
                f"all {count} requested containers failed to launch "
                f"(blacklisted: {blacklisted})"
            )
        alloc = Allocation(
            self._next_id, granted, granted_at=self.clock.now(),
            retries=retries, blacklisted=blacklisted,
        )
        self._next_id += 1
        self._allocations[alloc.allocation_id] = alloc
        self.trace.emit(
            alloc.granted_at, "yarn", "allocation_granted",
            allocation_id=alloc.allocation_id, count=len(granted),
        )
        return alloc

    def release(self, allocation: Allocation, teardown_s: float = 1.2) -> None:
        """Release an allocation, advancing the clock by container teardown."""
        if allocation.allocation_id not in self._allocations:
            raise ProvisioningError(
                f"unknown allocation id {allocation.allocation_id}"
            )
        if not allocation.active:
            raise ProvisioningError(
                f"allocation {allocation.allocation_id} already released"
            )
        start = self.clock.now()
        for node in allocation.nodes:
            node.work(start, teardown_s, self.bookkeeping_cores, "yarn:teardown")
        self.clock.advance(teardown_s)
        allocation.released_at = self.clock.now()
        self.trace.emit(
            allocation.released_at, "yarn", "allocation_released",
            allocation_id=allocation.allocation_id,
        )

    @property
    def active_allocations(self) -> List[Allocation]:
        """Allocations not yet released."""
        return [a for a in self._allocations.values() if a.active]


class MpiLauncher:
    """mpirun-like launcher used by PowerGraph/GraphMat.

    MPI startup is quicker than Yarn: ssh fan-out to the hosts plus a
    communicator bootstrap, with negligible CPU.
    """

    def __init__(
        self,
        nodes: Sequence[Node],
        clock: SimClock,
        trace: Optional[Trace] = None,
        ssh_fanout_s: float = 0.35,
        bootstrap_s: float = 1.8,
        bookkeeping_cores: float = 0.05,
    ):
        if not nodes:
            raise ProvisioningError("MPI launcher needs at least one node")
        self.nodes = list(nodes)
        self.clock = clock
        self.trace = trace or Trace()
        self.ssh_fanout_s = ssh_fanout_s
        self.bootstrap_s = bootstrap_s
        self.bookkeeping_cores = bookkeeping_cores
        self._next_id = 1
        self._allocations: Dict[int, Allocation] = {}

    def launch(self, count: int) -> Allocation:
        """Start ``count`` MPI ranks, one per node."""
        if count <= 0:
            raise ProvisioningError(f"rank count must be positive: {count}")
        if count > len(self.nodes):
            raise ProvisioningError(
                f"requested {count} ranks but only {len(self.nodes)} nodes"
            )
        start = self.clock.now()
        self.trace.emit(start, "mpi", "mpirun", count=count)
        chosen = self.nodes[:count]
        # ssh fan-out is tree-structured: log2 rounds.
        rounds = max(1, (count - 1).bit_length())
        duration = rounds * self.ssh_fanout_s + self.bootstrap_s
        for node in chosen:
            node.work(start, duration, self.bookkeeping_cores, "mpi:launch")
        self.clock.advance(duration)
        alloc = Allocation(self._next_id, list(chosen), granted_at=self.clock.now())
        self._next_id += 1
        self._allocations[alloc.allocation_id] = alloc
        self.trace.emit(alloc.granted_at, "mpi", "ranks_ready", count=count)
        return alloc

    def finalize(self, allocation: Allocation, teardown_s: float = 0.6) -> None:
        """MPI_Finalize: tear the communicator down."""
        if allocation.allocation_id not in self._allocations:
            raise ProvisioningError(
                f"unknown allocation id {allocation.allocation_id}"
            )
        if not allocation.active:
            raise ProvisioningError(
                f"allocation {allocation.allocation_id} already finalized"
            )
        start = self.clock.now()
        for node in allocation.nodes:
            node.work(start, teardown_s, self.bookkeeping_cores, "mpi:finalize")
        self.clock.advance(teardown_s)
        allocation.released_at = self.clock.now()
        self.trace.emit(allocation.released_at, "mpi", "finalized")


class NativeLauncher:
    """Single-node platforms (OpenG, TOTEM) just fork a process."""

    def __init__(self, node: Node, clock: SimClock, trace: Optional[Trace] = None,
                 fork_s: float = 0.05):
        self.node = node
        self.clock = clock
        self.trace = trace or Trace()
        self.fork_s = fork_s
        self._next_id = 1

    def launch(self) -> Allocation:
        """Start the process on the single node."""
        start = self.clock.now()
        self.node.work(start, self.fork_s, 0.5, "native:fork")
        self.clock.advance(self.fork_s)
        alloc = Allocation(self._next_id, [self.node], granted_at=self.clock.now())
        self._next_id += 1
        self.trace.emit(alloc.granted_at, "native", "process_started",
                        node=self.node.name)
        return alloc

    def terminate(self, allocation: Allocation) -> None:
        """Terminate the process (instantaneous)."""
        if not allocation.active:
            raise ProvisioningError("process already terminated")
        allocation.released_at = self.clock.now()
        self.trace.emit(allocation.released_at, "native", "process_exited",
                        node=self.node.name)
