"""Deterministic retry policies for the cluster substrate.

Fault tolerance in the simulated cluster is *scheduled*: a fault plan
says which attempts fail, and a :class:`RetryPolicy` says how the
substrate reacts — how many attempts it makes, how long it backs off
between them, and when it gives up.  Everything is a pure function of
the policy parameters, so a seeded fault plan replayed against the same
policy yields byte-identical schedules (and therefore byte-identical
Granula archives).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ClusterError


@dataclass(frozen=True)
class RetryPolicy:
    """How a subsystem retries a failing operation.

    Attributes:
        max_attempts: total attempts, including the first (>= 1).
        base_backoff_s: wait before the first retry.
        backoff_factor: multiplier applied per further retry
            (exponential backoff; 1.0 = constant).
        max_backoff_s: backoff cap.
        attempt_timeout_s: per-attempt deadline; a hung attempt is
            declared failed after this long (None = the attempt's own
            duration is trusted).
    """

    max_attempts: int = 3
    base_backoff_s: float = 1.0
    backoff_factor: float = 2.0
    max_backoff_s: float = 30.0
    attempt_timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ClusterError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_backoff_s < 0:
            raise ClusterError(
                f"base_backoff_s must be >= 0, got {self.base_backoff_s}"
            )
        if self.backoff_factor < 1.0:
            raise ClusterError(
                f"backoff_factor must be >= 1.0, got {self.backoff_factor}"
            )
        if self.max_backoff_s < self.base_backoff_s:
            raise ClusterError(
                f"max_backoff_s {self.max_backoff_s} below base backoff "
                f"{self.base_backoff_s}"
            )
        if self.attempt_timeout_s is not None and self.attempt_timeout_s <= 0:
            raise ClusterError(
                f"attempt_timeout_s must be positive, got "
                f"{self.attempt_timeout_s}"
            )

    def backoff_s(self, retry_index: int) -> float:
        """Backoff before retry ``retry_index`` (1 = first retry)."""
        if retry_index < 1:
            raise ClusterError(f"retry index must be >= 1, got {retry_index}")
        return min(
            self.max_backoff_s,
            self.base_backoff_s * self.backoff_factor ** (retry_index - 1),
        )

    def attempt_duration(self, nominal_s: float) -> float:
        """Wall time one attempt occupies (timeout-capped)."""
        if self.attempt_timeout_s is None:
            return nominal_s
        return min(nominal_s, self.attempt_timeout_s)

    def schedule(self, start: float, nominal_s: float,
                 failures: int) -> "RetrySchedule":
        """Lay out the attempt timeline of one retried operation.

        Args:
            start: simulated time the first attempt begins.
            nominal_s: duration of one attempt.
            failures: how many leading attempts fail (from the fault
                plan).  When ``failures >= max_attempts`` the operation
                is exhausted and never succeeds.

        Returns:
            The fully resolved :class:`RetrySchedule`.
        """
        if nominal_s < 0:
            raise ClusterError(f"negative attempt duration: {nominal_s}")
        if failures < 0:
            raise ClusterError(f"negative failure count: {failures}")
        attempts: List[Attempt] = []
        t = start
        for index in range(1, self.max_attempts + 1):
            duration = self.attempt_duration(nominal_s)
            ok = index > failures
            attempts.append(Attempt(index, t, t + duration, ok))
            if ok:
                break
            t += duration
            if index < self.max_attempts:
                t += self.backoff_s(index)
        succeeded = bool(attempts) and attempts[-1].ok
        return RetrySchedule(tuple(attempts), succeeded)


@dataclass(frozen=True)
class Attempt:
    """One attempt in a retry schedule."""

    index: int
    start: float
    end: float
    ok: bool

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class RetrySchedule:
    """The resolved timeline of a retried operation.

    Attributes:
        attempts: the attempts actually made, in order.
        succeeded: whether the final attempt succeeded (False means the
            policy was exhausted — the caller should degrade, e.g. by
            blacklisting the node).
    """

    attempts: tuple
    succeeded: bool

    @property
    def end(self) -> float:
        """When the last attempt (successful or not) finished."""
        return self.attempts[-1].end

    @property
    def retries(self) -> List[Attempt]:
        """Attempts beyond the first (the recovery cost)."""
        return [a for a in self.attempts if a.index > 1]

    @property
    def wasted_s(self) -> float:
        """Time spent in failed attempts."""
        return sum(a.duration for a in self.attempts if not a.ok)


#: Default policy for Yarn container relaunches.
CONTAINER_RETRY = RetryPolicy(max_attempts=3, base_backoff_s=1.5,
                              backoff_factor=2.0, max_backoff_s=12.0)

#: Default policy for HDFS block-read replica failover (no backoff: the
#: client immediately tries the next replica in the pipeline).
HDFS_READ_RETRY = RetryPolicy(max_attempts=3, base_backoff_s=0.0,
                              backoff_factor=1.0, max_backoff_s=0.0)

#: Default policy for restarting PowerGraph's sequential loader.
LOADER_RETRY = RetryPolicy(max_attempts=3, base_backoff_s=2.0,
                           backoff_factor=2.0, max_backoff_s=10.0)
