"""A simulated compute node."""

from __future__ import annotations


from repro.cluster.cpu import BusyInterval, CpuAccount, UsageSeries
from repro.errors import ClusterError


class Node:
    """One compute node of the simulated cluster.

    Mirrors a DAS5 compute node: a name (e.g. ``node340``), a number of
    cores, and a memory capacity.  All CPU activity is recorded through the
    node's :class:`~repro.cluster.cpu.CpuAccount`; memory is tracked as a
    simple high-water mark so platform engines can reject jobs that would
    not fit.
    """

    def __init__(self, name: str, cores: int = 16, memory_bytes: int = 64 << 30):
        if not name:
            raise ClusterError("node name must be non-empty")
        if memory_bytes <= 0:
            raise ClusterError(f"node memory must be positive, got {memory_bytes}")
        self.name = name
        self.cores = cores
        self.memory_bytes = memory_bytes
        self.cpu = CpuAccount(cores)
        self._memory_used = 0
        self._memory_peak = 0

    @property
    def memory_used(self) -> int:
        """Bytes currently allocated on this node."""
        return self._memory_used

    @property
    def memory_peak(self) -> int:
        """High-water mark of allocated bytes."""
        return self._memory_peak

    @property
    def memory_free(self) -> int:
        """Bytes still available."""
        return self.memory_bytes - self._memory_used

    def allocate_memory(self, nbytes: int) -> None:
        """Reserve ``nbytes`` of memory; raises if the node would overflow."""
        if nbytes < 0:
            raise ClusterError(f"cannot allocate negative memory: {nbytes}")
        if self._memory_used + nbytes > self.memory_bytes:
            raise ClusterError(
                f"{self.name}: out of memory "
                f"(used {self._memory_used}, requested {nbytes}, "
                f"capacity {self.memory_bytes})"
            )
        self._memory_used += nbytes
        self._memory_peak = max(self._memory_peak, self._memory_used)

    def free_memory(self, nbytes: int) -> None:
        """Release ``nbytes`` previously allocated."""
        if nbytes < 0:
            raise ClusterError(f"cannot free negative memory: {nbytes}")
        if nbytes > self._memory_used:
            raise ClusterError(
                f"{self.name}: freeing {nbytes} bytes but only "
                f"{self._memory_used} allocated"
            )
        self._memory_used -= nbytes

    def work(self, start: float, duration: float, cores: float, tag: str = "") -> BusyInterval:
        """Charge ``cores`` busy cores for ``duration`` seconds from ``start``."""
        return self.cpu.record(start, start + duration, cores, tag)

    def usage(self, t0: float, t1: float, step: float = 1.0) -> UsageSeries:
        """Sample this node's CPU usage series over ``[t0, t1)``."""
        return self.cpu.sample(t0, t1, step)

    def reset(self) -> None:
        """Clear CPU accounting and memory usage (between runs)."""
        self.cpu.clear()
        self._memory_used = 0
        self._memory_peak = 0

    def __repr__(self) -> str:
        return f"Node({self.name!r}, cores={self.cores})"


def das5_node(name: str) -> Node:
    """A node with DAS5-like capacity (16 cores, 64 GiB)."""
    return Node(name, cores=16, memory_bytes=64 << 30)
