"""Network cost model for the simulated cluster.

DAS5 nodes are connected by FDR InfiniBand; we model the interconnect with
a simple latency + bandwidth model, which is sufficient for the workloads
in the paper (message-heavy supersteps, bulk HDFS block transfers).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ClusterError


@dataclass(frozen=True)
class NetworkModel:
    """Latency/bandwidth cost model between any pair of distinct nodes.

    Attributes:
        latency_s: one-way latency per transfer (seconds).
        bandwidth_bps: point-to-point bandwidth (bytes per second).
        local_bandwidth_bps: memory bandwidth used when source and
            destination are the same node (loopback transfers are nearly
            free but not instantaneous).
    """

    latency_s: float = 50e-6
    bandwidth_bps: float = 6.0e9
    local_bandwidth_bps: float = 30.0e9

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ClusterError(f"negative latency: {self.latency_s}")
        if self.bandwidth_bps <= 0 or self.local_bandwidth_bps <= 0:
            raise ClusterError("bandwidth must be positive")

    def transfer_time(self, nbytes: int, local: bool = False) -> float:
        """Seconds to move ``nbytes`` between two nodes (or locally)."""
        if nbytes < 0:
            raise ClusterError(f"negative transfer size: {nbytes}")
        if local:
            return nbytes / self.local_bandwidth_bps
        return self.latency_s + nbytes / self.bandwidth_bps

    def broadcast_time(self, nbytes: int, receivers: int) -> float:
        """Seconds for one node to send ``nbytes`` to ``receivers`` nodes.

        Modelled as a binomial-tree broadcast: ceil(log2(receivers + 1))
        sequential rounds of point-to-point transfers.
        """
        if receivers < 0:
            raise ClusterError(f"negative receiver count: {receivers}")
        if receivers == 0:
            return 0.0
        rounds = (receivers + 1 - 1).bit_length()
        return rounds * self.transfer_time(nbytes)

    def allreduce_time(self, nbytes: int, participants: int) -> float:
        """Seconds for an all-reduce among ``participants`` nodes.

        Modelled as a reduce + broadcast over a binomial tree, the shape
        used by barrier/aggregator synchronization in BSP engines.
        """
        if participants < 0:
            raise ClusterError(f"negative participant count: {participants}")
        if participants <= 1:
            return 0.0
        rounds = (participants - 1).bit_length()
        return 2 * rounds * self.transfer_time(nbytes)

    def shuffle_time(self, bytes_per_pair: int, participants: int) -> float:
        """Seconds for an all-to-all shuffle of ``bytes_per_pair`` bytes.

        Each node sends to every other node; transfers to distinct peers
        proceed in parallel, so the critical path is (participants - 1)
        sequential sends of one pair-load each.
        """
        if participants <= 1:
            return 0.0
        return (participants - 1) * self.transfer_time(bytes_per_pair)


def das5_network() -> NetworkModel:
    """A network model with DAS5-like FDR InfiniBand characteristics."""
    return NetworkModel(latency_s=50e-6, bandwidth_bps=6.0e9)
