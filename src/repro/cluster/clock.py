"""Simulated wall clock.

The whole reproduction runs against simulated time: platform engines compute
phase durations from a cost model and advance this clock, so results are
deterministic and independent of host speed.
"""

from __future__ import annotations

from repro.errors import ClockError


class SimClock:
    """A monotonically non-decreasing simulated clock.

    Time is measured in seconds as a float, starting at ``origin``
    (default 0.0).  The clock can only move forward; attempts to move it
    backwards raise :class:`~repro.errors.ClockError`.
    """

    def __init__(self, origin: float = 0.0):
        if origin < 0:
            raise ClockError(f"clock origin must be >= 0, got {origin}")
        self._origin = float(origin)
        self._now = float(origin)

    @property
    def origin(self) -> float:
        """The time at which this clock started."""
        return self._origin

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def elapsed(self) -> float:
        """Seconds elapsed since the clock's origin."""
        return self._now - self._origin

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds`` and return the new time.

        ``seconds`` must be non-negative; advancing by 0 is allowed (used by
        instantaneous bookkeeping events).
        """
        if seconds < 0:
            raise ClockError(f"cannot advance clock by negative time: {seconds}")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to an absolute ``timestamp``.

        Raises :class:`~repro.errors.ClockError` if the timestamp lies in
        the past.
        """
        if timestamp < self._now:
            raise ClockError(
                f"cannot move clock backwards: now={self._now}, target={timestamp}"
            )
        self._now = float(timestamp)
        return self._now

    def reset(self) -> None:
        """Reset the clock to its origin (used between independent runs)."""
        self._now = self._origin

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f})"
