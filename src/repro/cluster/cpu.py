"""Per-node CPU accounting.

Platform phases record *busy intervals* — "cores cores busy from start to
end, on behalf of <tag>".  The Granula environment monitor later samples
these intervals into a per-second "CPU time / second" series, which is the
exact quantity plotted in the paper's Figures 6 and 7.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ClusterError


@dataclass(frozen=True)
class BusyInterval:
    """A span of simulated time during which some cores were busy.

    Attributes:
        start: interval start time (seconds, inclusive).
        end: interval end time (seconds, exclusive).
        cores: number of cores kept busy (may be fractional, e.g. a phase
            at 30% utilization of one core records ``cores=0.3``).
        tag: free-form label of the operation charging this time, used to
            map resource usage back to Granula operations.
    """

    start: float
    end: float
    cores: float
    tag: str = ""

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ClusterError(
                f"busy interval ends before it starts: [{self.start}, {self.end})"
            )
        if self.cores < 0:
            raise ClusterError(f"negative core usage: {self.cores}")

    @property
    def duration(self) -> float:
        """Length of the interval in seconds."""
        return self.end - self.start

    @property
    def cpu_seconds(self) -> float:
        """Total CPU time consumed: cores x duration."""
        return self.cores * self.duration

    def overlap(self, t0: float, t1: float) -> float:
        """CPU seconds consumed within the window ``[t0, t1)``."""
        lo = max(self.start, t0)
        hi = min(self.end, t1)
        if hi <= lo:
            return 0.0
        return self.cores * (hi - lo)


class CpuAccount:
    """Accumulates busy intervals for a single node.

    Intervals may overlap (multiple concurrent activities); sampling adds
    their contributions.  The account also enforces the node's physical
    core limit when asked to validate.
    """

    def __init__(self, cores: int):
        if cores <= 0:
            raise ClusterError(f"node must have at least one core, got {cores}")
        self.cores = cores
        self._intervals: List[BusyInterval] = []

    @property
    def intervals(self) -> Sequence[BusyInterval]:
        """All recorded busy intervals, in insertion order."""
        return tuple(self._intervals)

    def record(self, start: float, end: float, cores: float, tag: str = "") -> BusyInterval:
        """Record a busy interval and return it.

        ``cores`` above the node's physical count is clamped — a burst of
        runnable threads cannot exceed the hardware.
        """
        interval = BusyInterval(start, end, min(cores, float(self.cores)), tag)
        self._intervals.append(interval)
        return interval

    def cpu_seconds_between(self, t0: float, t1: float) -> float:
        """Total CPU seconds consumed in ``[t0, t1)`` across all intervals."""
        return sum(iv.overlap(t0, t1) for iv in self._intervals)

    def busy_cores_at(self, t: float) -> float:
        """Instantaneous core usage at time ``t`` (sum of active intervals)."""
        return sum(iv.cores for iv in self._intervals if iv.start <= t < iv.end)

    def span(self) -> Tuple[float, float]:
        """(earliest start, latest end) over all intervals; (0, 0) if empty."""
        if not self._intervals:
            return (0.0, 0.0)
        return (
            min(iv.start for iv in self._intervals),
            max(iv.end for iv in self._intervals),
        )

    def sample(
        self,
        t0: float,
        t1: float,
        step: float = 1.0,
    ) -> "UsageSeries":
        """Sample CPU time/second over ``[t0, t1)`` at ``step`` resolution.

        Each sample at time ``t`` holds the CPU seconds consumed in
        ``[t, t+step)`` divided by ``step`` — i.e. average busy cores in
        that window, matching the "CPU time / second" axis of the paper.
        """
        if step <= 0:
            raise ClusterError(f"sample step must be positive, got {step}")
        if t1 < t0:
            raise ClusterError(f"invalid sample window [{t0}, {t1})")
        n = int(math.ceil((t1 - t0) / step)) if t1 > t0 else 0
        # All windows at once; the fold over intervals stays sequential
        # so each window accumulates in insertion order (bit-identical
        # to summing overlap() per window).
        lo = t0 + np.arange(n, dtype=np.float64) * step
        hi = np.minimum(lo + step, t1)
        width = hi - lo
        cpu = np.zeros(n, dtype=np.float64)
        for iv in self._intervals:
            span = np.minimum(iv.end, hi) - np.maximum(iv.start, lo)
            cpu += np.where(span > 0.0, iv.cores * span, 0.0)
        values = np.divide(cpu, width, out=np.zeros(n, dtype=np.float64),
                           where=width > 0)
        return UsageSeries(times=lo.tolist(), values=values.tolist(),
                           step=step)

    def by_tag(self) -> dict:
        """CPU seconds aggregated per tag."""
        totals: dict = {}
        for iv in self._intervals:
            totals[iv.tag] = totals.get(iv.tag, 0.0) + iv.cpu_seconds
        return totals

    def clear(self) -> None:
        """Drop all recorded intervals (used between independent runs)."""
        self._intervals.clear()


@dataclass
class UsageSeries:
    """A sampled CPU usage time series for one node.

    ``values[i]`` is the average number of busy cores during
    ``[times[i], times[i] + step)``.
    """

    times: List[float]
    values: List[float]
    step: float

    def __post_init__(self) -> None:
        if len(self.times) != len(self.values):
            raise ClusterError(
                f"series length mismatch: {len(self.times)} times, "
                f"{len(self.values)} values"
            )

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(zip(self.times, self.values))

    @property
    def total_cpu_seconds(self) -> float:
        """Integral of the series (CPU seconds represented)."""
        return sum(v * self.step for v in self.values)

    @property
    def peak(self) -> float:
        """Maximum sampled value (busy cores)."""
        return max(self.values) if self.values else 0.0

    def mean(self) -> float:
        """Mean sampled value, 0.0 for an empty series."""
        if not self.values:
            return 0.0
        return sum(self.values) / len(self.values)

    def window(self, t0: float, t1: float) -> "UsageSeries":
        """Sub-series with sample times in ``[t0, t1)``."""
        pairs = [(t, v) for t, v in self if t0 <= t < t1]
        return UsageSeries(
            times=[t for t, _v in pairs],
            values=[v for _t, v in pairs],
            step=self.step,
        )


def merge_series(series: Iterable[UsageSeries]) -> Optional[UsageSeries]:
    """Sum several aligned usage series (cluster-wide cumulative usage).

    All series must share the same step and sample times.  Returns ``None``
    for an empty input.
    """
    items = list(series)
    if not items:
        return None
    first = items[0]
    for s in items[1:]:
        if s.step != first.step or s.times != first.times:
            raise ClusterError("cannot merge misaligned usage series")
    summed = [sum(s.values[i] for s in items) for i in range(len(first))]
    return UsageSeries(times=list(first.times), values=summed, step=first.step)
