"""The ``granula`` command-line interface.

Subcommands::

    granula table1                 print Table 1
    granula model <platform>       print a platform's model tree (Fig. 4)
    granula run <platform> <alg> <dataset> [--workers N] [--out DIR]
                [--faults plan.json]
                                   run one monitored job, print Fig. 5,
                                   optionally store the archive; with a
                                   fault plan, inject the scheduled
                                   faults and print the diagnosis
    granula experiments [--out FILE]
                                   reproduce every table/figure
    granula report <archive.json> [--html FILE]
                                   render a stored archive
    granula diagnose <archive.json> [--compute-mission NAME]
                                   choke points + failure diagnosis
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.core.archive.serialize import archive_from_json
from repro.core.archive.store import ArchiveStore
from repro.core.model.library import default_library
from repro.core.visualize.breakdown import compute_breakdown
from repro.core.visualize.render_html import render_report_html
from repro.core.visualize.timeline import render_timeline
from repro.errors import ReproError
from repro.experiments.report import render_markdown, run_all
from repro.experiments.table1_platforms import run_table1
from repro.workloads.runner import WorkloadRunner
from repro.workloads.spec import WorkloadSpec


def _cmd_table1(_args: argparse.Namespace) -> int:
    print(run_table1().text)
    return 0


def _cmd_model(args: argparse.Namespace) -> int:
    library = default_library()
    model = library.get(args.platform)
    print(model.render_tree())
    return 0


def _cmd_models(_args: argparse.Namespace) -> int:
    library = default_library()
    for name in library.platforms():
        model = library.get(name)
        print(f"{model.platform:<12} {model.size():>3} operations, "
              f"{model.max_level()} levels")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    store = ArchiveStore(args.out) if args.out else None
    runner = WorkloadRunner(store=store)
    spec = WorkloadSpec(
        platform=args.platform,
        algorithm=args.algorithm,
        dataset=args.dataset,
        workers=args.workers,
    )
    faults = None
    if args.faults:
        from repro.platforms.faults import FaultPlan

        try:
            plan_text = Path(args.faults).read_text()
        except OSError as exc:
            raise ReproError(
                f"cannot read fault plan {args.faults}: {exc}"
            ) from None
        faults = FaultPlan.from_json(plan_text)
        print(f"fault plan {faults.signature()} armed "
              f"({len(faults.events)} scheduled event(s), "
              f"seed {faults.seed})\n")
    iteration = runner.run(spec, faults=faults)
    print(iteration.breakdown.render_text())
    print()
    print(iteration.utilization.render_text())
    if iteration.gantt is not None:
        print()
        print(iteration.gantt.render_text())
    if faults is not None:
        from repro.core.analysis.diagnosis import diagnose, render_findings

        compute_mission = (
            "Gather" if args.platform == "PowerGraph" else "Compute"
        )
        print()
        print(render_findings(diagnose(iteration.archive, compute_mission)))
    if store is not None:
        print(f"\narchive stored under {args.out}/")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    results = run_all()
    for result in results:
        print(result.summary_line())
    if args.out:
        Path(args.out).write_text(render_markdown(results))
        print(f"report written to {args.out}")
    return 0 if all(r.all_checks_pass for r in results) else 1


def _cmd_diagnose(args: argparse.Namespace) -> int:
    from repro.core.analysis import diagnose, find_choke_points
    from repro.core.analysis.chokepoint import render_choke_points
    from repro.core.analysis.diagnosis import render_findings

    archive = archive_from_json(Path(args.archive).read_text())
    print("choke points:")
    print(render_choke_points(find_choke_points(archive)))
    print()
    print(render_findings(diagnose(archive, args.compute_mission)))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.core.analysis.regression import compare_archives
    from repro.core.comparison import compare_platforms

    first = archive_from_json(Path(args.baseline).read_text())
    second = archive_from_json(Path(args.candidate).read_text())
    if first.platform == second.platform:
        report = compare_archives(first, second, threshold=args.threshold)
        print(report.render_text())
        return 0 if report.ok else 1
    comparison = compare_platforms([first, second])
    print(comparison.render_text())
    speedups = comparison.speedup()
    slowest = max(speedups, key=lambda p: speedups[p])
    print(f"\n{slowest} is {speedups[slowest]:.1f}x the fastest platform")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    archive = archive_from_json(Path(args.archive).read_text())
    print(render_timeline(archive, max_depth=2))
    print()
    print(compute_breakdown(archive).render_text())
    if args.html:
        Path(args.html).write_text(render_report_html([archive]))
        print(f"HTML report written to {args.html}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="granula",
        description="Fine-grained performance analysis of graph platforms "
                    "(Granula reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table 1").set_defaults(
        func=_cmd_table1)

    p_model = sub.add_parser("model", help="print a platform model tree")
    p_model.add_argument("platform",
                         help="a model-library name (see 'granula models')")
    p_model.set_defaults(func=_cmd_model)

    sub.add_parser(
        "models", help="list the performance-model library",
    ).set_defaults(func=_cmd_models)

    p_run = sub.add_parser("run", help="run one monitored job")
    p_run.add_argument("platform",
                       choices=["Giraph", "PowerGraph", "Hadoop", "PGX.D"])
    p_run.add_argument("algorithm")
    p_run.add_argument("dataset")
    p_run.add_argument("--workers", type=int, default=8)
    p_run.add_argument("--out", help="archive store directory")
    p_run.add_argument("--faults",
                       help="fault-plan JSON file to inject "
                            "(see repro.platforms.faults.FaultPlan)")
    p_run.set_defaults(func=_cmd_run)

    p_exp = sub.add_parser("experiments",
                           help="reproduce every paper table/figure")
    p_exp.add_argument("--out", help="write EXPERIMENTS.md here")
    p_exp.set_defaults(func=_cmd_experiments)

    p_rep = sub.add_parser("report", help="render a stored archive")
    p_rep.add_argument("archive", help="path to an archive JSON file")
    p_rep.add_argument("--html", help="also write an HTML report")
    p_rep.set_defaults(func=_cmd_report)

    p_cmp = sub.add_parser(
        "compare",
        help="same platform: regression report (exit 1 on regression); "
             "different platforms: cross-platform Ts/Td/Tp table")
    p_cmp.add_argument("baseline", help="baseline archive JSON")
    p_cmp.add_argument("candidate", help="candidate archive JSON")
    p_cmp.add_argument("--threshold", type=float, default=1.10,
                       help="regression ratio threshold (default 1.10)")
    p_cmp.set_defaults(func=_cmd_compare)

    p_diag = sub.add_parser(
        "diagnose", help="choke points + failure diagnosis of an archive")
    p_diag.add_argument("archive", help="path to an archive JSON file")
    p_diag.add_argument("--compute-mission", default="Compute",
                        help="per-worker compute mission name "
                             "(Gather for PowerGraph)")
    p_diag.set_defaults(func=_cmd_diagnose)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
