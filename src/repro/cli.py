"""The ``granula`` command-line interface.

Subcommands::

    granula table1                 print Table 1
    granula model <platform>       print a platform's model tree (Fig. 4)
    granula run <platform> <alg> <dataset> [--workers N] [--jobs N]
                [--engine-mode auto|scalar|vectorized] [--out DIR]
                [--faults plan.json] [--live-port P]
                                   run monitored jobs, print Fig. 5,
                                   optionally store the archives; each
                                   positional accepts a comma-separated
                                   list (the product is the run matrix,
                                   fanned out over --jobs processes);
                                   with a fault plan (single runs only),
                                   inject the scheduled faults and print
                                   the diagnosis; with --live-port,
                                   serve the run's snapshot stream at
                                   GET /jobs/{id}/live while it runs
    granula watch <url>            follow a live snapshot stream (SSE)
                                   printed one line per snapshot
    granula experiments [--out FILE] [--jobs N] [--html FILE]
                                   reproduce every table/figure
    granula bench [--suite pipeline|fleet] [--jobs N] [--small]
                [--out FILE] [--gate | --update-baseline]
                                   time the pipeline end to end and the
                                   ingest/archive stage alone, or the
                                   fleet columnar scan vs the tree
                                   reference (--suite fleet); --gate
                                   compares against the committed
                                   per-suite baseline
    granula fleet query|series|regressions <store-dir>
                [--group-by KEYS] [--agg AGGS] [--metric M]
                [--mission M] [--path P] [--platform P]
                [--algorithm A] [--dataset D] [--k SIGMA]
                [--mode auto|tree] [--json]
                                   cross-archive analytics over every
                                   job in a store: vectorized column
                                   scans over the mmap'd .gcol
                                   sidecars, tree fallback per damaged
                                   archive (reported as degraded);
                                   regressions exits 1 when any job
                                   deviates >k sigma from its cohort
    granula cache ls|gc|clear [--max-bytes N]
                                   inspect or prune the shared artifact
                                   cache (GRANULA_CACHE_DIR)
    granula serve <store-dir> [--host H] [--port P] [--cache-size N]
                [--read-only] [--queue-size N] [--max-body-bytes N]
                [--request-timeout S] [--chaos plan.json]
                [--workers N] [--shards DIR1,DIR2,...]
                                   serve an archive store over HTTP:
                                   /jobs (filters + pagination),
                                   /jobs/{id}, /jobs/{id}/query,
                                   /jobs/{id}/report, /healthz, /metrics;
                                   conditional GETs answer 304 off the
                                   payload checksum; POST /jobs ingests
                                   archives or raw logs through a
                                   durable WAL (202 + tracking id,
                                   GET /ingest/{id} for progress;
                                   429/503 + Retry-After under overload
                                   or degraded read-only mode); --chaos
                                   arms deterministic service fault
                                   injection; --workers N shards the
                                   service across N supervised worker
                                   processes behind a consistent-hash
                                   router (a dead shard 503s only its
                                   own keyspace while it restarts)
    granula report <archive.json> [--html FILE]
                                   render a stored archive
    granula diagnose <archive.json> [--compute-mission NAME]
                                   choke points + failure diagnosis
    granula validate <archive.json>
                                   integrity + structural validation;
                                   exit 1 on error/critical findings
    granula repair <archive.json> [--out FILE]
                                   fix derivable defects (in place by
                                   default, atomically)
    granula ingest <logfile> [--salvage] [--job-id ID] [--out DIR]
                                   build an archive straight from a
                                   platform log; --salvage tolerates
                                   truncated/duplicated/reordered lines
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.core.archive.serialize import archive_from_json
from repro.core.archive.store import ArchiveStore
from repro.core.model.library import default_library
from repro.core.visualize.render_html import render_report_html
from repro.core.visualize.report import render_report_text
from repro.errors import ReproError, ServiceError
from repro.experiments.report import render_markdown, run_all
from repro.experiments.table1_platforms import run_table1
from repro.platforms.base import ENGINE_MODES
from repro.workloads.runner import WorkloadRunner
from repro.workloads.spec import WorkloadSpec


def _cmd_table1(_args: argparse.Namespace) -> int:
    print(run_table1().text)
    return 0


def _cmd_model(args: argparse.Namespace) -> int:
    library = default_library()
    model = library.get(args.platform)
    print(model.render_tree())
    return 0


def _cmd_models(_args: argparse.Namespace) -> int:
    library = default_library()
    for name in library.platforms():
        model = library.get(name)
        print(f"{model.platform:<12} {model.size():>3} operations, "
              f"{model.max_level()} levels")
    return 0


#: Platform names the runner can build clusters for.
RUN_PLATFORMS = ("Giraph", "PowerGraph", "Hadoop", "PGX.D")


def _split_matrix(value: str, what: str) -> List[str]:
    """Split a comma-separated CLI axis, rejecting empty items."""
    items = [item.strip() for item in value.split(",")]
    if not all(items):
        raise ReproError(f"empty {what} in {value!r}")
    return items


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.workloads.parallel import RunRequest

    platforms = _split_matrix(args.platform, "platform")
    for platform in platforms:
        if platform not in RUN_PLATFORMS:
            raise ReproError(
                f"unsupported platform {platform!r}; "
                f"expected one of {', '.join(RUN_PLATFORMS)}"
            )
    if args.workload == "prpb":
        return _run_prpb(args, platforms)
    if args.algorithm is None or args.dataset is None:
        raise ReproError(
            "run needs ALGORITHM and DATASET (they are only optional "
            "for --workload prpb, which generates its own input)"
        )
    algorithms = _split_matrix(args.algorithm, "algorithm")
    datasets = _split_matrix(args.dataset, "dataset")
    specs = [
        WorkloadSpec(platform=platform, algorithm=algorithm,
                     dataset=dataset, workers=args.workers)
        for platform in platforms
        for algorithm in algorithms
        for dataset in datasets
    ]
    faults = None
    if args.faults:
        from repro.platforms.faults import FaultPlan

        if len(specs) > 1:
            raise ReproError(
                "--faults applies to a single run; drop the "
                "comma-separated matrix or the fault plan"
            )
        try:
            plan_text = Path(args.faults).read_text()
        except OSError as exc:
            raise ReproError(
                f"cannot read fault plan {args.faults}: {exc}"
            ) from None
        faults = FaultPlan.from_json(plan_text)
        print(f"fault plan {faults.signature()} armed "
              f"({len(faults.events)} scheduled event(s), "
              f"seed {faults.seed})\n")

    store = ArchiveStore(args.out) if args.out else None
    live_server = None
    live_registry = None
    if args.live_port is not None:
        store, live_server, live_registry = _start_live_server(args, store)
    runner = WorkloadRunner(
        store=store, engine_mode=args.engine_mode, live=live_registry,
    )
    requests = [RunRequest(spec, faults=faults) for spec in specs]
    iterations = runner.run_many(requests, jobs=args.jobs)
    for spec, iteration in zip(specs, iterations):
        if len(specs) > 1:
            print(f"==== {spec.label()} ====")
        print(iteration.breakdown.render_text())
        print()
        print(iteration.utilization.render_text())
        if iteration.gantt is not None:
            print()
            print(iteration.gantt.render_text())
        if faults is not None:
            from repro.core.analysis.diagnosis import (
                diagnose,
                render_findings,
            )

            compute_mission = (
                "Gather" if spec.platform == "PowerGraph" else "Compute"
            )
            print()
            print(render_findings(
                diagnose(iteration.archive, compute_mission)
            ))
        if len(specs) > 1:
            print()
    if args.out:
        print(f"\narchive stored under {args.out}/")
    if live_server is not None:
        if live_registry.active_streams:
            print("granula live: waiting for stream consumer(s) to "
                  "receive the final snapshot")
        live_registry.drain(timeout=args.live_linger)
        live_server.shutdown()
        live_server.server_close()
    return 0


def _start_live_server(args: argparse.Namespace, store):
    """Spin up the in-process service that streams this run live.

    The server shares the run's archive store (an ephemeral directory
    when ``--out`` was not given) and its :class:`LiveJobRegistry`, so
    ``/jobs/{id}/live`` streams snapshots while jobs execute and every
    other endpoint works on whatever has been archived so far.
    """
    import tempfile
    import threading

    from repro.core.monitor.live import LiveJobRegistry
    from repro.service.server import create_server

    if store is None:
        store = ArchiveStore(tempfile.mkdtemp(prefix="granula-live-"))
    registry = LiveJobRegistry(replay_delay=args.live_delay)
    server = create_server(
        store,
        port=args.live_port,
        writable=False,
        live=registry,
    )
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.1},
        daemon=True,
        name="granula-live-server",
    )
    thread.start()
    # Flushed eagerly: watchers parse this banner from a pipe to find
    # the stream URL before the run completes.
    print(f"granula live: monitoring at {server.url} "
          f"(SSE at /jobs/{{job}}/live)", flush=True)
    return store, server, registry


def _run_prpb(args: argparse.Namespace, platforms: List[str]) -> int:
    """``granula run PLATFORM --workload prpb``: the measured pipeline."""
    from repro.workloads.prpb import PrpbSpec, render_prpb_text, run_prpb

    if args.algorithm is not None or args.dataset is not None:
        raise ReproError(
            "--workload prpb generates its own R-MAT input; drop the "
            "ALGORITHM/DATASET arguments (tune --scale/--edge-factor "
            "instead)"
        )
    store = ArchiveStore(args.out) if args.out else None
    for index, platform in enumerate(platforms):
        spec = PrpbSpec(
            platform=platform,
            scale=args.scale,
            edge_factor=args.edge_factor,
            iterations=args.iterations,
            seed=args.seed,
            workers=args.workers,
        )
        result = run_prpb(spec, engine_mode=args.engine_mode, store=store)
        if index:
            print()
        print(render_prpb_text(result))
    if store is not None:
        print(f"\narchive stored under {args.out}/")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.report import render_html, shared_runner

    runner = shared_runner()
    results = run_all(runner, jobs=args.jobs)
    for result in results:
        print(result.summary_line())
    if args.out:
        Path(args.out).write_text(render_markdown(results))
        print(f"report written to {args.out}")
    if args.html:
        Path(args.html).write_text(render_html(runner))
        print(f"HTML report written to {args.html}")
    return 0 if all(r.all_checks_pass for r in results) else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.experiments.pipeline_bench import write_pipeline_bench

    small = True if args.small else None
    if args.suite == "fleet":
        from repro.experiments.fleet_bench import (
            compare_fleet_bench,
            fleet_baseline_document,
            render_fleet_bench,
            run_fleet_bench,
        )

        document = run_fleet_bench(small=small)
        render, to_baseline = render_fleet_bench, fleet_baseline_document
        compare = compare_fleet_bench
        default_baseline = "BENCH_fleet.json"
    else:
        from repro.experiments.pipeline_bench import (
            baseline_document,
            compare_pipeline_bench,
            render_pipeline_bench,
            run_pipeline_bench,
        )

        document = run_pipeline_bench(jobs=args.jobs, small=small)
        render, to_baseline = render_pipeline_bench, baseline_document
        compare = compare_pipeline_bench
        default_baseline = "BENCH_pipeline.json"
    print(render(document))
    if args.out:
        write_pipeline_bench(args.out, document)
        print(f"benchmark artifact written to {args.out}")
    baseline_path = Path(args.baseline or default_baseline)
    if args.update_baseline:
        write_pipeline_bench(baseline_path, to_baseline(document))
        print(f"perf baseline updated at {baseline_path}")
        return 0
    if args.gate:
        try:
            baseline = json.loads(baseline_path.read_text())
        except OSError as exc:
            raise ReproError(
                f"cannot read perf baseline {baseline_path}: {exc}; "
                f"create one with 'granula bench --update-baseline'"
            ) from None
        except ValueError as exc:
            raise ReproError(
                f"perf baseline {baseline_path} is not JSON: {exc}"
            ) from None
        regressions = compare(baseline, document)
        if regressions:
            print("\nperf gate FAILED:")
            for message in regressions:
                print(f"  {message}")
            return 1
        print(f"\nperf gate passed against {baseline_path}")
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.core.analysis.fleet import (
        render_fleet_text,
        run_fleet_query,
    )
    from repro.core.analysis.fleetplan import FleetPlan

    params = {}
    for name in ("group_by", "agg", "metric", "mission", "path",
                 "platform", "algorithm", "dataset"):
        value = getattr(args, name)
        if value is not None:
            params[name] = value
    if args.op == "regressions" and args.k is not None:
        params["k"] = str(args.k)
    plan = FleetPlan.from_params(params, op=args.op)
    store = ArchiveStore(args.store)
    document = run_fleet_query(store, plan, mode=args.mode)
    if args.json:
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(render_fleet_text(document))
    if args.op == "regressions" and document.get("findings"):
        return 1
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.cache import default_cache

    cache = default_cache()
    if args.action == "ls":
        entries = cache.ls()
        for entry in entries:
            print(f"{entry.key}  {entry.kind:<12} {entry.nbytes:>12,}  "
                  f"{entry.params}")
        total = sum(entry.nbytes for entry in entries)
        print(f"{len(entries)} entr{'y' if len(entries) == 1 else 'ies'}, "
              f"{total:,} bytes under {cache.directory}")
        return 0
    if args.action == "gc":
        stats = cache.gc(max_bytes=args.max_bytes)
        print(f"removed {stats['removed']} entr"
              f"{'y' if stats['removed'] == 1 else 'ies'}, "
              f"kept {stats['kept']} ({stats['bytes']:,} bytes)")
        return 0
    removed = cache.clear()
    print(f"cleared {removed} entr{'y' if removed == 1 else 'ies'} "
          f"from {cache.directory}")
    return 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    from repro.core.analysis import diagnose, find_choke_points
    from repro.core.analysis.chokepoint import render_choke_points
    from repro.core.analysis.diagnosis import render_findings

    archive = archive_from_json(_read_file(args.archive, "archive"))
    print("choke points:")
    print(render_choke_points(find_choke_points(archive)))
    print()
    print(render_findings(diagnose(archive, args.compute_mission)))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.core.analysis.regression import compare_archives
    from repro.core.comparison import compare_platforms

    first = archive_from_json(_read_file(args.baseline, "archive"))
    second = archive_from_json(_read_file(args.candidate, "archive"))
    if first.platform == second.platform:
        report = compare_archives(first, second, threshold=args.threshold)
        print(report.render_text())
        return 0 if report.ok else 1
    comparison = compare_platforms([first, second])
    print(comparison.render_text())
    speedups = comparison.speedup()
    slowest = max(speedups, key=lambda p: speedups[p])
    print(f"\n{slowest} is {speedups[slowest]:.1f}x the fastest platform")
    return 0


def _read_file(path: str, what: str, lenient: bool = False) -> str:
    """Read a text file, raising typed errors instead of OS/codec ones.

    With ``lenient=True`` undecodable bytes become replacement
    characters so damaged files still reach the salvage machinery
    (which reports them as findings) instead of crashing the read.
    """
    try:
        return Path(path).read_text(
            errors="replace" if lenient else "strict"
        )
    except OSError as exc:
        raise ReproError(f"cannot read {what} {path}: {exc}") from None
    except UnicodeDecodeError as exc:
        raise ReproError(
            f"{what} {path} is not valid UTF-8: {exc}; "
            f"try 'granula validate' or 'granula repair'"
        ) from None


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.core.archive.integrity import (
        render_validation,
        validate_sidecar,
        validate_text,
        worst_severity,
    )

    findings = validate_text(_read_file(args.archive, "archive",
                                        lenient=True))
    findings = findings + validate_sidecar(args.archive)
    print(render_validation(findings))
    return 1 if worst_severity(findings) in ("error", "critical") else 0


def _cmd_repair(args: argparse.Namespace) -> int:
    from repro.core.archive.integrity import (
        load_salvaged,
        render_validation,
        repair_archive,
    )
    from repro.core.archive.serialize import archive_to_json
    from repro.core.archive.store import atomic_write_text

    archive, findings = load_salvaged(
        _read_file(args.archive, "archive", lenient=True)
    )
    if archive is None:
        print(render_validation(findings))
        raise ReproError(f"{args.archive}: nothing recoverable")
    if findings:
        print("load findings:")
        print(render_validation(findings))
        print()
    archive, fixes = repair_archive(archive)
    if fixes:
        print(f"applied {len(fixes)} fix(es):")
        print(render_validation(fixes))
    else:
        print("nothing to repair")
    out = Path(args.out) if args.out else Path(args.archive)
    atomic_write_text(out, archive_to_json(archive))
    print(f"repaired archive written to {out}")
    return 0


def _cmd_ingest(args: argparse.Namespace) -> int:
    from repro.core.analysis.completeness import assess_completeness
    from repro.core.monitor.logparser import parse_log_report
    from repro.core.monitor.salvage import salvage_archive
    from repro.errors import IngestError, LogParseError

    lines = _read_file(args.log, "log", lenient=args.salvage).splitlines()
    if not args.salvage:
        # Strict mode: any malformed line is a typed parse error ...
        try:
            parse_log_report(lines, strict=True)
        except LogParseError as exc:
            raise IngestError(
                f"{args.log}: {exc}; rerun with --salvage"
            ) from exc
    archive, report = salvage_archive(lines, job_id=args.job_id)
    if not args.salvage and not report.clean:
        # ... and so is any structural anomaly the parse cannot see.
        raise IngestError(
            f"{args.log}: log is structurally damaged "
            f"({report.render_text()}); rerun with --salvage"
        )
    print(report.render_text())
    print()
    print(assess_completeness(archive).render_text())
    if args.out:
        path = ArchiveStore(args.out).save(archive, overwrite=True)
        print(f"\narchive stored at {path}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    archive = archive_from_json(_read_file(args.archive, "archive"))
    print(render_report_text(archive))
    if args.html:
        Path(args.html).write_text(render_report_html([archive]))
        print(f"HTML report written to {args.html}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.chaos import load_chaos_plan
    from repro.service.server import create_server, serve

    chaos = load_chaos_plan(args.chaos) if args.chaos else None
    if args.workers > 1 or args.shards:
        from repro.service.cluster import create_cluster, serve_cluster

        if args.read_only:
            raise ServiceError(
                "--read-only is a single-process option; the cluster "
                "tier always runs writable shard workers"
            )
        if args.shards:
            shard_dirs = [Path(part) for part in args.shards.split(",")
                          if part.strip()]
            if args.workers > 1 and len(shard_dirs) != args.workers:
                raise ServiceError(
                    f"--workers {args.workers} does not match the "
                    f"{len(shard_dirs)} --shards directories"
                )
        else:
            # Default layout: N shard stores under the given root.
            shard_dirs = [
                Path(args.store) / f"shard-{index:02d}"
                for index in range(args.workers)
            ]
        server = create_cluster(
            shard_dirs,
            host=args.host,
            port=args.port,
            cache_size=args.cache_size,
            queue_size=args.queue_size,
            chaos=chaos,
            max_body_bytes=args.max_body_bytes,
            request_timeout=args.request_timeout,
        )
        serve_cluster(server)
        return 0
    server = create_server(
        args.store,
        host=args.host,
        port=args.port,
        cache_size=args.cache_size,
        writable=not args.read_only,
        queue_size=args.queue_size,
        chaos=chaos,
        max_body_bytes=args.max_body_bytes,
        request_timeout=args.request_timeout,
    )
    serve(server)
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    """``granula watch <url>``: follow a job's live SSE stream."""
    import urllib.error
    import urllib.request

    from repro.core.monitor.live import iter_sse_events

    request = urllib.request.Request(
        args.url, headers={"Accept": "text/event-stream"}
    )
    try:
        reply = urllib.request.urlopen(request, timeout=args.timeout)
    except urllib.error.HTTPError as exc:
        raise ServiceError(
            f"cannot watch {args.url}: HTTP {exc.code}"
        ) from None
    except OSError as exc:
        raise ServiceError(f"cannot watch {args.url}: {exc}") from None
    try:
        for event in iter_sse_events(reply):
            if event.event == "snapshot":
                try:
                    document = json.loads(event.data.decode("utf-8"))
                except ValueError:
                    print(f"snapshot {event.event_id}: <unparseable>")
                    continue
                operations = document.get("operations") or {}
                count = (
                    operations.get("count")
                    if isinstance(operations, dict) else None
                )
                live_meta = (
                    (document.get("metadata") or {}).get("live") or {}
                )
                state = (
                    f"{live_meta.get('inferred_ends', 0)} still open"
                    if live_meta.get("partial") else "final"
                )
                print(f"snapshot {event.event_id}: "
                      f"{document.get('job_id')} — {count} operation(s), "
                      f"{state}")
            elif event.event == "complete":
                try:
                    info = json.loads(event.data.decode("utf-8"))
                except ValueError:
                    info = {}
                if info.get("error"):
                    print(f"job failed: {info['error']}")
                    return 1
                print(f"complete: final snapshot is "
                      f"#{info.get('final_seq')}")
                return 0
    except (TimeoutError, OSError) as exc:
        raise ServiceError(f"stream interrupted: {exc}") from None
    finally:
        reply.close()
    print("stream ended without a complete event")
    return 1


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="granula",
        description="Fine-grained performance analysis of graph platforms "
                    "(Granula reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print Table 1").set_defaults(
        func=_cmd_table1)

    p_model = sub.add_parser("model", help="print a platform model tree")
    p_model.add_argument("platform",
                         help="a model-library name (see 'granula models')")
    p_model.set_defaults(func=_cmd_model)

    sub.add_parser(
        "models", help="list the performance-model library",
    ).set_defaults(func=_cmd_models)

    p_run = sub.add_parser(
        "run",
        help="run monitored jobs (comma-separate any axis for a matrix)")
    p_run.add_argument("platform",
                       help="platform name, or a comma-separated list "
                            f"({', '.join(RUN_PLATFORMS)})")
    p_run.add_argument("algorithm", nargs="?", default=None,
                       help="algorithm name, or a comma-separated list "
                            "(omit with --workload prpb)")
    p_run.add_argument("dataset", nargs="?", default=None,
                       help="dataset name, or a comma-separated list "
                            "(omit with --workload prpb)")
    p_run.add_argument("--workload", choices=("standard", "prpb"),
                       default="standard",
                       help="standard: monitored platform jobs; prpb: "
                            "the measured PageRank Pipeline Benchmark "
                            "(generate -> sort/write -> read/build -> "
                            "PageRank, each kernel timed and archived)")
    p_run.add_argument("--scale", type=int, default=12,
                       help="prpb: R-MAT scale (2**scale vertices)")
    p_run.add_argument("--edge-factor", type=int, default=8,
                       help="prpb: generated edges per vertex")
    p_run.add_argument("--iterations", type=int, default=10,
                       help="prpb: PageRank iterations for the kernel "
                            "stage")
    p_run.add_argument("--seed", type=int, default=42,
                       help="prpb: R-MAT generator seed")
    p_run.add_argument("--workers", type=int, default=8)
    p_run.add_argument("--jobs", type=int, default=None,
                       help="fan independent runs out over N worker "
                            "processes (archives stay byte-identical to "
                            "a serial run)")
    p_run.add_argument("--engine-mode", choices=ENGINE_MODES, default="auto",
                       help="execution backend: auto picks the vectorized "
                            "kernels when the algorithm has one, scalar "
                            "forces the reference path, vectorized demands "
                            "a kernel")
    p_run.add_argument("--out", help="archive store directory")
    p_run.add_argument("--faults",
                       help="fault-plan JSON file to inject "
                            "(see repro.platforms.faults.FaultPlan); "
                            "single runs only")
    p_run.add_argument("--live-port", type=int, default=None,
                       help="serve this run live on the given port "
                            "(0 for ephemeral): GET /jobs/{id}/live "
                            "streams archive snapshots as SSE while "
                            "the job executes (forces serial runs)")
    p_run.add_argument("--live-linger", type=float, default=15.0,
                       help="seconds to wait after the runs for open "
                            "live streams to receive the final "
                            "snapshot")
    p_run.add_argument("--live-delay", type=float, default=0.05,
                       help="seconds between live log-replay chunks "
                            "(greater values spread snapshots out for "
                            "human watchers)")
    p_run.set_defaults(func=_cmd_run)

    p_exp = sub.add_parser("experiments",
                           help="reproduce every paper table/figure")
    p_exp.add_argument("--out", help="write EXPERIMENTS.md here")
    p_exp.add_argument("--jobs", type=int, default=None,
                       help="fan the experiment workloads out over N "
                            "worker processes")
    p_exp.add_argument("--html", help="also write the HTML report here")
    p_exp.set_defaults(func=_cmd_experiments)

    p_bench = sub.add_parser(
        "bench",
        help="time the monitoring->archiving->analysis pipeline "
             "(end-to-end + ingest/archive stages) or the fleet "
             "analytics scan (--suite fleet)")
    p_bench.add_argument("--suite", choices=("pipeline", "fleet"),
                         default="pipeline",
                         help="pipeline: the end-to-end pipeline "
                              "benchmark; fleet: columnar cross-archive "
                              "scans vs tree materialization")
    p_bench.add_argument("--jobs", type=int, default=4,
                         help="worker processes for the warm parallel "
                              "phase (default 4; pipeline suite only)")
    p_bench.add_argument("--small", action="store_true",
                         help="CI-smoke matrix (dg100-scaled only)")
    p_bench.add_argument("--out",
                         help="write the benchmark JSON artifact here")
    p_bench.add_argument("--baseline", default=None,
                         help="perf-trajectory baseline file (default "
                              "BENCH_pipeline.json / BENCH_fleet.json "
                              "per --suite)")
    gate = p_bench.add_mutually_exclusive_group()
    gate.add_argument("--update-baseline", action="store_true",
                      help="write this run's gate metrics (speedup "
                           "ratios, not absolute times) to --baseline")
    gate.add_argument("--gate", action="store_true",
                      help="compare this run against --baseline and "
                           "exit 1 when any gate metric regressed "
                           "beyond tolerance")
    p_bench.set_defaults(func=_cmd_bench)

    p_fleet = sub.add_parser(
        "fleet",
        help="cross-archive analytics over every job in a store "
             "(vectorized .gcol column scans; tree fallback per "
             "damaged archive)")
    p_fleet.add_argument("op", choices=("query", "series", "regressions"),
                         help="query: group-by aggregation; series: "
                              "per-job metric time series; regressions: "
                              "flag jobs whose per-operation time share "
                              "deviates >k sigma from their cohort "
                              "(exit 1 when any are found)")
    p_fleet.add_argument("store", help="archive store directory")
    p_fleet.add_argument("--group-by", dest="group_by", default=None,
                         help="comma-separated group keys: platform, "
                              "algorithm, dataset, or meta:<key> "
                              "(default platform)")
    p_fleet.add_argument("--agg", default=None,
                         help="comma-separated aggregations: count, sum, "
                              "mean, min, max, p<rank>, top<k> "
                              "(default count; series takes exactly one)")
    p_fleet.add_argument("--metric", default=None,
                         help="duration (default) or an info key, e.g. "
                              "ProcessedVertices")
    p_fleet.add_argument("--mission", default=None,
                         help="restrict to operations of this mission "
                              "(iteration suffixes ignored)")
    p_fleet.add_argument("--path", default=None,
                         help="restrict to operations under this "
                              "slash-separated mission path pattern")
    p_fleet.add_argument("--platform", default=None,
                         help="only jobs of this platform")
    p_fleet.add_argument("--algorithm", default=None,
                         help="only jobs of this algorithm")
    p_fleet.add_argument("--dataset", default=None,
                         help="only jobs of this dataset")
    p_fleet.add_argument("--k", type=float, default=None,
                         help="regressions: sigma multiplier for the "
                              "deviation threshold (default 3.0)")
    p_fleet.add_argument("--mode", choices=("auto", "tree"),
                         default="auto",
                         help="auto: columnar scan with per-job tree "
                              "fallback; tree: reference implementation "
                              "(every archive materialized)")
    p_fleet.add_argument("--json", action="store_true",
                         help="print the raw result document as JSON")
    p_fleet.set_defaults(func=_cmd_fleet)

    p_cache = sub.add_parser(
        "cache", help="inspect or prune the content-addressed "
                      "artifact cache")
    p_cache.add_argument("action", choices=["ls", "gc", "clear"],
                         help="ls: list entries; gc: drop damaged (and, "
                              "with --max-bytes, cold) entries; clear: "
                              "remove everything")
    p_cache.add_argument("--max-bytes", type=int, default=None,
                         help="gc: evict least-recently used entries "
                              "until the cache fits this budget")
    p_cache.set_defaults(func=_cmd_cache)

    p_srv = sub.add_parser(
        "serve",
        help="serve an archive store over HTTP (list/summary/query/"
             "report endpoints with ETag caching; WAL-backed "
             "POST /jobs ingestion)")
    p_srv.add_argument("store", help="archive store directory to serve")
    p_srv.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    p_srv.add_argument("--port", type=int, default=8737,
                       help="bind port (default 8737; 0 = ephemeral)")
    p_srv.add_argument("--cache-size", type=int, default=64,
                       help="archives held in the in-process LRU cache "
                            "(keyed by payload checksum; 0 disables)")
    p_srv.add_argument("--read-only", action="store_true",
                       help="disable POST /jobs (the PR 5 behaviour); "
                            "no WAL is created")
    p_srv.add_argument("--queue-size", type=int, default=256,
                       help="bounded ingestion queue depth; beyond it "
                            "writes shed with 429 + Retry-After "
                            "(default 256)")
    p_srv.add_argument("--max-body-bytes", type=int,
                       default=32 * 1024 * 1024,
                       help="largest accepted request body; bigger "
                            "declarations answer 413 before the body "
                            "is read (default 32 MiB)")
    p_srv.add_argument("--request-timeout", type=float, default=30.0,
                       help="per-connection socket timeout in seconds; "
                            "stalled clients are disconnected instead "
                            "of pinning a thread (default 30)")
    p_srv.add_argument("--chaos",
                       help="service fault-injection plan JSON "
                            "(see repro.service.chaos.ChaosPlan): "
                            "injected latency, WAL disk-full, store "
                            "lock timeouts, worker crashes — "
                            "deterministic by occurrence count; with "
                            "--workers also router-level worker_kill, "
                            "probe_timeout, and slow_shard events")
    p_srv.add_argument("--workers", type=int, default=1,
                       help="shard worker processes behind a "
                            "consistent-hash router (default 1 = "
                            "single-process service); each worker "
                            "serves its own store + WAL and is "
                            "supervised with backoff restarts")
    p_srv.add_argument("--shards",
                       help="comma-separated shard store directories "
                            "(one per worker); default with --workers N "
                            "is <store>/shard-00..shard-NN")
    p_srv.set_defaults(func=_cmd_serve)

    p_watch = sub.add_parser(
        "watch",
        help="follow a running job's live snapshot stream (SSE)")
    p_watch.add_argument(
        "url",
        help="the job's live endpoint, e.g. "
             "http://127.0.0.1:8737/jobs/<id>/live")
    p_watch.add_argument(
        "--timeout", type=float, default=60.0,
        help="socket inactivity timeout in seconds (server "
             "heartbeats reset it)")
    p_watch.set_defaults(func=_cmd_watch)

    p_rep = sub.add_parser("report", help="render a stored archive")
    p_rep.add_argument("archive", help="path to an archive JSON file")
    p_rep.add_argument("--html", help="also write an HTML report")
    p_rep.set_defaults(func=_cmd_report)

    p_cmp = sub.add_parser(
        "compare",
        help="same platform: regression report (exit 1 on regression); "
             "different platforms: cross-platform Ts/Td/Tp table")
    p_cmp.add_argument("baseline", help="baseline archive JSON")
    p_cmp.add_argument("candidate", help="candidate archive JSON")
    p_cmp.add_argument("--threshold", type=float, default=1.10,
                       help="regression ratio threshold (default 1.10)")
    p_cmp.set_defaults(func=_cmd_compare)

    p_diag = sub.add_parser(
        "diagnose", help="choke points + failure diagnosis of an archive")
    p_diag.add_argument("archive", help="path to an archive JSON file")
    p_diag.add_argument("--compute-mission", default="Compute",
                        help="per-worker compute mission name "
                             "(Gather for PowerGraph)")
    p_diag.set_defaults(func=_cmd_diagnose)

    p_val = sub.add_parser(
        "validate",
        help="check an archive's integrity (checksum, schema, structure)")
    p_val.add_argument("archive", help="path to an archive JSON file")
    p_val.set_defaults(func=_cmd_validate)

    p_fix = sub.add_parser(
        "repair", help="repair an archive's derivable defects")
    p_fix.add_argument("archive", help="path to an archive JSON file")
    p_fix.add_argument("--out",
                       help="write the repaired archive here instead of "
                            "in place")
    p_fix.set_defaults(func=_cmd_repair)

    p_ing = sub.add_parser(
        "ingest", help="build an archive from a raw platform log")
    p_ing.add_argument("log", help="path to a GRANULA platform log")
    p_ing.add_argument("--salvage", action="store_true",
                       help="tolerate truncated/duplicated/reordered "
                            "lines instead of failing")
    p_ing.add_argument("--job-id",
                       help="job to ingest (default: the log's majority "
                            "job)")
    p_ing.add_argument("--out", help="archive store directory")
    p_ing.set_defaults(func=_cmd_ingest)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
