"""In-memory directed graph with contiguous vertex ids."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GraphError

Edge = Tuple[int, int]


class _CsrRows:
    """Adjacency-list facade over CSR arrays.

    Behaves like the eager list-of-lists a :class:`Graph` builds from
    an edge stream, but materializes each row on demand, so a graph
    rebuilt from CSR arrays — possibly read-only, memory-mapped from
    the artifact cache, or living in a shared-memory segment — never
    mirrors the edge data into per-process Python lists.  Rows are not
    memoized: callers that need a row repeatedly hold the returned
    list, and the vectorized engines bypass adjacency entirely via
    :meth:`Graph.csr`.
    """

    __slots__ = ("_indptr", "_indices")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray):
        self._indptr = indptr
        self._indices = indices

    def __len__(self) -> int:
        return len(self._indptr) - 1

    def __getitem__(self, v):
        n = len(self)
        if isinstance(v, slice):
            return [self[i] for i in range(*v.indices(n))]
        if v < 0:
            v += n
        if not 0 <= v < n:
            raise IndexError(f"vertex {v} out of range")
        return self._indices[self._indptr[v]:self._indptr[v + 1]].tolist()

    def __iter__(self):
        for v in range(len(self)):
            yield self[v]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, (list, _CsrRows)):
            return NotImplemented
        return len(self) == len(other) and all(
            mine == theirs for mine, theirs in zip(self, other)
        )

    __hash__ = None


class Graph:
    """A directed graph over vertices ``0 .. n-1``.

    The out-adjacency is built eagerly; the in-adjacency and the undirected
    view are derived lazily and cached.  Self-loops are permitted; parallel
    edges are collapsed.
    """

    def __init__(self, num_vertices: int, edges: Iterable[Edge]):
        if num_vertices < 0:
            raise GraphError(f"negative vertex count: {num_vertices}")
        self._n = num_vertices
        out: List[List[int]] = [[] for _ in range(num_vertices)]
        seen = set()
        m = 0
        for src, dst in edges:
            if not (0 <= src < num_vertices and 0 <= dst < num_vertices):
                raise GraphError(
                    f"edge ({src}, {dst}) out of range for {num_vertices} vertices"
                )
            if (src, dst) in seen:
                continue
            seen.add((src, dst))
            out[src].append(dst)
            m += 1
        for adj in out:
            adj.sort()
        self._out = out
        self._m = m
        self._in: Optional[List[List[int]]] = None
        self._undirected: Optional[List[List[int]]] = None
        self._csr = None

    @classmethod
    def from_edge_arrays(
        cls, num_vertices: int, src: np.ndarray, dst: np.ndarray
    ) -> "Graph":
        """Build a graph from parallel numpy edge arrays in bulk.

        Semantically identical to ``Graph(num_vertices, zip(src, dst))``
        — parallel edges are collapsed and adjacency lists sorted — but
        the validation, dedup and adjacency construction are vectorized.
        """
        if num_vertices < 0:
            raise GraphError(f"negative vertex count: {num_vertices}")
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if src.shape != dst.shape or src.ndim != 1:
            raise GraphError("src and dst must be equal-length 1-d arrays")
        bad = (src < 0) | (src >= num_vertices) | (dst < 0) | (dst >= num_vertices)
        if bad.any():
            i = int(np.flatnonzero(bad)[0])
            raise GraphError(
                f"edge ({int(src[i])}, {int(dst[i])}) out of range "
                f"for {num_vertices} vertices"
            )
        # Dedup + sort in one shot: pack (src, dst) into a single key.
        if len(src):
            key = np.unique(src * np.int64(num_vertices) + dst)
            u_src = key // num_vertices
            u_dst = key % num_vertices
        else:
            u_src = src
            u_dst = dst
        graph = cls.__new__(cls)
        graph._n = num_vertices
        graph._m = len(u_dst)
        counts = np.bincount(u_src, minlength=num_vertices)
        offsets = np.concatenate(
            ([0], np.cumsum(counts, dtype=np.int64))
        ).tolist()
        flat = u_dst.tolist()
        graph._out = [
            flat[offsets[v]:offsets[v + 1]] for v in range(num_vertices)
        ]
        graph._in = None
        graph._undirected = None
        graph._csr = None
        return graph

    @classmethod
    def from_csr_arrays(
        cls, num_vertices: int, indptr: np.ndarray, indices: np.ndarray
    ) -> "Graph":
        """Rebuild a graph from its CSR arrays (e.g. a cache hit).

        The arrays are taken as already deduplicated with sorted
        adjacency rows — exactly what :meth:`csr` produced — so the
        result is identical to the graph the arrays came from.  The CSR
        view is pre-seeded from the same arrays (which may be read-only
        ``np.load(mmap_mode='r')`` views or shared-memory pages; they
        are never written to), and the adjacency is a lazy facade over
        them — the edge data is never copied into Python lists, so N
        processes rebuilding from the same mapped pages keep a single
        physical copy of the graph.
        """
        from repro.graph.csr import CsrGraph
        csr = CsrGraph(indptr, indices)
        if csr.num_vertices != num_vertices:
            raise GraphError(
                f"CSR arrays describe {csr.num_vertices} vertices, "
                f"expected {num_vertices}"
            )
        graph = cls.__new__(cls)
        graph._n = num_vertices
        graph._m = csr.num_edges
        graph._out = _CsrRows(csr.indptr, csr.indices)
        graph._in = None
        graph._undirected = None
        graph._csr = csr
        return graph

    def csr(self):
        """CSR view of the out-adjacency (built lazily, cached)."""
        if self._csr is None:
            from repro.graph.csr import CsrGraph
            self._csr = CsrGraph.from_graph(self)
        return self._csr

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of directed edges (parallel edges collapsed)."""
        return self._m

    def vertices(self) -> range:
        """All vertex ids."""
        return range(self._n)

    def edges(self) -> Iterator[Edge]:
        """All (src, dst) pairs, sorted by src then dst."""
        for src in range(self._n):
            for dst in self._out[src]:
                yield (src, dst)

    def out_neighbors(self, v: int) -> Sequence[int]:
        """Out-neighbors of ``v``, sorted."""
        self._check_vertex(v)
        return self._out[v]

    def in_neighbors(self, v: int) -> Sequence[int]:
        """In-neighbors of ``v``, sorted (built lazily)."""
        self._check_vertex(v)
        if self._in is None:
            inc: List[List[int]] = [[] for _ in range(self._n)]
            for src in range(self._n):
                for dst in self._out[src]:
                    inc[dst].append(src)
            for adj in inc:
                adj.sort()
            self._in = inc
        return self._in[v]

    def neighbors_undirected(self, v: int) -> Sequence[int]:
        """Distinct neighbors of ``v`` ignoring direction and self-loops."""
        self._check_vertex(v)
        if self._undirected is None:
            und: List[set] = [set() for _ in range(self._n)]
            for src in range(self._n):
                for dst in self._out[src]:
                    if src != dst:
                        und[src].add(dst)
                        und[dst].add(src)
            self._undirected = [sorted(s) for s in und]
        return self._undirected[v]

    def out_degree(self, v: int) -> int:
        """Number of out-edges of ``v``."""
        self._check_vertex(v)
        return len(self._out[v])

    def in_degree(self, v: int) -> int:
        """Number of in-edges of ``v``."""
        return len(self.in_neighbors(v))

    def degree_undirected(self, v: int) -> int:
        """Number of distinct undirected neighbors of ``v``."""
        return len(self.neighbors_undirected(v))

    def has_edge(self, src: int, dst: int) -> bool:
        """True when the directed edge (src, dst) exists (binary search)."""
        self._check_vertex(src)
        self._check_vertex(dst)
        adj = self._out[src]
        lo, hi = 0, len(adj)
        while lo < hi:
            mid = (lo + hi) // 2
            if adj[mid] < dst:
                lo = mid + 1
            else:
                hi = mid
        return lo < len(adj) and adj[lo] == dst

    def reversed(self) -> "Graph":
        """A new graph with every edge direction flipped."""
        return Graph(self._n, ((dst, src) for src, dst in self.edges()))

    def degree_histogram(self) -> Dict[int, int]:
        """Mapping out-degree -> number of vertices with that degree."""
        hist: Dict[int, int] = {}
        for v in range(self._n):
            d = len(self._out[v])
            hist[d] = hist.get(d, 0) + 1
        return hist

    def max_out_degree(self) -> int:
        """Largest out-degree, 0 for an empty graph."""
        if self._n == 0:
            return 0
        return max(len(adj) for adj in self._out)

    def _check_vertex(self, v: int) -> None:
        if not (0 <= v < self._n):
            raise GraphError(f"vertex {v} out of range [0, {self._n})")

    def __repr__(self) -> str:
        return f"Graph(n={self._n}, m={self._m})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._n == other._n and self._out == other._out

    def __hash__(self) -> int:  # pragma: no cover - graphs are not dict keys
        return id(self)
