"""Graph substrate: data structures, formats, generators, partitioners.

The paper's workload is BFS over an LDBC Datagen graph.  This package
provides everything the platform engines need: an in-memory directed graph,
CSR and Giraph-like vertex-store representations, text edge-list files,
synthetic generators (including an LDBC-Datagen-like social network), and
the partitioning strategies that distinguish Giraph (hash edge-cut) from
PowerGraph (greedy vertex-cut).
"""

from repro.graph.graph import Graph
from repro.graph.csr import CsrGraph
from repro.graph.edgelist import EdgeList, parse_edge_list, render_edge_list

__all__ = [
    "Graph",
    "CsrGraph",
    "EdgeList",
    "parse_edge_list",
    "render_edge_list",
]
