"""Validation of platform outputs against the reference algorithms.

Every platform engine's job result is checked here: exact equality for
discrete outputs (BFS levels, WCC labels, CDLP labels) and tolerance-based
comparison for numeric ones (PageRank, SSSP, LCC).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Union

Number = Union[int, float]


@dataclass
class ValidationReport:
    """Outcome of comparing a platform output with the reference.

    Attributes:
        ok: True when every vertex matched.
        total: number of vertices compared.
        mismatches: up to ``max_reported`` differing vertices with both
            values, for diagnostics.
    """

    ok: bool
    total: int
    mismatches: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.ok

    def summary(self) -> str:
        """One-line human-readable result."""
        if self.ok:
            return f"OK ({self.total} vertices checked)"
        return (
            f"FAILED ({len(self.mismatches)} shown of mismatching vertices, "
            f"{self.total} checked): " + "; ".join(self.mismatches[:3])
        )


def compare_exact(
    expected: Dict[int, Number],
    actual: Dict[int, Number],
    max_reported: int = 10,
) -> ValidationReport:
    """Exact per-vertex equality (BFS levels, WCC/CDLP labels)."""
    mismatches: List[str] = []
    keys = set(expected) | set(actual)
    for v in sorted(keys):
        e = expected.get(v, "<missing>")
        a = actual.get(v, "<missing>")
        if e != a:
            if len(mismatches) < max_reported:
                mismatches.append(f"v{v}: expected {e}, got {a}")
            else:
                break
    return ValidationReport(ok=not mismatches, total=len(keys), mismatches=mismatches)


def compare_numeric(
    expected: Dict[int, float],
    actual: Dict[int, float],
    rel_tol: float = 1e-6,
    abs_tol: float = 1e-9,
    max_reported: int = 10,
) -> ValidationReport:
    """Tolerance-based per-vertex comparison (PageRank, SSSP, LCC).

    Infinities compare equal to each other (unreachable SSSP vertices).
    """
    mismatches: List[str] = []
    keys = set(expected) | set(actual)
    for v in sorted(keys):
        if v not in expected or v not in actual:
            if len(mismatches) < max_reported:
                missing = "actual" if v not in actual else "expected"
                mismatches.append(f"v{v}: missing from {missing}")
            continue
        e, a = expected[v], actual[v]
        if math.isinf(e) and math.isinf(a):
            continue
        if not math.isclose(e, a, rel_tol=rel_tol, abs_tol=abs_tol):
            if len(mismatches) < max_reported:
                mismatches.append(f"v{v}: expected {e!r}, got {a!r}")
            else:
                break
    return ValidationReport(ok=not mismatches, total=len(keys), mismatches=mismatches)
