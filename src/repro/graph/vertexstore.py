"""Giraph-like vertex-store (adjacency) text format.

Table 1 lists Giraph's data format as "VertexStore": one line per vertex,
``vertex_id neighbor1 neighbor2 ...``.  Giraph's HDFS input splits are in
this format in our reproduction.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.graph import Graph


def _digit_counts(arr: np.ndarray) -> np.ndarray:
    """``len(str(x))`` per element for non-negative integer arrays."""
    digits = np.ones(len(arr), dtype=np.int64)
    limit = 10
    while True:
        over = arr >= limit
        if not over.any():
            return digits
        digits[over] += 1
        limit *= 10


def render_vertex_store(graph: Graph) -> str:
    """Render a graph as one adjacency line per vertex."""
    lines = []
    for v in graph.vertices():
        neigh = " ".join(str(u) for u in graph.out_neighbors(v))
        lines.append(f"{v} {neigh}".rstrip())
    return "\n".join(lines) + ("\n" if lines else "")


def parse_vertex_store(text: str, num_vertices: int) -> Graph:
    """Parse vertex-store text back into a :class:`Graph`.

    Every vertex line is optional (absent lines mean isolated vertices),
    but duplicate lines for the same vertex are an error.
    """
    edges: List[Tuple[int, int]] = []
    seen: set = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        parts = stripped.split()
        try:
            ids = [int(p) for p in parts]
        except ValueError:
            raise GraphError(
                f"line {lineno}: non-integer vertex id in {line!r}"
            ) from None
        v, neighbors = ids[0], ids[1:]
        if not (0 <= v < num_vertices):
            raise GraphError(
                f"line {lineno}: vertex {v} out of range for {num_vertices}"
            )
        if v in seen:
            raise GraphError(f"line {lineno}: duplicate vertex line for {v}")
        seen.add(v)
        for u in neighbors:
            if not (0 <= u < num_vertices):
                raise GraphError(
                    f"line {lineno}: neighbor {u} out of range for {num_vertices}"
                )
            edges.append((v, u))
    return Graph(num_vertices, edges)


def vertex_store_size_bytes(graph: Graph) -> int:
    """Exact rendered size in bytes without building the string.

    Per vertex line: the vertex id, one `` `` + id per (sorted, distinct)
    out-neighbor, and a newline — counted off the CSR arrays so large
    graphs don't pay a per-character Python loop.
    """
    n = graph.num_vertices
    if n == 0:
        return 0
    csr = graph.csr()
    ids = np.arange(n, dtype=np.int64)
    return int(
        _digit_counts(ids).sum()               # vertex ids
        + _digit_counts(csr.indices).sum()     # neighbor ids
        + len(csr.indices)                     # one space per neighbor
        + n                                    # newlines
    )


def split_vertex_lines(graph: Graph, parts: int) -> List[Sequence[int]]:
    """Partition vertex lines into ``parts`` contiguous ranges of vertices."""
    if parts <= 0:
        raise GraphError(f"parts must be positive, got {parts}")
    n = graph.num_vertices
    base, extra = divmod(n, parts)
    out: List[Sequence[int]] = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        out.append(range(start, start + size))
        start += size
    return out
