"""Weakly connected components via union-find."""

from __future__ import annotations

from typing import Dict, List

from repro.graph.graph import Graph


class _UnionFind:
    """Union-find with path compression and union by size."""

    def __init__(self, n: int):
        self.parent = list(range(n))
        self.size = [1] * n

    def find(self, v: int) -> int:
        """Root of ``v``'s set, with path compression."""
        root = v
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[v] != root:
            self.parent[v], v = root, self.parent[v]
        return root

    def union(self, a: int, b: int) -> None:
        """Merge the sets containing ``a`` and ``b``."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]


def weakly_connected_components(graph: Graph) -> Dict[int, int]:
    """Component label per vertex; the label is the smallest member id.

    Edge direction is ignored (weak connectivity), matching the
    Graphalytics WCC definition.
    """
    uf = _UnionFind(graph.num_vertices)
    for src, dst in graph.edges():
        uf.union(src, dst)
    # Normalize: label every vertex with the minimum id of its component.
    min_of_root: Dict[int, int] = {}
    for v in graph.vertices():
        root = uf.find(v)
        if root not in min_of_root or v < min_of_root[root]:
            min_of_root[root] = v
    return {v: min_of_root[uf.find(v)] for v in graph.vertices()}


def component_sizes(graph: Graph) -> List[int]:
    """Sizes of all weakly connected components, descending."""
    labels = weakly_connected_components(graph)
    counts: Dict[int, int] = {}
    for label in labels.values():
        counts[label] = counts.get(label, 0) + 1
    return sorted(counts.values(), reverse=True)
