"""Breadth-first search reference implementation.

BFS is the algorithm of the paper's entire evaluation (Figures 5-8): the
per-superstep frontier sizes it produces drive the compute-imbalance
visualization of Figure 8.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List

from repro.errors import GraphError
from repro.graph.graph import Graph

#: Level assigned to vertices unreachable from the source.
UNREACHED = -1


def bfs_levels(graph: Graph, source: int) -> Dict[int, int]:
    """Hop distance from ``source`` for every vertex.

    Unreachable vertices get :data:`UNREACHED` (-1), matching the
    Graphalytics output convention.
    """
    if not (0 <= source < graph.num_vertices):
        raise GraphError(
            f"source {source} out of range [0, {graph.num_vertices})"
        )
    levels = {v: UNREACHED for v in graph.vertices()}
    levels[source] = 0
    queue = deque([source])
    while queue:
        v = queue.popleft()
        next_level = levels[v] + 1
        for u in graph.out_neighbors(v):
            if levels[u] == UNREACHED:
                levels[u] = next_level
                queue.append(u)
    return levels


def frontier_sizes(graph: Graph, source: int) -> List[int]:
    """Number of vertices first reached at each hop, starting at hop 0.

    ``frontier_sizes(g, s)[k]`` is the size of BFS frontier ``k``; the
    list ends at the last non-empty frontier.  Superstep ``k`` of a Pregel
    BFS processes exactly this frontier, so the list's shape is the shape
    of Figure 8.
    """
    levels = bfs_levels(graph, source)
    reached = [lvl for lvl in levels.values() if lvl != UNREACHED]
    depth = max(reached)
    sizes = [0] * (depth + 1)
    for lvl in reached:
        sizes[lvl] += 1
    return sizes
