"""Local clustering coefficient (LCC).

Graphalytics definition: for vertex v with undirected neighborhood N(v),
LCC(v) is the number of directed edges among N(v) divided by
|N(v)| * (|N(v)| - 1); vertices with fewer than two neighbors get 0.
"""

from __future__ import annotations

from typing import Dict

from repro.graph.graph import Graph


def local_clustering_coefficient(graph: Graph) -> Dict[int, float]:
    """LCC value per vertex."""
    result: Dict[int, float] = {}
    neighbor_sets = {
        v: set(graph.neighbors_undirected(v)) for v in graph.vertices()
    }
    for v in graph.vertices():
        neigh = graph.neighbors_undirected(v)
        k = len(neigh)
        if k < 2:
            result[v] = 0.0
            continue
        links = 0
        neigh_set = neighbor_sets[v]
        for u in neigh:
            # Count directed edges u -> w with w also a neighbor of v.
            for w in graph.out_neighbors(u):
                if w != u and w != v and w in neigh_set:
                    links += 1
        result[v] = links / (k * (k - 1))
    return result


def average_clustering(graph: Graph) -> float:
    """Mean LCC over all vertices (0.0 for the empty graph)."""
    if graph.num_vertices == 0:
        return 0.0
    lcc = local_clustering_coefficient(graph)
    return sum(lcc.values()) / graph.num_vertices
