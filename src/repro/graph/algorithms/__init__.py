"""Single-node reference implementations of the Graphalytics algorithms.

These are the ground truth the platform engines are validated against:
BFS, PageRank, weakly connected components (WCC), single-source shortest
paths (SSSP), community detection by label propagation (CDLP), and local
clustering coefficient (LCC) — the suite of LDBC Graphalytics, the
benchmark this paper's evaluation methodology extends.
"""

from repro.graph.algorithms.bfs import bfs_levels
from repro.graph.algorithms.pagerank import pagerank
from repro.graph.algorithms.wcc import weakly_connected_components
from repro.graph.algorithms.sssp import sssp_distances
from repro.graph.algorithms.cdlp import label_propagation
from repro.graph.algorithms.lcc import local_clustering_coefficient

__all__ = [
    "bfs_levels",
    "pagerank",
    "weakly_connected_components",
    "sssp_distances",
    "label_propagation",
    "local_clustering_coefficient",
]
