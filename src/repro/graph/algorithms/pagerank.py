"""PageRank reference implementation (power iteration)."""

from __future__ import annotations

from typing import Dict

from repro.errors import GraphError
from repro.graph.graph import Graph


def pagerank(
    graph: Graph,
    damping: float = 0.85,
    iterations: int = 20,
    tolerance: float = 0.0,
) -> Dict[int, float]:
    """PageRank by power iteration with dangling-mass redistribution.

    Runs ``iterations`` rounds, stopping early when the L1 change drops
    below ``tolerance`` (0 disables early stopping, which keeps the
    iteration count deterministic for platform comparison).
    """
    if not (0.0 < damping < 1.0):
        raise GraphError(f"damping must lie in (0, 1), got {damping}")
    if iterations < 0:
        raise GraphError(f"negative iteration count: {iterations}")
    n = graph.num_vertices
    if n == 0:
        return {}
    rank = {v: 1.0 / n for v in graph.vertices()}
    base = (1.0 - damping) / n
    for _ in range(iterations):
        dangling = sum(
            rank[v] for v in graph.vertices() if graph.out_degree(v) == 0
        )
        incoming = {v: 0.0 for v in graph.vertices()}
        for v in graph.vertices():
            deg = graph.out_degree(v)
            if deg == 0:
                continue
            share = rank[v] / deg
            for u in graph.out_neighbors(v):
                incoming[u] += share
        new_rank = {
            v: base + damping * (incoming[v] + dangling / n)
            for v in graph.vertices()
        }
        delta = sum(abs(new_rank[v] - rank[v]) for v in graph.vertices())
        rank = new_rank
        if tolerance > 0 and delta < tolerance:
            break
    return rank
