"""Single-source shortest paths (Dijkstra) reference implementation."""

from __future__ import annotations

import heapq
import math
from typing import Callable, Dict, Optional

from repro.errors import GraphError
from repro.graph.graph import Graph

#: Distance assigned to unreachable vertices.
INFINITY = math.inf

WeightFn = Callable[[int, int], float]


def default_weight(src: int, dst: int) -> float:
    """Deterministic pseudo-weights in [1, 2) derived from the edge ids.

    Graphalytics SSSP uses edge properties; synthetic graphs have none, so
    benchmarks share this reproducible weight function.
    """
    h = ((src * 2654435761) ^ (dst * 40503)) & 0xFFFF
    return 1.0 + h / 65536.0


def sssp_distances(
    graph: Graph,
    source: int,
    weight: Optional[WeightFn] = None,
) -> Dict[int, float]:
    """Shortest-path distance from ``source`` under ``weight``.

    Unreachable vertices get :data:`INFINITY`.  Weights must be
    non-negative (Dijkstra's requirement); a negative weight raises.
    """
    if not (0 <= source < graph.num_vertices):
        raise GraphError(
            f"source {source} out of range [0, {graph.num_vertices})"
        )
    w = weight or default_weight
    dist = {v: INFINITY for v in graph.vertices()}
    dist[source] = 0.0
    heap = [(0.0, source)]
    while heap:
        d, v = heapq.heappop(heap)
        if d > dist[v]:
            continue
        for u in graph.out_neighbors(v):
            edge_w = w(v, u)
            if edge_w < 0:
                raise GraphError(
                    f"negative edge weight {edge_w} on ({v}, {u})"
                )
            nd = d + edge_w
            if nd < dist[u]:
                dist[u] = nd
                heapq.heappush(heap, (nd, u))
    return dist
