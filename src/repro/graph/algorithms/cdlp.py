"""Community detection by label propagation (CDLP).

The Graphalytics variant: labels start as vertex ids; each round every
vertex adopts the most frequent label among its incoming neighbors
(ties broken toward the smallest label); runs a fixed number of rounds.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import GraphError
from repro.graph.graph import Graph


def label_propagation(graph: Graph, iterations: int = 10) -> Dict[int, int]:
    """CDLP labels after ``iterations`` synchronous rounds."""
    if iterations < 0:
        raise GraphError(f"negative iteration count: {iterations}")
    labels = {v: v for v in graph.vertices()}
    for _ in range(iterations):
        new_labels: Dict[int, int] = {}
        for v in graph.vertices():
            freq: Dict[int, int] = {}
            for u in graph.in_neighbors(v):
                lbl = labels[u]
                freq[lbl] = freq.get(lbl, 0) + 1
            if not freq:
                new_labels[v] = labels[v]
                continue
            best_count = max(freq.values())
            new_labels[v] = min(
                lbl for lbl, c in freq.items() if c == best_count
            )
        if new_labels == labels:
            break
        labels = new_labels
    return labels


def community_count(labels: Dict[int, int]) -> int:
    """Number of distinct communities in a labeling."""
    return len(set(labels.values()))
