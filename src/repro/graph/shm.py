"""Shared-memory CSR pages for the multi-process workload fan-out.

``execute_parallel`` forks a pool of workers that replay workloads over
the same named datasets.  Forking shares the parent's heap
copy-on-write, but CPython's reference counting dirties the page of
every object a worker merely *looks at*, so a graph inherited as
Python adjacency lists gradually unshares — peak RSS grows linearly
with the worker count.

This module instead places the immutable CSR arrays (``indptr`` +
``indices``) of each dataset into one POSIX shared-memory segment.
Workers attach read-only numpy views over the segment and rebuild
their :class:`~repro.graph.graph.Graph` via
:meth:`~repro.graph.graph.Graph.from_csr_arrays`, whose adjacency is a
lazy facade over the arrays — no per-worker Python mirror of the edge
data is ever materialized, so the kernel keeps one physical copy of
every graph page no matter how many workers scan it.

Lifecycle:

* The parent owns the segments through :class:`SharedGraphPages`; it
  creates them before forking the pool and ``close()`` both closes and
  unlinks them after the pool drains.
* Workers attach in the pool initializer (:func:`attach_graph`).  On
  POSIX attaching re-registers the segment with the ``multiprocessing``
  resource tracker, but the fan-out always forks, so parent and
  workers share one tracker process whose per-type cache is a set —
  the duplicate registrations collapse and the parent's single unlink
  retires the name cleanly.  Worker mappings are closed at interpreter
  exit; the mapping itself dies with the process either way, so only
  the parent's unlink is load-bearing.
"""

from __future__ import annotations

import atexit
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.graph import Graph

#: Byte alignment of the ``indices`` blob inside a segment (cache-line
#: aligned, and a multiple of the int64 itemsize).
ALIGNMENT = 64


def _align(offset: int) -> int:
    return (offset + ALIGNMENT - 1) & ~(ALIGNMENT - 1)


@dataclass(frozen=True)
class SharedCsrHandle:
    """Picklable descriptor of one shared CSR segment.

    Carries everything a worker needs to attach: the segment name, the
    array geometry, and the dataset's content key so the worker can
    seed its dataset memo with the attached graph.
    """

    name: str
    num_vertices: int
    num_edges: int
    content_key: Optional[str] = None

    @property
    def indptr_nbytes(self) -> int:
        return (self.num_vertices + 1) * 8

    @property
    def indices_offset(self) -> int:
        return _align(self.indptr_nbytes)

    @property
    def total_nbytes(self) -> int:
        return self.indices_offset + self.num_edges * 8


def _csr_views(buffer, handle: SharedCsrHandle) -> Tuple[np.ndarray, np.ndarray]:
    """Read-only int64 views of a segment's indptr and indices."""
    view = memoryview(buffer)
    if len(view) < handle.total_nbytes:
        raise GraphError(
            f"shared segment {handle.name!r} holds {len(view)} bytes, "
            f"need {handle.total_nbytes}"
        )
    indptr = np.frombuffer(
        view[: handle.indptr_nbytes], dtype=np.int64)
    indices = np.frombuffer(
        view[handle.indices_offset:
             handle.indices_offset + handle.num_edges * 8],
        dtype=np.int64)
    indptr.flags.writeable = False
    indices.flags.writeable = False
    return indptr, indices


class SharedGraphPages:
    """Parent-side owner of shared CSR segments.

    ``share()`` copies a graph's CSR arrays into a fresh segment and
    returns the picklable handle; ``close()`` closes and unlinks every
    segment.  Usable as a context manager around a pool's lifetime.
    """

    def __init__(self) -> None:
        self._segments: List = []

    def share(self, graph: Graph) -> SharedCsrHandle:
        """Place ``graph``'s CSR arrays into a new shared segment."""
        from multiprocessing import shared_memory

        csr = graph.csr()
        handle_geometry = SharedCsrHandle(
            name="", num_vertices=csr.num_vertices,
            num_edges=csr.num_edges,
        )
        segment = shared_memory.SharedMemory(
            create=True, size=max(1, handle_geometry.total_nbytes))
        self._segments.append(segment)
        handle = SharedCsrHandle(
            name=segment.name,
            num_vertices=csr.num_vertices,
            num_edges=csr.num_edges,
            content_key=getattr(graph, "content_key", None),
        )
        view = memoryview(segment.buf)
        indptr_bytes = np.ascontiguousarray(
            csr.indptr, dtype=np.int64).tobytes()
        view[: len(indptr_bytes)] = indptr_bytes
        if handle.num_edges:
            indices_bytes = np.ascontiguousarray(
                csr.indices, dtype=np.int64).tobytes()
            view[handle.indices_offset:
                 handle.indices_offset + len(indices_bytes)] = indices_bytes
        view.release()
        return handle

    def close(self) -> None:
        """Close and unlink every segment (idempotent)."""
        segments, self._segments = self._segments, []
        for segment in segments:
            try:
                segment.close()
            except (OSError, BufferError):  # pragma: no cover - defensive
                pass
            try:
                segment.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass

    def __enter__(self) -> "SharedGraphPages":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self._segments)


#: Segments this process has attached to (worker side), kept alive for
#: the life of the process and closed at interpreter exit.
_ATTACHED: List = []


def _close_attached() -> None:
    segments, _ATTACHED[:] = list(_ATTACHED), []
    for segment in segments:
        try:
            segment.close()
        except (OSError, BufferError):  # pragma: no cover - defensive
            pass


def attach_graph(handle: SharedCsrHandle) -> Graph:
    """Attach to a shared segment and rebuild its graph (worker side).

    The returned graph's CSR arrays are read-only views straight into
    the shared pages; its adjacency facade slices rows out of them on
    demand.  The segment stays mapped until interpreter exit.
    """
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name=handle.name)
    if not _ATTACHED:
        atexit.register(_close_attached)
    _ATTACHED.append(segment)
    indptr, indices = _csr_views(segment.buf, handle)
    graph = Graph.from_csr_arrays(handle.num_vertices, indptr, indices)
    if handle.content_key is not None:
        graph.content_key = handle.content_key
    return graph
