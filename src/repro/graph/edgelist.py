"""Edge-list text format.

PowerGraph loads edge-based text files ("src dst" per line) from local or
shared storage (Table 1).  The functions here render and parse that format
and estimate its on-disk size, so the simulated filesystems can charge
realistic I/O time while the engines really consume the edges.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.graph import Edge, Graph


def _digit_counts(arr: np.ndarray) -> np.ndarray:
    """``len(str(x))`` per element for non-negative integer arrays."""
    digits = np.ones(len(arr), dtype=np.int64)
    limit = 10
    while True:
        over = arr >= limit
        if not over.any():
            return digits
        digits[over] += 1
        limit *= 10


class EdgeList:
    """An edge list plus its declared vertex-id space.

    Attributes:
        num_vertices: size of the id space (vertices may be isolated).
        edges: (src, dst) tuples; order is meaningful (file order).

    :meth:`from_graph` keeps the list as parallel (src, dst) numpy
    arrays: deploying a dataset only needs edge *counts* and byte
    *sizes*, both of which come straight off the arrays, so the million
    Python tuples behind ``edges`` are built lazily on first access.
    """

    __slots__ = ("num_vertices", "_edges", "_arrays")

    def __init__(self, num_vertices: int, edges: Iterable[Edge] = ()):
        self.num_vertices = num_vertices
        self._edges: Optional[Tuple[Edge, ...]] = tuple(edges)
        #: Parallel (src, dst) numpy arrays, stashed by ``from_graph`` so
        #: size accounting can run vectorized; plain-constructed lists
        #: lack them.
        self._arrays: Optional[tuple] = None

    @classmethod
    def from_graph(cls, graph: Graph) -> "EdgeList":
        """Extract the edge list of a graph (array-backed, lazy tuples)."""
        csr = graph.csr()
        src = np.repeat(
            np.arange(graph.num_vertices, dtype=np.int64), csr.out_degrees()
        )
        dst = csr.indices
        edge_list = cls(graph.num_vertices)
        edge_list._edges = None
        edge_list._arrays = (src, dst)
        return edge_list

    @property
    def edges(self) -> Tuple[Edge, ...]:
        """The (src, dst) tuples (materialized on first use)."""
        if self._edges is None:
            src, dst = self._arrays
            self._edges = tuple(zip(src.tolist(), dst.tolist()))
        return self._edges

    def to_graph(self) -> Graph:
        """Materialize the edge list as a graph."""
        return Graph(self.num_vertices, self.edges)

    @property
    def num_edges(self) -> int:
        """Number of edges in the list."""
        if self._edges is None:
            return len(self._arrays[0])
        return len(self._edges)

    def text_size_bytes(self) -> int:
        """Exact size of the rendered text file in bytes."""
        if self._arrays is not None:
            src, dst = self._arrays
            return int(
                _digit_counts(src).sum() + _digit_counts(dst).sum()
                + 2 * len(src)
            )
        total = 0
        for src, dst in self.edges:
            total += len(str(src)) + 1 + len(str(dst)) + 1
        return total

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EdgeList):
            return NotImplemented
        return (self.num_vertices == other.num_vertices
                and self.edges == other.edges)

    def __hash__(self) -> int:
        return hash((self.num_vertices, self.edges))

    def __repr__(self) -> str:
        return (f"EdgeList(num_vertices={self.num_vertices}, "
                f"num_edges={self.num_edges})")


def render_edge_list(edge_list: EdgeList) -> str:
    """Render as one ``"src dst\\n"`` line per edge."""
    return "".join(f"{src} {dst}\n" for src, dst in edge_list.edges)


def parse_edge_list(text: str, num_vertices: int) -> EdgeList:
    """Parse the text format back into an :class:`EdgeList`.

    Blank lines and ``#`` comment lines are ignored, matching the common
    SNAP/Graphalytics conventions.
    """
    edges: List[Edge] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        parts = stripped.split()
        if len(parts) != 2:
            raise GraphError(
                f"line {lineno}: expected 'src dst', got {line!r}"
            )
        try:
            src, dst = int(parts[0]), int(parts[1])
        except ValueError:
            raise GraphError(
                f"line {lineno}: non-integer vertex id in {line!r}"
            ) from None
        if not (0 <= src < num_vertices and 0 <= dst < num_vertices):
            raise GraphError(
                f"line {lineno}: edge ({src}, {dst}) out of range "
                f"for {num_vertices} vertices"
            )
        edges.append((src, dst))
    return EdgeList(num_vertices, tuple(edges))


def split_edges(edge_list: EdgeList, parts: int) -> List[EdgeList]:
    """Split an edge list into ``parts`` contiguous chunks (file splits)."""
    if parts <= 0:
        raise GraphError(f"parts must be positive, got {parts}")
    chunks: List[EdgeList] = []
    m = edge_list.num_edges
    base, extra = divmod(m, parts)
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        chunks.append(
            EdgeList(edge_list.num_vertices, edge_list.edges[start:start + size])
        )
        start += size
    return chunks
