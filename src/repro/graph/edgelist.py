"""Edge-list text format.

PowerGraph loads edge-based text files ("src dst" per line) from local or
shared storage (Table 1).  The functions here render and parse that format
and estimate its on-disk size, so the simulated filesystems can charge
realistic I/O time while the engines really consume the edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import GraphError
from repro.graph.graph import Edge, Graph


@dataclass(frozen=True)
class EdgeList:
    """An edge list plus its declared vertex-id space.

    Attributes:
        num_vertices: size of the id space (vertices may be isolated).
        edges: (src, dst) tuples; order is meaningful (file order).
    """

    num_vertices: int
    edges: Tuple[Edge, ...]

    @classmethod
    def from_graph(cls, graph: Graph) -> "EdgeList":
        """Extract the edge list of a graph."""
        return cls(graph.num_vertices, tuple(graph.edges()))

    def to_graph(self) -> Graph:
        """Materialize the edge list as a graph."""
        return Graph(self.num_vertices, self.edges)

    @property
    def num_edges(self) -> int:
        """Number of edges in the list."""
        return len(self.edges)

    def text_size_bytes(self) -> int:
        """Exact size of the rendered text file in bytes."""
        total = 0
        for src, dst in self.edges:
            total += len(str(src)) + 1 + len(str(dst)) + 1
        return total


def render_edge_list(edge_list: EdgeList) -> str:
    """Render as one ``"src dst\\n"`` line per edge."""
    return "".join(f"{src} {dst}\n" for src, dst in edge_list.edges)


def parse_edge_list(text: str, num_vertices: int) -> EdgeList:
    """Parse the text format back into an :class:`EdgeList`.

    Blank lines and ``#`` comment lines are ignored, matching the common
    SNAP/Graphalytics conventions.
    """
    edges: List[Edge] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        parts = stripped.split()
        if len(parts) != 2:
            raise GraphError(
                f"line {lineno}: expected 'src dst', got {line!r}"
            )
        try:
            src, dst = int(parts[0]), int(parts[1])
        except ValueError:
            raise GraphError(
                f"line {lineno}: non-integer vertex id in {line!r}"
            ) from None
        if not (0 <= src < num_vertices and 0 <= dst < num_vertices):
            raise GraphError(
                f"line {lineno}: edge ({src}, {dst}) out of range "
                f"for {num_vertices} vertices"
            )
        edges.append((src, dst))
    return EdgeList(num_vertices, tuple(edges))


def split_edges(edge_list: EdgeList, parts: int) -> List[EdgeList]:
    """Split an edge list into ``parts`` contiguous chunks (file splits)."""
    if parts <= 0:
        raise GraphError(f"parts must be positive, got {parts}")
    chunks: List[EdgeList] = []
    m = edge_list.num_edges
    base, extra = divmod(m, parts)
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        chunks.append(
            EdgeList(edge_list.num_vertices, edge_list.edges[start:start + size])
        )
        start += size
    return chunks
