"""Partition quality metrics.

The ablation benchmark (`benchmarks/test_bench_ablation_partitioning.py`)
reports these for edge-cut vs vertex-cut on power-law vs uniform graphs —
the comparison motivating PowerGraph's design in Table 1.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import PartitionError
from repro.graph.graph import Graph
from repro.graph.partition.vertexcut import VertexCut


def _part_count(assignment: Sequence[int]) -> int:
    if not assignment:
        raise PartitionError("empty assignment")
    parts = max(assignment) + 1
    if min(assignment) < 0:
        raise PartitionError("negative partition id in assignment")
    return parts


def vertex_balance(assignment: Sequence[int], parts: int = 0) -> float:
    """Max partition vertex count divided by the ideal (>= 1.0).

    1.0 means perfectly balanced.  ``parts`` overrides the inferred
    partition count (needed when trailing partitions are empty).
    """
    k = parts or _part_count(assignment)
    counts = [0] * k
    for p in assignment:
        if p >= k:
            raise PartitionError(f"partition id {p} >= parts {k}")
        counts[p] += 1
    ideal = len(assignment) / k
    return max(counts) / ideal if ideal > 0 else 1.0


def edge_balance(graph: Graph, assignment: Sequence[int], parts: int = 0) -> float:
    """Max per-partition *edge work* (sum of out-degrees) over the ideal.

    This is the balance measure that matters for compute time: a partition
    holding the hubs of a power-law graph does far more work than its
    vertex count suggests.
    """
    if len(assignment) != graph.num_vertices:
        raise PartitionError(
            f"assignment covers {len(assignment)} vertices, "
            f"graph has {graph.num_vertices}"
        )
    k = parts or _part_count(assignment)
    work = [0] * k
    for v in graph.vertices():
        work[assignment[v]] += graph.out_degree(v)
    ideal = graph.num_edges / k
    return max(work) / ideal if ideal > 0 else 1.0


def edge_cut_fraction(graph: Graph, assignment: Sequence[int]) -> float:
    """Fraction of edges whose endpoints lie in different partitions.

    In a Pregel engine every cut edge implies a network message per
    superstep in the worst case.
    """
    if len(assignment) != graph.num_vertices:
        raise PartitionError(
            f"assignment covers {len(assignment)} vertices, "
            f"graph has {graph.num_vertices}"
        )
    if graph.num_edges == 0:
        return 0.0
    cut = sum(
        1 for src, dst in graph.edges() if assignment[src] != assignment[dst]
    )
    return cut / graph.num_edges


def replication_factor(cut: VertexCut) -> float:
    """Average replicas per vertex of a vertex-cut (PowerGraph's metric)."""
    return cut.replication_factor()


def partition_sizes(assignment: Sequence[int], parts: int = 0) -> List[int]:
    """Vertex count per partition."""
    k = parts or _part_count(assignment)
    counts = [0] * k
    for p in assignment:
        counts[p] += 1
    return counts
