"""Graph partitioning strategies.

Giraph assigns whole vertices to workers (edge-cut, hash by default);
PowerGraph assigns *edges* to machines and replicates vertices across them
(vertex-cut), which is its key idea for power-law graphs.  Both families
live here, together with the quality metrics the ablation benchmark
reports (balance, cut fraction, replication factor).
"""

from repro.graph.partition.hash_partition import hash_partition
from repro.graph.partition.range_partition import range_partition
from repro.graph.partition.vertexcut import greedy_vertex_cut, random_vertex_cut
from repro.graph.partition.metrics import (
    edge_balance,
    edge_cut_fraction,
    replication_factor,
    vertex_balance,
)

__all__ = [
    "hash_partition",
    "range_partition",
    "greedy_vertex_cut",
    "random_vertex_cut",
    "edge_balance",
    "edge_cut_fraction",
    "replication_factor",
    "vertex_balance",
]
