"""Hash-based vertex partitioning (Giraph's default).

Every vertex goes to partition ``hash(v) % k``.  We use a multiplicative
hash rather than Python's identity hash on ints so that contiguous vertex
ranges spread evenly — matching Giraph's ``HashPartitionerFactory``.
"""

from __future__ import annotations

from typing import List

from repro.errors import PartitionError

_KNUTH = 2654435761  # Knuth's multiplicative constant (2^32 / phi).


def vertex_hash(v: int) -> int:
    """A well-mixing 32-bit hash of a vertex id."""
    return ((v + 1) * _KNUTH) & 0xFFFFFFFF


def hash_partition(num_vertices: int, parts: int) -> List[int]:
    """Assign each vertex ``0..n-1`` to a partition by hash.

    Returns a list ``assignment`` with ``assignment[v]`` in ``[0, parts)``.
    """
    if parts <= 0:
        raise PartitionError(f"parts must be positive, got {parts}")
    if num_vertices < 0:
        raise PartitionError(f"negative vertex count: {num_vertices}")
    return [vertex_hash(v) % parts for v in range(num_vertices)]
