"""Hash-based vertex partitioning (Giraph's default).

Every vertex goes to partition ``hash(v) % k``.  We use a multiplicative
hash rather than Python's identity hash on ints so that contiguous vertex
ranges spread evenly — matching Giraph's ``HashPartitionerFactory``.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.errors import PartitionError

_KNUTH = 2654435761  # Knuth's multiplicative constant (2^32 / phi).


def vertex_hash(v: int) -> int:
    """A well-mixing 32-bit hash of a vertex id."""
    return ((v + 1) * _KNUTH) & 0xFFFFFFFF


def hash_partition_array(num_vertices: int, parts: int) -> np.ndarray:
    """Vectorized :func:`hash_partition`: the assignment as an int64 array."""
    if parts <= 0:
        raise PartitionError(f"parts must be positive, got {parts}")
    if num_vertices < 0:
        raise PartitionError(f"negative vertex count: {num_vertices}")
    ids = np.arange(1, num_vertices + 1, dtype=np.int64)
    return ((ids * _KNUTH) & 0xFFFFFFFF) % parts


def hash_partition(num_vertices: int, parts: int) -> List[int]:
    """Assign each vertex ``0..n-1`` to a partition by hash.

    Returns a list ``assignment`` with ``assignment[v]`` in ``[0, parts)``.
    """
    return hash_partition_array(num_vertices, parts).tolist()
