"""Contiguous range partitioning.

Assigns vertex ranges of (nearly) equal cardinality to partitions.  Range
partitioning preserves locality in id-ordered graphs but is vulnerable to
skew when degree correlates with id — the ablation benchmark demonstrates
exactly that on power-law graphs.
"""

from __future__ import annotations

from typing import List

from repro.errors import PartitionError


def range_partition(num_vertices: int, parts: int) -> List[int]:
    """Assign vertices ``0..n-1`` to ``parts`` contiguous ranges."""
    if parts <= 0:
        raise PartitionError(f"parts must be positive, got {parts}")
    if num_vertices < 0:
        raise PartitionError(f"negative vertex count: {num_vertices}")
    assignment: List[int] = []
    base, extra = divmod(num_vertices, parts)
    for p in range(parts):
        size = base + (1 if p < extra else 0)
        assignment.extend([p] * size)
    return assignment
