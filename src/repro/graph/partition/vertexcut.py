"""Vertex-cut (edge) partitioning, PowerGraph style.

PowerGraph assigns *edges* to machines; a vertex whose edges span several
machines is replicated, with one replica chosen as master.  The greedy
heuristic below is the one from the PowerGraph paper (Gonzalez et al.,
OSDI'12): place each edge on a machine already holding one of its
endpoints when possible, preferring intersections, breaking ties by load.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set

from repro.errors import PartitionError
from repro.graph.graph import Edge, Graph
from repro.graph.partition.hash_partition import vertex_hash


@dataclass
class VertexCut:
    """Result of an edge partitioning.

    Attributes:
        parts: number of partitions.
        edge_assignment: partition id per edge, aligned with ``edges``.
        edges: the partitioned edges (src, dst).
        replicas: for each vertex, the set of partitions holding a replica.
        masters: the master partition of each replicated vertex.
    """

    parts: int
    edges: List[Edge]
    edge_assignment: List[int]
    replicas: Dict[int, Set[int]] = field(default_factory=dict)
    masters: Dict[int, int] = field(default_factory=dict)

    def edges_of_part(self, part: int) -> List[Edge]:
        """Edges assigned to ``part``."""
        if not (0 <= part < self.parts):
            raise PartitionError(f"partition {part} out of range [0, {self.parts})")
        return [
            e for e, p in zip(self.edges, self.edge_assignment) if p == part
        ]

    def replication_factor(self) -> float:
        """Average number of replicas per (non-isolated) vertex."""
        if not self.replicas:
            return 0.0
        return sum(len(r) for r in self.replicas.values()) / len(self.replicas)

    def edge_counts(self) -> List[int]:
        """Number of edges per partition."""
        counts = [0] * self.parts
        for p in self.edge_assignment:
            counts[p] += 1
        return counts


def _finalize(parts: int, edges: List[Edge], assignment: List[int]) -> VertexCut:
    replicas: Dict[int, Set[int]] = {}
    for (src, dst), p in zip(edges, assignment):
        replicas.setdefault(src, set()).add(p)
        replicas.setdefault(dst, set()).add(p)
    masters = {v: min(ps) for v, ps in replicas.items()}
    return VertexCut(parts, edges, assignment, replicas, masters)


def random_vertex_cut(graph: Graph, parts: int) -> VertexCut:
    """Hash each edge to a partition (PowerGraph's ``random`` ingress)."""
    if parts <= 0:
        raise PartitionError(f"parts must be positive, got {parts}")
    edges = list(graph.edges())
    assignment = [
        (vertex_hash(src) ^ vertex_hash(dst + 0x9E3779B9)) % parts
        for src, dst in edges
    ]
    return _finalize(parts, edges, assignment)


def greedy_vertex_cut(
    graph: Graph,
    parts: int,
    balance_slack: float = 0.10,
    seed: int = 2017,
) -> VertexCut:
    """PowerGraph's greedy heuristic (``oblivious`` ingress).

    For each edge (u, v) with current replica sets A(u), A(v) and
    per-partition edge loads:

    1. If A(u) and A(v) intersect, place the edge in the least-loaded
       partition of the intersection.
    2. Else if both are non-empty, place it in the least-loaded partition
       of the union.
    3. Else if one is non-empty, use its least-loaded partition.
    4. Else use the globally least-loaded partition.

    Two practical refinements keep the stream from snowballing into one
    partition (PowerGraph's implementation has the same safeguards):
    candidate partitions at or beyond the capacity bound
    ``(1 + balance_slack) * m / parts`` are skipped (falling through to
    the next rule), and edges are visited in a deterministic pseudo-random
    order rather than sorted order, emulating unsorted on-disk edge files.
    """
    if parts <= 0:
        raise PartitionError(f"parts must be positive, got {parts}")
    if balance_slack < 0:
        raise PartitionError(f"negative balance slack: {balance_slack}")
    edges = list(graph.edges())
    order = list(range(len(edges)))
    random.Random(seed).shuffle(order)
    capacity = (1.0 + balance_slack) * len(edges) / parts
    load = [0] * parts
    replicas: Dict[int, Set[int]] = {}
    assignment: List[int] = [0] * len(edges)

    def least_loaded(candidates: Iterable[int]) -> int:
        return min(candidates, key=lambda p: (load[p], p))

    def under_capacity(candidates: Set[int]) -> Set[int]:
        return {p for p in candidates if load[p] + 1 <= capacity}

    for index in order:
        src, dst = edges[index]
        a_u = replicas.get(src, set())
        a_v = replicas.get(dst, set())
        inter = under_capacity(a_u & a_v)
        union = under_capacity(a_u | a_v)
        if inter:
            chosen = least_loaded(inter)
        elif union:
            chosen = least_loaded(union)
        else:
            chosen = least_loaded(range(parts))
        assignment[index] = chosen
        load[chosen] += 1
        replicas.setdefault(src, set()).add(chosen)
        replicas.setdefault(dst, set()).add(chosen)

    masters = {v: min(ps) for v, ps in replicas.items()}
    return VertexCut(parts, edges, assignment, replicas, masters)
