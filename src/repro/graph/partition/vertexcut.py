"""Vertex-cut (edge) partitioning, PowerGraph style.

PowerGraph assigns *edges* to machines; a vertex whose edges span several
machines is replicated, with one replica chosen as master.  The greedy
heuristic below is the one from the PowerGraph paper (Gonzalez et al.,
OSDI'12): place each edge on a machine already holding one of its
endpoints when possible, preferring intersections, breaking ties by load.

The streaming heuristic is inherently sequential, so the fast path keeps
the per-edge loop but represents each vertex's replica set as a bitmask
of partitions (one machine word for realistic ``parts``) instead of a
Python set; :func:`_greedy_vertex_cut_reference` retains the literal
set-based formulation as the equivalence oracle.  Finalization — the
replica/master tables — is vectorized with numpy, and the flat edge
arrays are stashed on the cut for the vectorized GAS backend.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.errors import PartitionError
from repro.graph.graph import Edge, Graph

_KNUTH = 2654435761  # Knuth's multiplicative constant (2^32 / phi).
_GOLDEN = 0x9E3779B9


@dataclass
class VertexCut:
    """Result of an edge partitioning.

    Attributes:
        parts: number of partitions.
        edge_assignment: partition id per edge, aligned with ``edges``.
        edges: the partitioned edges (src, dst).
        replicas: for each vertex, the set of partitions holding a replica.
        masters: the master partition of each replicated vertex.
    """

    parts: int
    edges: List[Edge]
    edge_assignment: List[int]
    replicas: Dict[int, Set[int]] = field(default_factory=dict)
    masters: Dict[int, int] = field(default_factory=dict)

    def edges_of_part(self, part: int) -> List[Edge]:
        """Edges assigned to ``part``."""
        if not (0 <= part < self.parts):
            raise PartitionError(f"partition {part} out of range [0, {self.parts})")
        return [
            e for e, p in zip(self.edges, self.edge_assignment) if p == part
        ]

    def replication_factor(self) -> float:
        """Average number of replicas per (non-isolated) vertex."""
        pairs = getattr(self, "_replica_pairs", None)
        if pairs is not None:
            if not len(pairs):
                return 0.0
            vertices = len(np.unique(pairs // np.int64(self.parts)))
            return len(pairs) / vertices
        if not self.replicas:
            return 0.0
        return sum(len(r) for r in self.replicas.values()) / len(self.replicas)

    def edge_counts(self) -> List[int]:
        """Number of edges per partition."""
        arrays = getattr(self, "_edge_arrays", None)
        if arrays is not None:
            return np.bincount(arrays[2], minlength=self.parts).tolist()
        counts = [0] * self.parts
        for p in self.edge_assignment:
            counts[p] += 1
        return counts


def _edge_columns(
    edges: List[Edge], assignment: List[int]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    m = len(edges)
    src = np.fromiter((e[0] for e in edges), dtype=np.int64, count=m)
    dst = np.fromiter((e[1] for e in edges), dtype=np.int64, count=m)
    part = np.asarray(assignment, dtype=np.int64)
    return src, dst, part


def _finalize(parts: int, edges: List[Edge], assignment: List[int]) -> VertexCut:
    src, dst, part = _edge_columns(edges, assignment)
    replicas: Dict[int, Set[int]] = {}
    masters: Dict[int, int] = {}
    pair = np.empty(0, dtype=np.int64)
    if len(edges):
        # Distinct (vertex, part) incidences, sorted — so the first
        # part seen per vertex is its minimum, i.e. the master.
        pair = np.unique(
            np.concatenate((src, dst)) * np.int64(parts)
            + np.concatenate((part, part))
        )
        _fill_replica_tables(parts, pair, replicas, masters)
    cut = VertexCut(parts, edges, assignment, replicas, masters)
    # Flat columns for the vectorized GAS backend (not part of the
    # dataclass value: derived, and absent on hand-built cuts).
    cut._edge_arrays = (src, dst, part)
    cut._replica_pairs = pair
    return cut


def _fill_replica_tables(
    parts: int,
    pair: np.ndarray,
    replicas: Dict[int, Set[int]],
    masters: Dict[int, int],
) -> None:
    """Expand sorted (vertex*parts + part) keys into the dict tables."""
    for key in pair.tolist():
        v, p = divmod(key, parts)
        group = replicas.get(v)
        if group is None:
            replicas[v] = {p}
            masters[v] = p
        else:
            group.add(p)


def cut_to_arrays(cut: VertexCut) -> Dict[str, np.ndarray]:
    """Flat numpy columns fully describing ``cut`` (for the artifact cache).

    Returns ``src``/``dst``/``part`` per-edge columns plus the sorted
    ``pairs`` replica incidences; :func:`cut_from_arrays` inverts this
    into a cut indistinguishable from the original.
    """
    arrays = getattr(cut, "_edge_arrays", None)
    if arrays is None:
        arrays = _edge_columns(cut.edges, cut.edge_assignment)
    src, dst, part = arrays
    pairs = getattr(cut, "_replica_pairs", None)
    if pairs is None:
        if len(src):
            pairs = np.unique(
                np.concatenate((src, dst)) * np.int64(cut.parts)
                + np.concatenate((part, part))
            )
        else:
            pairs = np.empty(0, dtype=np.int64)
    return {"src": src, "dst": dst, "part": part, "pairs": pairs}


def cut_from_arrays(
    parts: int,
    src: np.ndarray,
    dst: np.ndarray,
    part: np.ndarray,
    pairs: np.ndarray,
) -> VertexCut:
    """Rebuild a cut from :func:`cut_to_arrays` columns (e.g. a cache hit).

    The result is a lazy view: the flat columns (possibly read-only
    memory maps) feed the vectorized GAS backend directly, while the
    Python-level ``edges``/``edge_assignment``/``replicas``/``masters``
    tables materialize on first access with exactly the values
    :func:`_finalize` would have produced.
    """
    if parts <= 0:
        raise PartitionError(f"parts must be positive, got {parts}")
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    part = np.asarray(part, dtype=np.int64)
    pairs = np.asarray(pairs, dtype=np.int64)
    if not (src.shape == dst.shape == part.shape) or src.ndim != 1:
        raise PartitionError("src/dst/part must be equal-length 1-d arrays")
    return _LazyVertexCut(parts, src, dst, part, pairs)


class _LazyVertexCut(VertexCut):
    """A :class:`VertexCut` whose Python tables materialize on demand.

    Cache hits hand the vectorized backend its flat columns without ever
    paying for the per-edge tuple list or the replica dicts; scalar
    consumers that do touch those attributes get values identical to an
    eagerly finalized cut.  The properties are data descriptors, so they
    shadow the dataclass fields of the parent.
    """

    def __init__(
        self,
        parts: int,
        src: np.ndarray,
        dst: np.ndarray,
        part: np.ndarray,
        pairs: np.ndarray,
    ):
        self.parts = int(parts)
        self._edge_arrays = (src, dst, part)
        self._replica_pairs = pairs
        self._edges: Optional[List[Edge]] = None
        self._assignment: Optional[List[int]] = None
        self._tables = None

    @property
    def edges(self) -> List[Edge]:
        if self._edges is None:
            src, dst, _ = self._edge_arrays
            self._edges = list(zip(src.tolist(), dst.tolist()))
        return self._edges

    @property
    def edge_assignment(self) -> List[int]:
        if self._assignment is None:
            self._assignment = self._edge_arrays[2].tolist()
        return self._assignment

    @property
    def replicas(self) -> Dict[int, Set[int]]:
        return self._replica_tables()[0]

    @property
    def masters(self) -> Dict[int, int]:
        return self._replica_tables()[1]

    def _replica_tables(self):
        if self._tables is None:
            replicas: Dict[int, Set[int]] = {}
            masters: Dict[int, int] = {}
            _fill_replica_tables(
                self.parts, self._replica_pairs, replicas, masters
            )
            self._tables = (replicas, masters)
        return self._tables


def random_vertex_cut(graph: Graph, parts: int) -> VertexCut:
    """Hash each edge to a partition (PowerGraph's ``random`` ingress)."""
    if parts <= 0:
        raise PartitionError(f"parts must be positive, got {parts}")
    edges = list(graph.edges())
    m = len(edges)
    src = np.fromiter((e[0] for e in edges), dtype=np.uint64, count=m)
    dst = np.fromiter((e[1] for e in edges), dtype=np.uint64, count=m)
    # vertex_hash over uint64 columns: wrap-around multiplication keeps
    # the low 32 bits exact, so this matches the scalar hash bit for bit.
    h_src = ((src + np.uint64(1)) * np.uint64(_KNUTH)) & np.uint64(0xFFFFFFFF)
    h_dst = (
        (dst + np.uint64(_GOLDEN + 1)) * np.uint64(_KNUTH)
    ) & np.uint64(0xFFFFFFFF)
    assignment = ((h_src ^ h_dst) % np.uint64(parts)).astype(np.int64).tolist()
    return _finalize(parts, edges, assignment)


def _shuffled_order(m: int, seed: int) -> List[int]:
    """The deterministic pseudo-random edge visiting order."""
    order = list(range(m))
    random.Random(seed).shuffle(order)
    return order


def greedy_vertex_cut(
    graph: Graph,
    parts: int,
    balance_slack: float = 0.10,
    seed: int = 2017,
) -> VertexCut:
    """PowerGraph's greedy heuristic (``oblivious`` ingress).

    For each edge (u, v) with current replica sets A(u), A(v) and
    per-partition edge loads:

    1. If A(u) and A(v) intersect, place the edge in the least-loaded
       partition of the intersection.
    2. Else if both are non-empty, place it in the least-loaded partition
       of the union.
    3. Else if one is non-empty, use its least-loaded partition.
    4. Else use the globally least-loaded partition.

    Two practical refinements keep the stream from snowballing into one
    partition (PowerGraph's implementation has the same safeguards):
    candidate partitions at or beyond the capacity bound
    ``(1 + balance_slack) * m / parts`` are skipped (falling through to
    the next rule), and edges are visited in a deterministic pseudo-random
    order rather than sorted order, emulating unsorted on-disk edge files.

    Replica sets live in per-vertex partition bitmasks, turning the set
    algebra above into word-wide and/or operations; the placement is
    identical to :func:`_greedy_vertex_cut_reference` edge for edge.
    """
    if parts <= 0:
        raise PartitionError(f"parts must be positive, got {parts}")
    if balance_slack < 0:
        raise PartitionError(f"negative balance slack: {balance_slack}")
    edges = list(graph.edges())
    m = len(edges)
    capacity = (1.0 + balance_slack) * m / parts
    load = [0] * parts
    masks = [0] * graph.num_vertices
    assignment = [0] * m
    # Bit p stays set while partition p can take one more edge; the
    # capacity test load[p] + 1 <= capacity flips at most once per part.
    allowed = 0
    for p in range(parts):
        if load[p] + 1 <= capacity:
            allowed |= 1 << p
    part_range = range(parts)

    for index in _shuffled_order(m, seed):
        src, dst = edges[index]
        mask_u = masks[src]
        mask_v = masks[dst]
        cand = mask_u & mask_v & allowed
        if not cand:
            cand = (mask_u | mask_v) & allowed
        if cand:
            chosen = -1
            best_load = -1
            bits = cand
            while bits:
                low = bits & -bits
                bits ^= low
                p = low.bit_length() - 1
                lp = load[p]
                if chosen < 0 or lp < best_load:
                    chosen = p
                    best_load = lp
        else:
            chosen = min(part_range, key=lambda p: (load[p], p))
        assignment[index] = chosen
        new_load = load[chosen] + 1
        load[chosen] = new_load
        if new_load + 1 > capacity:
            allowed &= ~(1 << chosen)
        bit = 1 << chosen
        masks[src] |= bit
        masks[dst] |= bit

    return _finalize(parts, edges, assignment)


def _greedy_vertex_cut_reference(
    graph: Graph,
    parts: int,
    balance_slack: float = 0.10,
    seed: int = 2017,
) -> VertexCut:
    """The literal set-based greedy heuristic (equivalence oracle)."""
    if parts <= 0:
        raise PartitionError(f"parts must be positive, got {parts}")
    if balance_slack < 0:
        raise PartitionError(f"negative balance slack: {balance_slack}")
    edges = list(graph.edges())
    capacity = (1.0 + balance_slack) * len(edges) / parts
    load = [0] * parts
    replicas: Dict[int, Set[int]] = {}
    assignment: List[int] = [0] * len(edges)

    def least_loaded(candidates: Iterable[int]) -> int:
        return min(candidates, key=lambda p: (load[p], p))

    def under_capacity(candidates: Set[int]) -> Set[int]:
        return {p for p in candidates if load[p] + 1 <= capacity}

    for index in _shuffled_order(len(edges), seed):
        src, dst = edges[index]
        a_u = replicas.get(src, set())
        a_v = replicas.get(dst, set())
        inter = under_capacity(a_u & a_v)
        union = under_capacity(a_u | a_v)
        if inter:
            chosen = least_loaded(inter)
        elif union:
            chosen = least_loaded(union)
        else:
            chosen = least_loaded(range(parts))
        assignment[index] = chosen
        load[chosen] += 1
        replicas.setdefault(src, set()).add(chosen)
        replicas.setdefault(dst, set()).add(chosen)

    return _finalize(parts, edges, assignment)
