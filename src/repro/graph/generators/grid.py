"""Regular 2-D grid generator.

Grids are the canonical *regular* workload: every vertex has (almost) the
same degree, so they serve as the balanced counterpoint to power-law
graphs in the partitioning ablation.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.errors import GenerationError
from repro.graph.graph import Graph


def grid_graph(rows: int, cols: int, bidirectional: bool = True) -> Graph:
    """A ``rows x cols`` lattice; vertex ``(r, c)`` has id ``r * cols + c``.

    Each vertex connects to its right and down neighbors; with
    ``bidirectional`` the reverse edges are added too (4-neighborhood).
    """
    if rows <= 0 or cols <= 0:
        raise GenerationError(f"grid dimensions must be positive: {rows}x{cols}")

    def gen() -> Iterator[Tuple[int, int]]:
        for r in range(rows):
            for c in range(cols):
                v = r * cols + c
                if c + 1 < cols:
                    yield (v, v + 1)
                    if bidirectional:
                        yield (v + 1, v)
                if r + 1 < rows:
                    yield (v, v + cols)
                    if bidirectional:
                        yield (v + cols, v)

    return Graph(rows * cols, gen())
