"""Uniform (Erdos-Renyi style) random graph generator."""

from __future__ import annotations

import random

from repro.errors import GenerationError
from repro.graph.graph import Graph


def uniform_random_graph(num_vertices: int, num_edges: int, seed: int = 42) -> Graph:
    """A directed G(n, m) graph with edges sampled uniformly without repeat.

    Self-loops are excluded.  Raises when ``num_edges`` exceeds the number
    of possible directed edges.
    """
    if num_vertices <= 0:
        raise GenerationError(f"need at least one vertex, got {num_vertices}")
    if num_edges < 0:
        raise GenerationError(f"negative edge count: {num_edges}")
    max_edges = num_vertices * (num_vertices - 1)
    if num_edges > max_edges:
        raise GenerationError(
            f"{num_edges} edges impossible: max is {max_edges} "
            f"for {num_vertices} vertices"
        )
    rng = random.Random(seed)
    edges: set = set()
    # Dense requests enumerate and sample; sparse requests rejection-sample.
    if num_edges > max_edges // 2:
        all_edges = [
            (s, t)
            for s in range(num_vertices)
            for t in range(num_vertices)
            if s != t
        ]
        chosen = rng.sample(all_edges, num_edges)
        return Graph(num_vertices, chosen)
    while len(edges) < num_edges:
        s = rng.randrange(num_vertices)
        t = rng.randrange(num_vertices)
        if s != t:
            edges.add((s, t))
    return Graph(num_vertices, sorted(edges))
