"""R-MAT / stochastic Kronecker graph generator.

R-MAT is the generator behind Graph500 and many graph-processing papers;
it produces skewed, community-ish graphs from four quadrant probabilities.
"""

from __future__ import annotations

import random

from repro.errors import GenerationError
from repro.graph.graph import Graph


def rmat_graph(
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 42,
) -> Graph:
    """An R-MAT graph with ``2**scale`` vertices, ``edge_factor * n`` edges.

    ``a``, ``b``, ``c`` are the upper-left, upper-right and lower-left
    quadrant probabilities; the lower-right gets the remainder.  Duplicate
    edges and self-loops are dropped, so the realized edge count is
    slightly below the nominal one — as in Graph500 itself.
    """
    if scale < 0:
        raise GenerationError(f"negative scale: {scale}")
    if edge_factor < 0:
        raise GenerationError(f"negative edge factor: {edge_factor}")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0 or a + b + c > 1.0 + 1e-12:
        raise GenerationError(
            f"quadrant probabilities invalid: a={a}, b={b}, c={c}"
        )
    n = 1 << scale
    target = edge_factor * n
    rng = random.Random(seed)
    edges: set = set()
    for _ in range(target):
        src = dst = 0
        for _level in range(scale):
            r = rng.random()
            src <<= 1
            dst <<= 1
            if r < a:
                pass
            elif r < a + b:
                dst |= 1
            elif r < a + b + c:
                src |= 1
            else:
                src |= 1
                dst |= 1
        if src != dst:
            edges.add((src, dst))
    return Graph(n, sorted(edges))
