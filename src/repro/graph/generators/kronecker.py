"""R-MAT / stochastic Kronecker graph generator.

R-MAT is the generator behind Graph500 and many graph-processing papers;
it produces skewed, community-ish graphs from four quadrant probabilities.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.errors import GenerationError
from repro.graph.graph import Graph


def rmat_edges(
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 42,
) -> List[Tuple[int, int]]:
    """The raw R-MAT edge stream: ``edge_factor * 2**scale`` samples.

    Returns the samples in generation order, duplicates and self-loops
    included — the stream a Graph500-style generator kernel hands to
    the rest of a pipeline.  :func:`rmat_graph` (and PRPB's build
    kernel) drop self-loops and collapse duplicates downstream.
    """
    if scale < 0:
        raise GenerationError(f"negative scale: {scale}")
    if edge_factor < 0:
        raise GenerationError(f"negative edge factor: {edge_factor}")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0 or a + b + c > 1.0 + 1e-12:
        raise GenerationError(
            f"quadrant probabilities invalid: a={a}, b={b}, c={c}"
        )
    target = edge_factor * (1 << scale)
    rng = random.Random(seed)
    edges: List[Tuple[int, int]] = []
    for _ in range(target):
        src = dst = 0
        for _level in range(scale):
            r = rng.random()
            src <<= 1
            dst <<= 1
            if r < a:
                pass
            elif r < a + b:
                dst |= 1
            elif r < a + b + c:
                src |= 1
            else:
                src |= 1
                dst |= 1
        edges.append((src, dst))
    return edges


def rmat_graph(
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 42,
) -> Graph:
    """An R-MAT graph with ``2**scale`` vertices, ``edge_factor * n`` edges.

    ``a``, ``b``, ``c`` are the upper-left, upper-right and lower-left
    quadrant probabilities; the lower-right gets the remainder.  Duplicate
    edges and self-loops are dropped, so the realized edge count is
    slightly below the nominal one — as in Graph500 itself.
    """
    stream = rmat_edges(scale, edge_factor, a, b, c, seed)
    edges = {(src, dst) for src, dst in stream if src != dst}
    return Graph(1 << scale, sorted(edges))
