"""Synthetic graph generators.

The paper's dataset is ``dg1000``, produced by LDBC Datagen [Erling et al.,
SIGMOD'15].  :mod:`repro.graph.generators.datagen` provides a deterministic
Datagen-like social-network generator (power-law degrees plus community
structure); the other modules supply the standard families used by the
ablation benchmarks.
"""

from repro.graph.generators.datagen import datagen_graph
from repro.graph.generators.powerlaw import powerlaw_graph
from repro.graph.generators.random_uniform import uniform_random_graph
from repro.graph.generators.grid import grid_graph
from repro.graph.generators.kronecker import rmat_graph

__all__ = [
    "datagen_graph",
    "powerlaw_graph",
    "uniform_random_graph",
    "grid_graph",
    "rmat_graph",
]
