"""Chung-Lu power-law graph generator.

PowerGraph (Table 1) targets "real-world graphs which have a skewed
power-law degree distribution"; this generator produces exactly that
family.  Expected degrees follow a Zipf law with exponent ``alpha``.
"""

from __future__ import annotations

import random
from typing import List

from repro.errors import GenerationError
from repro.graph.graph import Graph


def _zipf_weights(n: int, alpha: float) -> List[float]:
    """Weights w_i = (i + 1)^(-alpha), i = 0..n-1."""
    return [(i + 1) ** (-alpha) for i in range(n)]


def powerlaw_graph(
    num_vertices: int,
    num_edges: int,
    alpha: float = 0.6,
    seed: int = 42,
) -> Graph:
    """A directed Chung-Lu graph with Zipf(alpha) expected degrees.

    Endpoints are sampled proportionally to vertex weight
    ``(i + 1) ** -alpha``, so low-index vertices become high-degree hubs.
    The heavy-tailed-yet-connected regime used by graph benchmarks is
    ``alpha`` around 0.5-0.8 (a weight exponent of ``1 / (beta - 1)`` for
    a degree power law with exponent ``beta``); values near or above 1
    concentrate almost all mass on a handful of vertices and are only
    useful for stress-testing skew.  Duplicate edges are retried a bounded
    number of times; the result may carry slightly fewer than
    ``num_edges`` edges on dense or extremely skewed requests.
    """
    if num_vertices <= 0:
        raise GenerationError(f"need at least one vertex, got {num_vertices}")
    if num_edges < 0:
        raise GenerationError(f"negative edge count: {num_edges}")
    if alpha <= 0:
        raise GenerationError(f"alpha must be positive, got {alpha}")
    max_edges = num_vertices * num_vertices
    if num_edges > max_edges:
        raise GenerationError(
            f"{num_edges} edges impossible with {num_vertices} vertices"
        )
    rng = random.Random(seed)
    weights = _zipf_weights(num_vertices, alpha)
    population = range(num_vertices)
    edges: set = set()
    attempts = 0
    max_attempts = 20 * num_edges + 100
    while len(edges) < num_edges and attempts < max_attempts:
        batch = max(1, num_edges - len(edges))
        sources = rng.choices(population, weights=weights, k=batch)
        targets = rng.choices(population, weights=weights, k=batch)
        for s, t in zip(sources, targets):
            if s != t:
                edges.add((s, t))
        attempts += batch
    return Graph(num_vertices, sorted(edges))
