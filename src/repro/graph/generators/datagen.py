"""LDBC-Datagen-like social network generator.

The paper's dataset ``dg1000`` is produced by LDBC Datagen [Erling et al.,
SIGMOD'15]: a social network whose "knows" graph has (a) a skewed,
power-law-like degree distribution, (b) strong community structure, and
(c) small-world distances (BFS from a typical person reaches most of the
network within ~6-8 hops).  We reproduce those structural properties with
a deterministic generator:

1. Persons are grouped into communities with power-law-distributed sizes.
2. Each person draws a target degree from a Zipf distribution.
3. A fraction ``p_intra`` of each person's edges stay inside the
   community (degree-biased choice); the rest go to degree-biased global
   targets, which both creates hubs and keeps the diameter small.
4. A community-spanning ring guarantees weak connectivity, mirroring how
   Datagen's universities/cities thread communities together.

Property (c) is what makes BFS show the paper's Figure 8 shape: frontier
size peaks in the middle supersteps (Compute-4 of ~8).
"""

from __future__ import annotations

import random
from typing import List

import numpy as np

from repro.errors import GenerationError
from repro.graph.graph import Graph


def _community_sizes(num_vertices: int, avg_size: int, rng: random.Random) -> List[int]:
    """Power-law-ish community sizes summing to ``num_vertices``."""
    sizes: List[int] = []
    remaining = num_vertices
    while remaining > 0:
        # Pareto-like draw, clamped to [2, 8 * avg_size].
        draw = int(avg_size * (rng.paretovariate(1.6)))
        size = max(2, min(draw, 8 * avg_size, remaining))
        # Avoid a trailing singleton community.
        if remaining - size == 1:
            size = remaining
        sizes.append(size)
        remaining -= size
    return sizes


def datagen_graph(
    num_vertices: int,
    avg_degree: int = 10,
    p_intra: float = 0.7,
    community_size: int = 50,
    degree_alpha: float = 0.65,
    max_degree: int = 0,
    seed: int = 42,
) -> Graph:
    """Generate a Datagen-like directed social graph.

    Args:
        num_vertices: number of persons.
        avg_degree: average out-degree of the "knows" edges.
        p_intra: fraction of a person's edges kept inside their community.
        community_size: average community size.
        degree_alpha: Zipf exponent of the degree-weight sequence (larger
            means more skew; the heavy-tail regime is ``alpha < 1``).
        max_degree: cap on any single vertex's target out-degree; 0 means
            "choose automatically" (a few percent of n, like real social
            networks where even celebrities know a bounded fraction).
        seed: RNG seed; the result is fully deterministic.

    Returns:
        A weakly connected directed :class:`~repro.graph.graph.Graph`.
    """
    if num_vertices < 2:
        raise GenerationError(f"need at least two vertices, got {num_vertices}")
    if avg_degree <= 0:
        raise GenerationError(f"avg_degree must be positive, got {avg_degree}")
    if not (0.0 <= p_intra <= 1.0):
        raise GenerationError(f"p_intra must lie in [0, 1], got {p_intra}")
    if community_size < 2:
        raise GenerationError(f"community_size must be >= 2, got {community_size}")
    if max_degree < 0:
        raise GenerationError(f"negative max_degree: {max_degree}")
    if not max_degree:
        max_degree = max(4 * avg_degree, int(2 * num_vertices ** 0.5))
    max_degree = min(max_degree, num_vertices - 1)
    rng = random.Random(seed)

    sizes = _community_sizes(num_vertices, community_size, rng)
    community_of: List[int] = []
    members: List[List[int]] = []
    v = 0
    for cid, size in enumerate(sizes):
        block = list(range(v, v + size))
        members.append(block)
        community_of.extend([cid] * size)
        v += size

    # Target degrees: Zipf over a random permutation so hubs are spread
    # across communities (as Datagen's celebrities are).
    perm = list(range(num_vertices))
    rng.shuffle(perm)
    raw = [(rank + 1) ** (-degree_alpha) for rank in range(num_vertices)]
    total_raw = sum(raw)
    scale = avg_degree * num_vertices / total_raw
    degree_of = [0] * num_vertices
    for rank, vertex in enumerate(perm):
        degree_of[vertex] = min(max_degree, max(1, int(round(raw[rank] * scale))))

    # Global degree-biased target pool: vertices appear proportionally to
    # their target degree, giving preferential attachment for inter-
    # community edges.
    global_pool: List[int] = []
    stride = max(1, num_vertices // 100_000)
    for vertex in range(0, num_vertices, stride):
        global_pool.extend([vertex] * min(degree_of[vertex], 50))
    if not global_pool:
        global_pool = list(range(num_vertices))

    # Edges live in a set of packed ``(src << 32) | dst`` keys: membership
    # tests and the final sort see exactly the same (src, dst) order as
    # tuples would, at a fraction of the hashing cost.
    edges: set = set()
    add_edge = edges.add
    randrange = rng.randrange
    pool_size = len(global_pool)
    for src in range(num_vertices):
        want = degree_of[src]
        local = members[community_of[src]]
        local_size = len(local)
        n_intra = int(round(want * p_intra)) if local_size > 1 else 0
        n_inter = want - n_intra
        src_key = src << 32
        tries = 0
        limit = 6 * want + 12
        while n_intra > 0 and tries < limit:
            dst = local[randrange(local_size)]
            tries += 1
            if dst != src and (src_key | dst) not in edges:
                add_edge(src_key | dst)
                n_intra -= 1
        tries = 0
        while n_inter > 0 and tries < limit:
            dst = global_pool[randrange(pool_size)]
            tries += 1
            if dst != src and (src_key | dst) not in edges:
                add_edge(src_key | dst)
                n_inter -= 1

    # Connectivity ring across communities (one edge each way between the
    # first members of consecutive communities).
    for cid in range(len(members)):
        a = members[cid][0]
        b = members[(cid + 1) % len(members)][0]
        if a != b:
            add_edge((a << 32) | b)
            add_edge((b << 32) | a)

    packed = np.fromiter(edges, dtype=np.int64, count=len(edges))
    packed.sort()
    return Graph.from_edge_arrays(
        num_vertices, packed >> 32, packed & 0xFFFFFFFF
    )
