"""Compressed sparse row (CSR) representation.

Table 1 lists CSR as the data format of PGX.D, OpenG and TOTEM; the GAS
engine also finalizes its loaded edge lists into CSR before processing.
Backed by numpy arrays for compactness.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.graph import Graph


class CsrGraph:
    """Directed graph in CSR form: ``indptr`` (n+1) and ``indices`` (m).

    Out-neighbors of vertex ``v`` are
    ``indices[indptr[v]:indptr[v+1]]``, sorted ascending.
    """

    def __init__(self, indptr: np.ndarray, indices: np.ndarray):
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise GraphError("indptr and indices must be one-dimensional")
        if len(indptr) == 0 or indptr[0] != 0:
            raise GraphError("indptr must start with 0")
        if indptr[-1] != len(indices):
            raise GraphError(
                f"indptr ends at {indptr[-1]} but there are {len(indices)} indices"
            )
        if np.any(np.diff(indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        n = len(indptr) - 1
        if len(indices) and (indices.min() < 0 or indices.max() >= n):
            raise GraphError("indices out of vertex range")
        self.indptr = indptr
        self.indices = indices

    @classmethod
    def from_graph(cls, graph: Graph) -> "CsrGraph":
        """Convert an adjacency :class:`Graph` into CSR.

        Vectorized: degree counting and prefix sums run as array ops and
        the adjacency lists are copied with one bulk ``fromiter`` pass.
        """
        n = graph.num_vertices
        adjacency = [graph.out_neighbors(v) for v in range(n)]
        degrees = np.fromiter(map(len, adjacency), dtype=np.int64, count=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        indices = np.fromiter(
            itertools.chain.from_iterable(adjacency),
            dtype=np.int64,
            count=graph.num_edges,
        )
        return cls(indptr, indices)

    @classmethod
    def from_edges(cls, num_vertices: int, edges) -> "CsrGraph":
        """CSR directly from (src, dst) pairs, without an adjacency Graph.

        Accepts any iterable of pairs or an ``(m, 2)``/two-column array.
        Parallel edges are collapsed and neighbors sorted ascending,
        matching :class:`~repro.graph.graph.Graph` semantics.
        """
        if num_vertices < 0:
            raise GraphError(f"negative vertex count: {num_vertices}")
        pairs = np.asarray(
            edges if isinstance(edges, np.ndarray) else list(edges),
            dtype=np.int64,
        )
        if pairs.size == 0:
            return cls(np.zeros(num_vertices + 1, dtype=np.int64),
                       np.empty(0, dtype=np.int64))
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise GraphError("edges must be (src, dst) pairs")
        src, dst = pairs[:, 0], pairs[:, 1]
        bad = (src < 0) | (src >= num_vertices) | (dst < 0) | (dst >= num_vertices)
        if bad.any():
            i = int(np.flatnonzero(bad)[0])
            raise GraphError(
                f"edge ({int(src[i])}, {int(dst[i])}) out of range "
                f"for {num_vertices} vertices"
            )
        key = np.unique(src * np.int64(num_vertices) + dst)
        u_src = key // num_vertices
        indptr = np.zeros(num_vertices + 1, dtype=np.int64)
        np.cumsum(np.bincount(u_src, minlength=num_vertices), out=indptr[1:])
        return cls(indptr, key % num_vertices)

    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return len(self.indices)

    def out_neighbors(self, v: int) -> np.ndarray:
        """Out-neighbors of ``v`` as a numpy view."""
        if not (0 <= v < self.num_vertices):
            raise GraphError(f"vertex {v} out of range [0, {self.num_vertices})")
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    def out_degree(self, v: int) -> int:
        """Number of out-edges of ``v``."""
        if not (0 <= v < self.num_vertices):
            raise GraphError(f"vertex {v} out of range [0, {self.num_vertices})")
        return int(self.indptr[v + 1] - self.indptr[v])

    def out_degrees(self) -> np.ndarray:
        """Vector of all out-degrees."""
        return np.diff(self.indptr)

    def edges(self) -> Iterator[Tuple[int, int]]:
        """All (src, dst) pairs, sorted by src then dst."""
        for v in range(self.num_vertices):
            for dst in self.out_neighbors(v):
                yield (v, int(dst))

    def to_graph(self) -> Graph:
        """Convert back into an adjacency :class:`Graph`."""
        return Graph(self.num_vertices, self.edges())

    def nbytes(self) -> int:
        """Memory footprint of the two index arrays."""
        return int(self.indptr.nbytes + self.indices.nbytes)

    def __repr__(self) -> str:
        return f"CsrGraph(n={self.num_vertices}, m={self.num_edges})"
