#!/usr/bin/env python
"""A Graphalytics-style benchmark sweep under Granula.

Runs the full algorithm suite (BFS, PageRank, WCC, SSSP, CDLP, LCC) on
both specialized platform engines over one dataset, validates every
output against the single-node references, and prints the comparable
domain-level metrics (Ts/Td/Tp) for every run — the coarse-grained
benchmarking view the paper's companion project (LDBC Graphalytics)
produces, with Granula's archives behind each number for drill-down.
"""

from repro.core.comparison import domain_metrics
from repro.core.visualize.render_text import table
from repro.graph.algorithms import (
    bfs_levels,
    label_propagation,
    local_clustering_coefficient,
    pagerank,
    sssp_distances,
    weakly_connected_components,
)
from repro.graph.validate import compare_exact, compare_numeric
from repro.workloads import WorkloadRunner, WorkloadSpec
from repro.workloads.datasets import DATASETS, build_dataset

DATASET = "dg100-scaled"

ALGORITHMS = {
    "bfs": ({"source": None}, bfs_levels, compare_exact),
    "pagerank": ({"iterations": 10},
                 lambda g, **kw: pagerank(g, iterations=10),
                 compare_numeric),
    "wcc": ({}, lambda g, **kw: weakly_connected_components(g),
            compare_exact),
    "sssp": ({"source": None}, sssp_distances, compare_numeric),
    "cdlp": ({"iterations": 5},
             lambda g, **kw: label_propagation(g, 5), compare_exact),
    "lcc": ({}, lambda g, **kw: local_clustering_coefficient(g),
            compare_numeric),
}


def reference_for(name, graph, source):
    params, fn, compare = ALGORITHMS[name]
    if "source" in params:
        return fn(graph, source), compare
    return fn(graph), compare


def main() -> None:
    graph = build_dataset(DATASET)
    source = DATASETS[DATASET].bfs_source
    runner = WorkloadRunner()

    suites = {
        "Giraph": list(ALGORITHMS),
        "PowerGraph": list(ALGORITHMS),
        # The PGX.D engine implements the traversal/ranking subset.
        "PGX.D": ["bfs", "pagerank", "wcc", "sssp"],
    }
    rows = []
    for platform, algorithms in suites.items():
        for name in algorithms:
            params, _fn, _cmp = ALGORITHMS[name]
            job_params = {k: v for k, v in params.items() if v is not None}
            spec = WorkloadSpec(platform, name, DATASET, workers=8,
                                params=job_params)
            iteration = runner.run(spec)
            expected, compare = reference_for(name, graph, source)
            report = compare(expected, iteration.run.result.output)
            metrics = domain_metrics(iteration.archive)
            rows.append((
                platform, name,
                f"{metrics.total_s:.1f}s",
                f"{metrics.setup_s:.1f}s",
                f"{metrics.io_s:.1f}s",
                f"{metrics.processing_s:.1f}s",
                "ok" if report.ok else "MISMATCH",
            ))
            print(f"ran {spec.label()}: {report.summary()}")

    print()
    print(table(
        ("Platform", "Algorithm", "Total", "Ts", "Td", "Tp", "Validated"),
        rows,
    ))


if __name__ == "__main__":
    main()
