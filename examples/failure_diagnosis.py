#!/usr/bin/env python
"""Failure diagnosis and performance regression testing (future work).

Runs a healthy Giraph BFS job as the baseline, then the same job with two
injected faults — a 2.2x-slow node and a worker crash at superstep 3 —
and shows what Granula's analyses see:

- choke-point analysis of the healthy run,
- failure diagnosis of the faulty run (recovery event + straggler, with
  the guilty node named),
- a regression report comparing the two archives, as a CI performance
  gate would,
- a scheduled fault plan mixing every transient fault type (container
  launch failure, HDFS block-read error, flaky disk, degraded link,
  checkpointed worker crash), with the recovery cost attributed per
  mechanism.
"""

from repro import GiraphPlatform, JobRequest, MonitoringSession, build_archive
from repro.core.analysis import (
    compare_archives,
    diagnose,
    find_choke_points,
    recovery_overhead,
)
from repro.core.analysis.chokepoint import render_choke_points
from repro.core.analysis.diagnosis import render_findings
from repro.core.model import giraph_model
from repro.platforms.faults import (
    ContainerLaunchFailure,
    DegradedLink,
    FaultPlan,
    HdfsReadError,
    SlowDisk,
    WorkerCrash,
)
from repro.workloads.datasets import build_dataset
from repro.workloads.runner import build_cluster


def main() -> None:
    dataset = "dg100-scaled"
    platform = GiraphPlatform(build_cluster("Giraph"))
    platform.deploy_dataset(dataset, build_dataset(dataset))
    session = MonitoringSession(platform)
    model = giraph_model()
    request = JobRequest("bfs", dataset, 8, params={"source": 0},
                         job_id="baseline")

    # --- Healthy baseline --------------------------------------------------
    baseline_run = session.run(request)
    baseline, _ = build_archive(baseline_run, model)
    print("choke points of the healthy run:")
    print(render_choke_points(find_choke_points(baseline)))

    # --- Faulty run ----------------------------------------------------------
    slow_node = platform.cluster.node_names[2]
    platform.inject_faults(FaultPlan(
        slow_nodes={slow_node: 2.2},
        crash_worker=4,
        crash_superstep=3,
    ))
    faulty_run = session.run(JobRequest(
        "bfs", dataset, 8, params={"source": 0}, job_id="faulty"))
    platform.inject_faults(None)
    faulty, _ = build_archive(faulty_run, model)

    print(f"\ninjected: {slow_node} slowed 2.2x; Worker-5 crashed at "
          f"superstep 3")
    print("output still correct:",
          faulty_run.result.output == baseline_run.result.output)

    print("\ndiagnosis of the faulty run:")
    findings = diagnose(faulty)
    print(render_findings([f for f in findings
                           if f.severity == "critical"]))

    # --- Regression gate -----------------------------------------------------
    print("\nregression report (what a CI perf gate would evaluate):")
    report = compare_archives(baseline, faulty)
    print(report.render_text(top_n=5))
    print("\ngate verdict:", "FAIL (regressed)" if not report.ok else "pass")

    # --- Scheduled fault plan: every transient fault type --------------------
    nodes = platform.cluster.node_names
    plan = FaultPlan(
        events=(
            ContainerLaunchFailure(nodes[3], failures=1),
            HdfsReadError(nodes[0], blocks=1),
            SlowDisk(nodes[1], factor=2.0),
            DegradedLink(nodes[6], factor=1.8),
            WorkerCrash(worker=2, superstep=2),
        ),
        checkpoint_interval=2,
        seed=42,
    )
    print(f"\nscheduled fault plan {plan.signature()} "
          f"({len(plan.events)} events, checkpoints every "
          f"{plan.interval()} supersteps):")
    platform.inject_faults(plan)
    chaos_run = session.run(JobRequest(
        "bfs", dataset, 8, params={"source": 0}, job_id="chaos"))
    platform.inject_faults(None)
    chaos, _ = build_archive(chaos_run, model)
    print("output still correct:",
          chaos_run.result.output == baseline_run.result.output)
    print(render_findings([f for f in diagnose(chaos)
                           if f.kind == "recovery"]))
    overhead = recovery_overhead(chaos)
    print("recovery overhead by mechanism:")
    for mission, seconds in sorted(overhead.items()):
        if mission in ("total", "share"):
            continue
        print(f"  {mission:<24} {seconds:7.2f}s")
    print(f"  {'total':<24} {overhead['total']:7.2f}s "
          f"({overhead['share'] * 100:.1f}% of the makespan)")


if __name__ == "__main__":
    main()
