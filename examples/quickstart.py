#!/usr/bin/env python
"""Quickstart: fine-grained analysis of one Giraph BFS job.

Runs BFS on a scaled Datagen graph under full Granula monitoring, builds
the performance archive against the 4-level Giraph model, and prints the
domain-level decomposition (the paper's Figure 5 view) plus the slowest
fine-grained operations.
"""

from repro import EvaluationProcess, GiraphPlatform, JobRequest
from repro.core.archive import ArchiveQuery
from repro.core.model import giraph_model
from repro.workloads.datasets import DATASETS, build_dataset
from repro.workloads.runner import build_cluster


def main() -> None:
    dataset = "dg100-scaled"

    # 1. Build an 8-node DAS5-like cluster and deploy the dataset on it.
    platform = GiraphPlatform(build_cluster("Giraph"))
    platform.deploy_dataset(dataset, build_dataset(dataset))

    # 2. Drive one evaluation iteration: model -> monitor -> archive ->
    #    visualize (the paper's Figure 2 loop).
    process = EvaluationProcess(platform, giraph_model())
    iteration = process.iterate(
        JobRequest(algorithm="bfs", dataset=dataset, workers=8,
                   params={"source": DATASETS[dataset].bfs_source})
    )

    # 3. The domain-level job decomposition (Figure 5).
    print(iteration.breakdown.render_text())
    print()

    # 4. Drill down: query the archive for the slowest operations.
    query = ArchiveQuery(iteration.archive)
    print("slowest fine-grained operations:")
    for op in query.where(lambda o: not o.children).top("Duration", 5):
        print(f"  {op.path} @ {op.actor}: {op.duration:.2f}s")

    # 5. The per-worker superstep view (Figure 8).
    if iteration.gantt is not None:
        print()
        print(iteration.gantt.render_text())


if __name__ == "__main__":
    main()
