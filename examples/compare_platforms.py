#!/usr/bin/env python
"""The paper's headline experiment: Giraph vs PowerGraph, BFS on dg1000.

Runs the same BFS workload on both platform engines, prints the Figure 5
decomposition side by side, reproduces the Figures 6-7 utilization
observations, and writes a self-contained HTML report with all visuals.

Run with ``--fast`` to use the smaller dg100-scaled replica.
"""

import sys

from repro.core.visualize.render_html import render_report_html
from repro.workloads import WorkloadRunner, WorkloadSpec


def main(fast: bool = False) -> None:
    dataset = "dg100-scaled" if fast else "dg1000-scaled"
    runner = WorkloadRunner()

    results = {}
    for platform in ("Giraph", "PowerGraph"):
        spec = WorkloadSpec(platform, "bfs", dataset, workers=8)
        print(f"running {spec.label()} ...")
        results[platform] = runner.run(spec)

    print()
    for platform, iteration in results.items():
        print(iteration.breakdown.render_text())
        print()

    # The Section 3.4 cross-platform metrics (Ts/Td/Tp) side by side.
    from repro.core.comparison import compare_platforms
    comparison = compare_platforms(
        [results["Giraph"].archive, results["PowerGraph"].archive])
    print(comparison.render_text())
    print()

    ratio = comparison.speedup("total_s")["PowerGraph"]
    print(f"PowerGraph total runtime is {ratio:.1f}x Giraph's, yet its")
    print("processing phase is faster — the difference is the sequential")
    print("data loading visible in its utilization chart:")
    print()
    print(results["PowerGraph"].utilization.render_text())

    report = render_report_html(
        [results["Giraph"].archive, results["PowerGraph"].archive],
        title=f"Giraph vs PowerGraph — BFS on {dataset}",
    )
    out = "comparison_report.html"
    with open(out, "w") as handle:
        handle.write(report)
    print(f"\nHTML report written to {out}")


if __name__ == "__main__":
    main(fast="--fast" in sys.argv[1:])
