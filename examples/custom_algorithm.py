#!/usr/bin/env python
"""Extending the system: a custom Pregel algorithm under Granula analysis.

Implements *k-hop reachability counting* (how many vertices lie within k
hops of a source) as a new vertex program, registers it with a small
wrapper platform, runs it under monitoring, and stores the archive in an
ArchiveStore next to a PageRank run for cross-job comparison — the
"shareable performance results" workflow of the paper.
"""

import tempfile
from typing import List

from repro import (
    ArchiveQuery,
    ArchiveStore,
    GiraphPlatform,
    JobRequest,
    MonitoringSession,
    build_archive,
)
from repro.core.model import giraph_model
from repro.platforms.pregel.api import VertexContext, VertexProgram
from repro.platforms.pregel import algorithms as pregel_algorithms
from repro.workloads.datasets import build_dataset
from repro.workloads.runner import build_cluster


class KHopProgram(VertexProgram):
    """Marks every vertex within ``k`` hops of ``source`` (1) or not (0)."""

    combiner = staticmethod(max)

    def __init__(self, source: int, k: int):
        self.source = source
        self.k = k
        self.max_supersteps = k + 1

    def initial_value(self, vertex: int, ctx: VertexContext) -> int:
        return 0

    def compute(self, vertex: int, value: int, messages: List[int],
                ctx: VertexContext) -> int:
        if ctx.superstep == 0:
            if vertex == self.source:
                value = 1
                ctx.send_message_to_out_neighbors(1)
        elif value == 0 and messages:
            value = 1
            if ctx.superstep < self.k:
                ctx.send_message_to_out_neighbors(1)
        ctx.vote_to_halt()
        return value


def install_khop() -> None:
    """Register 'khop' with the Pregel program factory."""
    original = pregel_algorithms.make_pregel_program

    def factory(algorithm, params, graph):
        if algorithm == "khop":
            return KHopProgram(params.get("source", 0), params.get("k", 3))
        return original(algorithm, params, graph)

    # The engine resolves programs through this module attribute.
    import repro.platforms.pregel.engine as engine_module
    engine_module.make_pregel_program = factory


def main() -> None:
    install_khop()
    dataset = "dg100-scaled"
    platform = GiraphPlatform(build_cluster("Giraph"))
    platform.deploy_dataset(dataset, build_dataset(dataset))
    session = MonitoringSession(platform)
    model = giraph_model()

    store_dir = tempfile.mkdtemp(prefix="granula-store-")
    store = ArchiveStore(store_dir)

    for algorithm, params in (
        ("khop", {"source": 0, "k": 3}),
        ("pagerank", {"iterations": 5}),
    ):
        run = session.run(JobRequest(
            algorithm=algorithm, dataset=dataset, workers=8, params=params,
        ))
        archive, _report = build_archive(run, model)
        store.save(archive)
        reached = sum(1 for v in run.result.output.values() if v == 1)
        extra = (f"(vertices within 3 hops: {reached})"
                 if algorithm == "khop" else "")
        print(f"{algorithm}: makespan {run.result.makespan:.2f}s, "
              f"{run.result.stats['supersteps']} supersteps {extra}")

    # Cross-job comparison straight from the store.
    print("\nper-job processing share (queried from stored archives):")
    for job_id in store.list():
        archive = store.load(job_id)
        process = ArchiveQuery(archive).mission("ProcessGraph").one()
        print(f"  {job_id}: ProcessGraph "
              f"{process.infos['ShareOfParent'] * 100:.1f}% of the run")
    print(f"\narchives stored under {store_dir}")


if __name__ == "__main__":
    main()
