#!/usr/bin/env python
"""Incremental evaluation (requirement R3): coarse to fine in three loops.

The analyst does not pay for fine-grained analysis up front.  Iteration 1
runs with only the domain-level model slice; its decomposition points at
ProcessGraph; iteration 2 deepens to the system level and exposes the
superstep structure; iteration 3 uses the full implementation-level model
and pinpoints the dominant Compute superstep and the barrier overhead.
The archive grows with the model depth — that growth is the cost the
analyst controls.
"""

from repro import EvaluationProcess, GiraphPlatform, JobRequest
from repro.core.archive import ArchiveQuery
from repro.core.model import giraph_model
from repro.workloads.datasets import DATASETS, build_dataset
from repro.workloads.runner import build_cluster


def main() -> None:
    dataset = "dg100-scaled"
    platform = GiraphPlatform(build_cluster("Giraph"))
    platform.deploy_dataset(dataset, build_dataset(dataset))
    process = EvaluationProcess(platform, giraph_model())
    request = JobRequest(
        algorithm="bfs", dataset=dataset, workers=8,
        params={"source": DATASETS[dataset].bfs_source},
    )

    # --- Iteration 1: domain level only ----------------------------------
    it1 = process.iterate(request, model_level=1)
    print("iteration 1 (domain level):")
    print(f"  model operations: {it1.model.size()}")
    print(f"  unmodeled operations seen in the log: "
          f"{len(it1.feedback)} -> {it1.feedback[:4]} ...")
    slowest = max(it1.breakdown.operations, key=lambda row: row[1])
    print(f"  slowest domain operation: {slowest[0]} "
          f"({slowest[2] * 100:.1f}% of the job)")

    # --- Iteration 2: deepen to the system level --------------------------
    it2 = process.iterate(request, model_level=2)
    supersteps = ArchiveQuery(it2.archive).mission("Superstep").operations()
    print("\niteration 2 (system level):")
    print(f"  model operations: {it2.model.size()}")
    print(f"  supersteps observed: {len(supersteps)}; slowest: "
          + max(supersteps, key=lambda op: op.duration or 0).mission)

    # --- Iteration 3: the full implementation-level model -----------------
    it3 = process.iterate(request)
    print("\niteration 3 (implementation level):")
    print(f"  model operations: {it3.model.size()}")
    print(f"  unmodeled operations remaining: {len(it3.feedback)}")
    gantt = it3.gantt
    dominant = gantt.dominant_superstep()
    print(f"  dominant compute superstep: Compute-{dominant} "
          f"(worker imbalance {gantt.imbalance(dominant):.2f}, "
          f"sync overhead {gantt.overhead_fraction() * 100:.1f}%)")

    print("\narchive size per iteration (the coarse/fine cost trade-off):")
    for iteration in (it1, it2, it3):
        print(f"  iteration {iteration.index}: "
              f"{iteration.archive.size()} archived operations")


if __name__ == "__main__":
    main()
