"""Repo-wide pytest configuration.

Redirects the artifact cache into a per-session temporary directory so
test runs neither read nor pollute the developer's ``~/.cache/granula``.
CI can pre-set ``GRANULA_CACHE_DIR`` to persist the cache across runs
(the pipeline-bench job does); an explicit setting always wins.
"""

from __future__ import annotations

import os

import pytest

from repro.cache import CACHE_DIR_ENV


@pytest.fixture(scope="session", autouse=True)
def _hermetic_artifact_cache(tmp_path_factory):
    if os.environ.get(CACHE_DIR_ENV):
        yield
        return
    cache_dir = tmp_path_factory.mktemp("granula-cache")
    os.environ[CACHE_DIR_ENV] = str(cache_dir)
    try:
        yield
    finally:
        os.environ.pop(CACHE_DIR_ENV, None)
