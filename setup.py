"""Setup shim for environments without the `wheel` package.

All real metadata lives in pyproject.toml; this file only enables
`pip install -e . --no-use-pep517` (legacy editable install).
"""

from setuptools import setup

setup()
