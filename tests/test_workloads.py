"""Tests for datasets, workload specs, runner, and sweeps."""

import pytest

from repro.errors import GraphError, ReproError
from repro.graph.algorithms.wcc import component_sizes
from repro.workloads.datasets import (
    DATASETS,
    build_dataset,
    clear_cache,
    dataset_spec,
)
from repro.workloads.runner import WorkloadRunner, build_cluster
from repro.workloads.spec import PAPER_WORKLOADS, WorkloadSpec
from repro.workloads.sweep import ParameterSweep


class TestDatasets:
    def test_known_datasets(self):
        assert {"dg-tiny", "dg100-scaled", "dg300-scaled",
                "dg1000-scaled"} <= set(DATASETS)

    def test_spec_lookup(self):
        spec = dataset_spec("dg-tiny")
        assert spec.num_vertices == 2000
        with pytest.raises(GraphError):
            dataset_spec("dg-unknown")

    def test_build_is_cached(self):
        a = build_dataset("dg-tiny")
        b = build_dataset("dg-tiny")
        assert a is b

    def test_clear_cache(self):
        a = build_dataset("dg-tiny")
        clear_cache()
        b = build_dataset("dg-tiny")
        assert a is not b
        assert a == b  # Deterministic regeneration.

    def test_tiny_dataset_connected(self):
        assert len(component_sizes(build_dataset("dg-tiny"))) == 1

    def test_bfs_source_in_range(self):
        for spec in DATASETS.values():
            assert 0 <= spec.bfs_source < spec.num_vertices


class TestWorkloadSpec:
    def test_valid_spec(self):
        spec = WorkloadSpec("Giraph", "bfs", "dg-tiny", workers=4)
        assert spec.label() == "giraph-bfs-dg-tiny-w4"

    def test_unknown_platform_rejected(self):
        with pytest.raises(ReproError):
            WorkloadSpec("Spark", "bfs", "dg-tiny")

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ReproError):
            WorkloadSpec("Giraph", "bfs", "nope")

    def test_nonpositive_workers_rejected(self):
        with pytest.raises(ReproError):
            WorkloadSpec("Giraph", "bfs", "dg-tiny", workers=0)

    def test_request_fills_canonical_source(self):
        spec = WorkloadSpec("Giraph", "bfs", "dg1000-scaled")
        request = spec.to_request()
        assert request.params["source"] == DATASETS["dg1000-scaled"].bfs_source

    def test_request_keeps_explicit_source(self):
        spec = WorkloadSpec("Giraph", "bfs", "dg-tiny",
                            params={"source": 7})
        assert spec.to_request().params["source"] == 7

    def test_paper_workloads(self):
        assert len(PAPER_WORKLOADS) == 2
        assert {w.platform for w in PAPER_WORKLOADS} == {
            "Giraph", "PowerGraph"}


class TestBuildCluster:
    def test_paper_node_names(self):
        giraph = build_cluster("Giraph")
        powergraph = build_cluster("PowerGraph")
        assert giraph.node_names[0] == "node340"
        assert powergraph.node_names[0] == "node309"

    def test_unknown_platform(self):
        with pytest.raises(ReproError):
            build_cluster("Spark")

    def test_extra_nodes_get_names(self):
        cluster = build_cluster("Giraph", n_nodes=10)
        assert cluster.size == 10


class TestWorkloadRunner:
    @pytest.fixture(scope="class")
    def runner(self):
        return WorkloadRunner()

    def test_run_memoized(self, runner):
        spec = WorkloadSpec("Giraph", "bfs", "dg-tiny", workers=4)
        a = runner.run(spec)
        b = runner.run(spec)
        assert a is b

    def test_fresh_bypasses_memo(self, runner):
        spec = WorkloadSpec("Giraph", "bfs", "dg-tiny", workers=4)
        a = runner.run(spec)
        b = runner.run(spec, fresh=True)
        assert a is not b
        assert a.run.result.makespan == b.run.result.makespan

    def test_platform_reused(self, runner):
        assert runner.platform("Giraph") is runner.platform("Giraph")

    def test_unknown_platform(self, runner):
        with pytest.raises(ReproError):
            runner.platform("Spark")

    def test_run_produces_full_iteration(self, runner):
        it = runner.run(WorkloadSpec("PowerGraph", "bfs", "dg-tiny",
                                     workers=4))
        assert it.breakdown.total > 0
        assert it.archive.platform == "PowerGraph"


class TestParameterSweep:
    def test_sweep_over_workers(self):
        sweep = ParameterSweep()
        base = WorkloadSpec("Giraph", "bfs", "dg-tiny", workers=2)
        results = sweep.run(base, "workers", [2, 4])
        assert [r.spec.workers for r in results] == [2, 4]
        for r in results:
            assert r.makespan > 0
            assert r.breakdown.total == pytest.approx(r.makespan)

    def test_sweep_unknown_dimension(self):
        sweep = ParameterSweep()
        base = WorkloadSpec("Giraph", "bfs", "dg-tiny")
        with pytest.raises(ReproError):
            sweep.run(base, "color", ["red"])

    def test_share_table_rows(self):
        sweep = ParameterSweep()
        base = WorkloadSpec("Giraph", "bfs", "dg-tiny", workers=2)
        results = sweep.run(base, "workers", [2, 3])
        rows = ParameterSweep.share_table(results, "workers")
        assert [row["workers"] for row in rows] == [2, 3]
        assert all("Processing share" in row for row in rows)
