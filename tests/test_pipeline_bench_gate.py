"""Perf-trajectory gate: metric extraction, comparison, baseline file.

The slow measurement itself lives in ``benchmarks/``; these tests
cover the deterministic gate logic and the committed repo baseline.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.pipeline_bench import (
    GATE_METRICS,
    baseline_document,
    compare_pipeline_bench,
    extract_metrics,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


def document(end_to_end=3.0, ingest=2.5, columnar=4.0, shm_ratio=1.2):
    return {
        "small": True,
        "end_to_end": {"speedup": end_to_end},
        "ingest_archive": {"speedup": ingest},
        "columnar_query": {"speedup": columnar},
        "fanout_rss": {"shm_pss_ratio_4v2": shm_ratio},
    }


class TestExtractMetrics:
    def test_pulls_every_gate_metric(self):
        metrics = extract_metrics(document())
        assert set(metrics) == set(GATE_METRICS)
        assert metrics["end_to_end_speedup"] == 3.0
        assert metrics["fanout_shm_pss_ratio_4v2"] == 1.2

    def test_skipped_sections_extract_as_none(self):
        doc = document()
        doc["columnar_query"] = {"skipped": "no sidecar"}
        doc["fanout_rss"] = {"skipped": "no fork"}
        metrics = extract_metrics(doc)
        assert metrics["columnar_query_speedup"] is None
        assert metrics["fanout_shm_pss_ratio_4v2"] is None


class TestCompare:
    def baseline(self, **kwargs):
        return baseline_document(document(**kwargs))

    def test_identical_run_passes(self):
        assert compare_pipeline_bench(self.baseline(), document()) == []

    def test_within_tolerance_passes(self):
        current = document(end_to_end=2.3)  # -23% vs 3.0, tolerance 25%
        assert compare_pipeline_bench(self.baseline(), current) == []

    def test_speedup_regression_fails(self):
        current = document(columnar=2.9)  # -27.5% vs 4.0
        messages = compare_pipeline_bench(self.baseline(), current)
        assert len(messages) == 1
        assert "columnar_query_speedup" in messages[0]

    def test_lower_is_better_metric_regression_fails(self):
        current = document(shm_ratio=1.9)  # +58% vs 1.2
        messages = compare_pipeline_bench(self.baseline(), current)
        assert len(messages) == 1
        assert "fanout_shm_pss_ratio_4v2" in messages[0]

    def test_improvements_never_fail(self):
        current = document(end_to_end=9.0, ingest=9.0, columnar=9.0,
                           shm_ratio=1.0)
        assert compare_pipeline_bench(self.baseline(), current) == []

    def test_unmeasured_metric_is_skipped(self):
        current = document()
        current["fanout_rss"] = {"skipped": "no fork"}
        assert compare_pipeline_bench(self.baseline(), current) == []
        baseline = self.baseline()
        baseline["metrics"]["columnar_query_speedup"] = None
        assert compare_pipeline_bench(baseline, document(columnar=0.1)) == []

    def test_explicit_tolerance_overrides_baseline(self):
        current = document(end_to_end=2.9)  # -3.3%
        assert compare_pipeline_bench(
            self.baseline(), current, tolerance=0.01)
        assert not compare_pipeline_bench(
            self.baseline(), current, tolerance=0.10)


class TestCommittedBaseline:
    def test_repo_baseline_is_complete(self):
        baseline = json.loads(
            (REPO_ROOT / "BENCH_pipeline.json").read_text())
        assert baseline["schema"] == 1
        assert set(baseline["metrics"]) == set(GATE_METRICS)
        for metric, value in baseline["metrics"].items():
            assert value is not None, f"{metric} missing from baseline"
        assert 0 < baseline["tolerance"] < 1

    def test_repo_baseline_meets_the_acceptance_floors(self):
        # The committed trajectory must itself satisfy the benchmark
        # suite's floors — a baseline below them would let CI pass
        # while the acceptance criteria fail.
        baseline = json.loads(
            (REPO_ROOT / "BENCH_pipeline.json").read_text())
        metrics = baseline["metrics"]
        assert metrics["columnar_query_speedup"] >= 2.0
        assert metrics["fanout_shm_pss_ratio_4v2"] <= 1.5


class TestBenchCliFlags:
    def test_parser_accepts_gate_flags(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(
            ["bench", "--small", "--gate", "--baseline", "B.json"])
        assert args.gate and not args.update_baseline
        assert args.baseline == "B.json"

    def test_gate_and_update_are_exclusive(self):
        from repro.cli import build_parser
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["bench", "--gate", "--update-baseline"])
