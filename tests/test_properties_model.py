"""Property-based tests on the model language and archive queries."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model.job import JobModel
from repro.core.model.operation import Multiplicity, OperationModel, split_iteration
from repro.core.model.serialize import model_from_json, model_to_json
from repro.core.model.validation import validate_model

_MISSIONS = [f"Op{c}" for c in "ABCDEFGHIJKLMNOP"]
_ACTORS = ["Master", "Worker", "Client", "Rank"]


@st.composite
def job_models(draw):
    """Random structurally valid job models."""
    used = iter(draw(st.permutations(_MISSIONS)))

    def build(level, depth):
        node = OperationModel(
            mission=next(used),
            actor_type=draw(st.sampled_from(_ACTORS)),
            level=level,
            multiplicity=draw(st.sampled_from(list(Multiplicity.ALL))),
        )
        if depth < 2:
            for _ in range(draw(st.integers(0, 2))):
                child_level = draw(st.integers(level, min(level + 1, 4)))
                node.add_child(build(child_level, depth + 1))
        return node

    root = build(1, 0)
    return JobModel("Rand", root)


class TestModelProperties:
    @given(job_models())
    @settings(max_examples=60, deadline=None)
    def test_generated_models_validate(self, model):
        assert validate_model(model, strict=False) == []

    @given(job_models())
    @settings(max_examples=60, deadline=None)
    def test_serialization_roundtrip(self, model):
        clone = model_from_json(model_to_json(model))
        assert clone.size() == model.size()
        for a, b in zip(model.walk(), clone.walk()):
            assert (a.mission, a.actor_type, a.level, a.multiplicity) == (
                b.mission, b.actor_type, b.level, b.multiplicity)

    @given(job_models(), st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_truncation_monotone_and_valid(self, model, level):
        truncated = model.truncated(level)
        assert truncated.size() <= model.size()
        assert truncated.max_level() <= max(level, 1)
        assert validate_model(truncated, strict=False) == []
        # Truncating deeper than the deepest level is the identity.
        assert model.truncated(4).size() == model.size()

    @given(job_models())
    @settings(max_examples=60, deadline=None)
    def test_walk_covers_index(self, model):
        walked = [n.mission for n in model.walk()]
        assert len(walked) == len(set(walked))  # Unique missions here.
        for mission in walked:
            assert model.has(mission)
            assert model.find(mission).mission == mission


class TestSplitIterationProperties:
    @given(st.sampled_from(_MISSIONS), st.integers(0, 10_000))
    @settings(max_examples=100, deadline=None)
    def test_split_inverts_join(self, base, index):
        assert split_iteration(f"{base}-{index}") == (base, index)

    @given(st.sampled_from(_MISSIONS))
    @settings(max_examples=20, deadline=None)
    def test_plain_names_pass_through(self, base):
        assert split_iteration(base) == (base, None)
