"""Unit tests for the reference algorithms."""

import math

import pytest

from repro.errors import GraphError
from repro.graph.algorithms import (
    bfs_levels,
    label_propagation,
    local_clustering_coefficient,
    pagerank,
    sssp_distances,
    weakly_connected_components,
)
from repro.graph.algorithms.bfs import UNREACHED, frontier_sizes
from repro.graph.algorithms.cdlp import community_count
from repro.graph.algorithms.lcc import average_clustering
from repro.graph.algorithms.sssp import INFINITY, default_weight
from repro.graph.algorithms.wcc import component_sizes
from repro.graph.graph import Graph


class TestBfs:
    def test_line_graph_levels(self, line_graph):
        levels = bfs_levels(line_graph, 0)
        assert levels == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_unreachable_marked(self, diamond_graph):
        levels = bfs_levels(diamond_graph, 0)
        assert levels[4] == UNREACHED
        assert levels[3] == 2

    def test_source_at_zero(self, line_graph):
        assert bfs_levels(line_graph, 2)[2] == 0

    def test_direction_respected(self, line_graph):
        levels = bfs_levels(line_graph, 4)
        assert levels[0] == UNREACHED

    def test_invalid_source(self, line_graph):
        with pytest.raises(GraphError):
            bfs_levels(line_graph, 99)

    def test_frontier_sizes_sum_to_reached(self, small_graph):
        sizes = frontier_sizes(small_graph, 0)
        levels = bfs_levels(small_graph, 0)
        reached = sum(1 for l in levels.values() if l != UNREACHED)
        assert sum(sizes) == reached
        assert sizes[0] == 1

    def test_frontier_sizes_match_levels(self, diamond_graph):
        assert frontier_sizes(diamond_graph, 0) == [1, 2, 1]


class TestPageRank:
    def test_ranks_sum_to_one(self, small_graph):
        ranks = pagerank(small_graph, iterations=15)
        assert sum(ranks.values()) == pytest.approx(1.0, abs=1e-9)

    def test_uniform_on_cycle(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        ranks = pagerank(g, iterations=30)
        for rank in ranks.values():
            assert rank == pytest.approx(0.25, abs=1e-9)

    def test_sink_handling_preserves_mass(self):
        g = Graph(3, [(0, 1), (0, 2)])  # 1 and 2 are dangling
        ranks = pagerank(g, iterations=25)
        assert sum(ranks.values()) == pytest.approx(1.0, abs=1e-9)

    def test_hub_ranks_higher(self):
        g = Graph(4, [(1, 0), (2, 0), (3, 0), (0, 1)])
        ranks = pagerank(g, iterations=20)
        assert ranks[0] == max(ranks.values())

    def test_zero_iterations_uniform(self, line_graph):
        ranks = pagerank(line_graph, iterations=0)
        assert all(r == pytest.approx(0.2) for r in ranks.values())

    def test_tolerance_early_stop_same_result(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        exact = pagerank(g, iterations=100)
        stopped = pagerank(g, iterations=100, tolerance=1e-12)
        for v in g.vertices():
            assert exact[v] == pytest.approx(stopped[v], abs=1e-9)

    def test_empty_graph(self):
        assert pagerank(Graph(0, [])) == {}

    def test_invalid_params(self, line_graph):
        with pytest.raises(GraphError):
            pagerank(line_graph, damping=1.0)
        with pytest.raises(GraphError):
            pagerank(line_graph, iterations=-1)


class TestWcc:
    def test_single_component(self, line_graph):
        labels = weakly_connected_components(line_graph)
        assert set(labels.values()) == {0}

    def test_direction_ignored(self):
        g = Graph(3, [(2, 0), (2, 1)])
        labels = weakly_connected_components(g)
        assert len(set(labels.values())) == 1

    def test_isolated_vertices_own_component(self):
        g = Graph(4, [(0, 1)])
        labels = weakly_connected_components(g)
        assert labels[2] == 2
        assert labels[3] == 3

    def test_label_is_min_member(self):
        g = Graph(5, [(4, 3), (3, 2)])
        labels = weakly_connected_components(g)
        assert labels[4] == 2

    def test_component_sizes_sorted(self):
        g = Graph(6, [(0, 1), (1, 2), (3, 4)])
        assert component_sizes(g) == [3, 2, 1]


class TestSssp:
    def test_unit_weight_equals_bfs(self, small_graph):
        unit = lambda s, t: 1.0
        dist = sssp_distances(small_graph, 0, weight=unit)
        levels = bfs_levels(small_graph, 0)
        for v in small_graph.vertices():
            if levels[v] == UNREACHED:
                assert math.isinf(dist[v])
            else:
                assert dist[v] == pytest.approx(float(levels[v]))

    def test_picks_shorter_path(self):
        g = Graph(3, [(0, 1), (1, 2), (0, 2)])
        weights = {(0, 1): 1.0, (1, 2): 1.0, (0, 2): 5.0}
        dist = sssp_distances(g, 0, weight=lambda s, t: weights[(s, t)])
        assert dist[2] == pytest.approx(2.0)

    def test_unreachable_infinite(self, diamond_graph):
        dist = sssp_distances(diamond_graph, 0)
        assert dist[4] == INFINITY

    def test_default_weight_deterministic_and_bounded(self):
        for src, dst in [(0, 1), (17, 42), (100, 3)]:
            w = default_weight(src, dst)
            assert 1.0 <= w < 2.0
            assert w == default_weight(src, dst)

    def test_negative_weight_rejected(self, line_graph):
        with pytest.raises(GraphError):
            sssp_distances(line_graph, 0, weight=lambda s, t: -1.0)

    def test_invalid_source(self, line_graph):
        with pytest.raises(GraphError):
            sssp_distances(line_graph, -1)


class TestCdlp:
    def test_clique_converges_to_one_label(self):
        edges = [(i, j) for i in range(4) for j in range(4) if i != j]
        g = Graph(4, edges)
        labels = label_propagation(g, iterations=5)
        assert set(labels.values()) == {0}

    def test_two_cliques_two_labels(self):
        edges = [(i, j) for i in range(3) for j in range(3) if i != j]
        edges += [(i, j) for i in range(3, 6) for j in range(3, 6) if i != j]
        g = Graph(6, edges)
        labels = label_propagation(g, iterations=5)
        assert community_count(labels) == 2

    def test_zero_iterations_identity(self, line_graph):
        labels = label_propagation(line_graph, iterations=0)
        assert labels == {v: v for v in line_graph.vertices()}

    def test_no_in_neighbors_keeps_label(self):
        g = Graph(2, [(0, 1)])
        labels = label_propagation(g, iterations=3)
        assert labels[0] == 0

    def test_invalid_iterations(self, line_graph):
        with pytest.raises(GraphError):
            label_propagation(line_graph, iterations=-2)


class TestLcc:
    def test_triangle_is_fully_clustered(self):
        g = Graph(3, [(0, 1), (1, 2), (2, 0), (1, 0), (2, 1), (0, 2)])
        lcc = local_clustering_coefficient(g)
        for value in lcc.values():
            assert value == pytest.approx(1.0)

    def test_directed_triangle(self):
        g = Graph(3, [(0, 1), (1, 2), (2, 0)])
        lcc = local_clustering_coefficient(g)
        # Each vertex has 2 undirected neighbors and 1 directed edge
        # between them: 1 / (2*1).
        for value in lcc.values():
            assert value == pytest.approx(0.5)

    def test_line_has_zero_clustering(self, line_graph):
        lcc = local_clustering_coefficient(line_graph)
        assert all(v == 0.0 for v in lcc.values())

    def test_degree_below_two_zero(self):
        g = Graph(2, [(0, 1)])
        lcc = local_clustering_coefficient(g)
        assert lcc[0] == 0.0
        assert lcc[1] == 0.0

    def test_average_clustering_range(self, small_graph):
        avg = average_clustering(small_graph)
        assert 0.0 < avg < 1.0  # Datagen-like graphs cluster

    def test_average_clustering_empty(self):
        assert average_clustering(Graph(0, [])) == 0.0
