"""Unit tests for partitioning strategies and quality metrics."""

import pytest

from repro.errors import PartitionError
from repro.graph.generators import powerlaw_graph, uniform_random_graph
from repro.graph.graph import Graph
from repro.graph.partition import (
    edge_balance,
    edge_cut_fraction,
    greedy_vertex_cut,
    hash_partition,
    random_vertex_cut,
    range_partition,
    replication_factor,
    vertex_balance,
)
from repro.graph.partition.metrics import partition_sizes


class TestHashPartition:
    def test_covers_all_vertices(self):
        assignment = hash_partition(100, 4)
        assert len(assignment) == 100
        assert set(assignment) == {0, 1, 2, 3}

    def test_roughly_balanced(self):
        assignment = hash_partition(8000, 8)
        assert vertex_balance(assignment, 8) < 1.1

    def test_deterministic(self):
        assert hash_partition(50, 3) == hash_partition(50, 3)

    def test_rejects_bad_params(self):
        with pytest.raises(PartitionError):
            hash_partition(10, 0)
        with pytest.raises(PartitionError):
            hash_partition(-1, 2)


class TestRangePartition:
    def test_contiguous_ranges(self):
        assignment = range_partition(10, 3)
        assert assignment == [0, 0, 0, 0, 1, 1, 1, 2, 2, 2]

    def test_perfect_vertex_balance(self):
        assert vertex_balance(range_partition(1000, 8), 8) < 1.01

    def test_rejects_bad_params(self):
        with pytest.raises(PartitionError):
            range_partition(10, -1)


class TestVertexCut:
    @pytest.fixture(scope="class")
    def pl_graph(self):
        return powerlaw_graph(1500, 9000, seed=3)

    def test_greedy_assigns_every_edge(self, pl_graph):
        cut = greedy_vertex_cut(pl_graph, 8)
        assert len(cut.edge_assignment) == pl_graph.num_edges
        assert sum(cut.edge_counts()) == pl_graph.num_edges

    def test_greedy_respects_capacity(self, pl_graph):
        cut = greedy_vertex_cut(pl_graph, 8, balance_slack=0.1)
        ideal = pl_graph.num_edges / 8
        assert max(cut.edge_counts()) <= 1.1 * ideal + 1

    def test_greedy_beats_random_replication(self, pl_graph):
        greedy = greedy_vertex_cut(pl_graph, 8)
        rand = random_vertex_cut(pl_graph, 8)
        assert replication_factor(greedy) < replication_factor(rand)

    def test_replicas_consistent_with_edges(self, pl_graph):
        cut = greedy_vertex_cut(pl_graph, 4)
        for (src, dst), part in zip(cut.edges, cut.edge_assignment):
            assert part in cut.replicas[src]
            assert part in cut.replicas[dst]

    def test_masters_are_replicas(self, pl_graph):
        cut = greedy_vertex_cut(pl_graph, 4)
        for v, master in cut.masters.items():
            assert master in cut.replicas[v]

    def test_edges_of_part(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        cut = greedy_vertex_cut(g, 2)
        collected = sorted(
            e for p in range(2) for e in cut.edges_of_part(p)
        )
        assert collected == list(g.edges())

    def test_edges_of_part_range_checked(self):
        cut = greedy_vertex_cut(Graph(2, [(0, 1)]), 2)
        with pytest.raises(PartitionError):
            cut.edges_of_part(5)

    def test_single_partition_rf_one(self, pl_graph):
        cut = greedy_vertex_cut(pl_graph, 1)
        assert replication_factor(cut) == 1.0

    def test_deterministic(self, pl_graph):
        a = greedy_vertex_cut(pl_graph, 4)
        b = greedy_vertex_cut(pl_graph, 4)
        assert a.edge_assignment == b.edge_assignment

    def test_rejects_bad_params(self):
        g = Graph(2, [(0, 1)])
        with pytest.raises(PartitionError):
            greedy_vertex_cut(g, 0)
        with pytest.raises(PartitionError):
            greedy_vertex_cut(g, 2, balance_slack=-0.5)
        with pytest.raises(PartitionError):
            random_vertex_cut(g, 0)

    def test_empty_graph_rf_zero(self):
        cut = greedy_vertex_cut(Graph(3, []), 2)
        assert cut.replication_factor() == 0.0


class TestMetrics:
    def test_vertex_balance_perfect(self):
        assert vertex_balance([0, 1, 0, 1]) == 1.0

    def test_vertex_balance_skewed(self):
        assert vertex_balance([0, 0, 0, 1]) == pytest.approx(1.5)

    def test_vertex_balance_with_empty_part(self):
        assert vertex_balance([0, 0], parts=2) == pytest.approx(2.0)

    def test_vertex_balance_rejects_out_of_range(self):
        with pytest.raises(PartitionError):
            vertex_balance([0, 3], parts=2)

    def test_edge_balance_counts_work(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        skewed = edge_balance(g, [0, 1, 1, 1], parts=2)
        assert skewed == pytest.approx(2.0)  # all 3 edges in part 0

    def test_edge_balance_assignment_length_checked(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(PartitionError):
            edge_balance(g, [0, 1])

    def test_edge_cut_fraction_bounds(self):
        g = uniform_random_graph(200, 1000, seed=6)
        frac = edge_cut_fraction(g, hash_partition(200, 4))
        assert 0.5 < frac <= 1.0  # hash cut is ~ (k-1)/k

    def test_edge_cut_zero_single_part(self):
        g = Graph(3, [(0, 1), (1, 2)])
        assert edge_cut_fraction(g, [0, 0, 0]) == 0.0

    def test_edge_cut_empty_graph(self):
        assert edge_cut_fraction(Graph(2, []), [0, 1]) == 0.0

    def test_partition_sizes(self):
        assert partition_sizes([0, 1, 1, 2]) == [1, 2, 1]

    def test_metrics_reject_empty_assignment(self):
        with pytest.raises(PartitionError):
            vertex_balance([])

    def test_range_partition_skew_on_powerlaw(self):
        """The ablation insight: range partitioning is skewed by degree."""
        g = powerlaw_graph(2000, 12000, alpha=0.8, seed=5)
        range_skew = edge_balance(g, range_partition(2000, 8), parts=8)
        hash_skew = edge_balance(g, hash_partition(2000, 8), parts=8)
        assert range_skew > hash_skew
