"""Unit tests for the edge-list and vertex-store text formats."""

import pytest

from repro.errors import GraphError
from repro.graph.edgelist import (
    EdgeList,
    parse_edge_list,
    render_edge_list,
    split_edges,
)
from repro.graph.graph import Graph
from repro.graph.vertexstore import (
    parse_vertex_store,
    render_vertex_store,
    split_vertex_lines,
    vertex_store_size_bytes,
)


class TestEdgeList:
    def test_roundtrip(self):
        g = Graph(4, [(0, 1), (2, 3), (3, 0)])
        el = EdgeList.from_graph(g)
        text = render_edge_list(el)
        parsed = parse_edge_list(text, 4)
        assert parsed.to_graph() == g

    def test_text_size_matches_render(self):
        g = Graph(12, [(0, 11), (10, 3)])
        el = EdgeList.from_graph(g)
        assert el.text_size_bytes() == len(render_edge_list(el))

    def test_parse_skips_comments_and_blanks(self):
        text = "# header\n\n0 1\n  \n1 0\n"
        el = parse_edge_list(text, 2)
        assert el.num_edges == 2

    def test_parse_rejects_bad_arity(self):
        with pytest.raises(GraphError):
            parse_edge_list("0 1 2\n", 3)

    def test_parse_rejects_non_integer(self):
        with pytest.raises(GraphError):
            parse_edge_list("a b\n", 3)

    def test_parse_rejects_out_of_range(self):
        with pytest.raises(GraphError):
            parse_edge_list("0 5\n", 3)

    def test_split_edges_partitions_all(self):
        g = Graph(10, [(i, (i + 1) % 10) for i in range(10)])
        chunks = split_edges(EdgeList.from_graph(g), 3)
        assert [c.num_edges for c in chunks] == [4, 3, 3]
        merged = [e for c in chunks for e in c.edges]
        assert merged == list(g.edges())

    def test_split_edges_more_parts_than_edges(self):
        el = EdgeList(3, ((0, 1),))
        chunks = split_edges(el, 3)
        assert [c.num_edges for c in chunks] == [1, 0, 0]

    def test_split_edges_rejects_nonpositive(self):
        with pytest.raises(GraphError):
            split_edges(EdgeList(2, ()), 0)


class TestVertexStore:
    def test_roundtrip(self):
        g = Graph(5, [(0, 1), (0, 2), (3, 4), (4, 0)])
        text = render_vertex_store(g)
        assert parse_vertex_store(text, 5) == g

    def test_size_matches_render(self):
        g = Graph(30, [(0, 29), (15, 7), (15, 8)])
        assert vertex_store_size_bytes(g) == len(render_vertex_store(g))

    def test_empty_graph(self):
        g = Graph(0, [])
        assert render_vertex_store(g) == ""
        assert vertex_store_size_bytes(g) == 0

    def test_isolated_vertices_kept(self):
        g = Graph(3, [(0, 1)])
        parsed = parse_vertex_store(render_vertex_store(g), 3)
        assert parsed.num_vertices == 3
        assert parsed.out_degree(2) == 0

    def test_parse_rejects_duplicate_vertex(self):
        with pytest.raises(GraphError):
            parse_vertex_store("0 1\n0 2\n", 3)

    def test_parse_rejects_bad_ids(self):
        with pytest.raises(GraphError):
            parse_vertex_store("9 1\n", 3)
        with pytest.raises(GraphError):
            parse_vertex_store("0 9\n", 3)
        with pytest.raises(GraphError):
            parse_vertex_store("x\n", 3)

    def test_split_vertex_lines(self):
        g = Graph(10, [])
        parts = split_vertex_lines(g, 3)
        assert [len(p) for p in parts] == [4, 3, 3]
        assert [v for p in parts for v in p] == list(range(10))

    def test_split_rejects_nonpositive(self):
        with pytest.raises(GraphError):
            split_vertex_lines(Graph(2, []), 0)
