"""Unit tests for the CSR representation."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.csr import CsrGraph
from repro.graph.graph import Graph


class TestCsrConstruction:
    def test_from_graph_roundtrip(self):
        g = Graph(4, [(0, 1), (0, 3), (2, 1)])
        csr = CsrGraph.from_graph(g)
        assert csr.to_graph() == g

    def test_counts(self):
        g = Graph(3, [(0, 1), (1, 2)])
        csr = CsrGraph.from_graph(g)
        assert csr.num_vertices == 3
        assert csr.num_edges == 2

    def test_empty_graph(self):
        csr = CsrGraph.from_graph(Graph(0, []))
        assert csr.num_vertices == 0
        assert csr.num_edges == 0

    def test_indptr_must_start_at_zero(self):
        with pytest.raises(GraphError):
            CsrGraph(np.array([1, 2]), np.array([0]))

    def test_indptr_must_end_at_edge_count(self):
        with pytest.raises(GraphError):
            CsrGraph(np.array([0, 2]), np.array([0]))

    def test_indptr_must_be_monotone(self):
        with pytest.raises(GraphError):
            CsrGraph(np.array([0, 2, 1, 3]), np.array([0, 1, 2]))

    def test_indices_in_range(self):
        with pytest.raises(GraphError):
            CsrGraph(np.array([0, 1]), np.array([5]))

    def test_empty_indptr_rejected(self):
        with pytest.raises(GraphError):
            CsrGraph(np.array([]), np.array([]))


class TestCsrAccess:
    @pytest.fixture()
    def csr(self):
        return CsrGraph.from_graph(Graph(4, [(0, 1), (0, 2), (2, 3)]))

    def test_out_neighbors(self, csr):
        assert list(csr.out_neighbors(0)) == [1, 2]
        assert list(csr.out_neighbors(1)) == []

    def test_out_degree(self, csr):
        assert csr.out_degree(0) == 2
        assert csr.out_degree(3) == 0

    def test_out_degrees_vector(self, csr):
        assert list(csr.out_degrees()) == [2, 0, 1, 0]

    def test_edges_iteration(self, csr):
        assert list(csr.edges()) == [(0, 1), (0, 2), (2, 3)]

    def test_vertex_range_checked(self, csr):
        with pytest.raises(GraphError):
            csr.out_neighbors(4)
        with pytest.raises(GraphError):
            csr.out_degree(-1)

    def test_nbytes_positive(self, csr):
        assert csr.nbytes() > 0
