"""Unit tests for the adjacency graph."""

import pytest

from repro.errors import GraphError
from repro.graph.graph import Graph


class TestConstruction:
    def test_empty_graph(self):
        g = Graph(0, [])
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(GraphError):
            Graph(-1, [])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(GraphError):
            Graph(2, [(0, 2)])
        with pytest.raises(GraphError):
            Graph(2, [(-1, 0)])

    def test_parallel_edges_collapsed(self):
        g = Graph(2, [(0, 1), (0, 1), (0, 1)])
        assert g.num_edges == 1

    def test_self_loops_allowed(self):
        g = Graph(2, [(0, 0), (0, 1)])
        assert g.num_edges == 2
        assert g.has_edge(0, 0)

    def test_neighbors_sorted(self):
        g = Graph(4, [(0, 3), (0, 1), (0, 2)])
        assert list(g.out_neighbors(0)) == [1, 2, 3]


class TestAccessors:
    @pytest.fixture()
    def g(self):
        return Graph(4, [(0, 1), (0, 2), (1, 2), (3, 0)])

    def test_degrees(self, g):
        assert g.out_degree(0) == 2
        assert g.in_degree(2) == 2
        assert g.out_degree(3) == 1
        assert g.in_degree(0) == 1

    def test_in_neighbors(self, g):
        assert list(g.in_neighbors(2)) == [0, 1]
        assert list(g.in_neighbors(3)) == []

    def test_undirected_neighbors_dedup(self):
        g = Graph(2, [(0, 1), (1, 0)])
        assert list(g.neighbors_undirected(0)) == [1]
        assert g.degree_undirected(0) == 1

    def test_undirected_skips_self_loops(self):
        g = Graph(2, [(0, 0), (0, 1)])
        assert list(g.neighbors_undirected(0)) == [1]

    def test_has_edge(self, g):
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)
        assert not g.has_edge(2, 3)

    def test_edges_iteration_sorted(self, g):
        assert list(g.edges()) == [(0, 1), (0, 2), (1, 2), (3, 0)]

    def test_vertex_range_check(self, g):
        with pytest.raises(GraphError):
            g.out_neighbors(4)
        with pytest.raises(GraphError):
            g.has_edge(0, 99)

    def test_vertices_range(self, g):
        assert list(g.vertices()) == [0, 1, 2, 3]


class TestDerived:
    def test_reversed(self):
        g = Graph(3, [(0, 1), (1, 2)])
        r = g.reversed()
        assert list(r.edges()) == [(1, 0), (2, 1)]
        assert r.num_vertices == 3

    def test_reverse_twice_is_identity(self):
        g = Graph(4, [(0, 1), (2, 3), (3, 0)])
        assert g.reversed().reversed() == g

    def test_degree_histogram(self):
        g = Graph(3, [(0, 1), (0, 2)])
        assert g.degree_histogram() == {2: 1, 0: 2}

    def test_max_out_degree(self):
        g = Graph(3, [(0, 1), (0, 2), (1, 2)])
        assert g.max_out_degree() == 2
        assert Graph(0, []).max_out_degree() == 0

    def test_equality(self):
        a = Graph(2, [(0, 1)])
        b = Graph(2, [(0, 1)])
        c = Graph(2, [(1, 0)])
        assert a == b
        assert a != c
        assert a != "not a graph"
