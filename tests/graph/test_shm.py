"""Shared-memory CSR pages: round trips, read-only views, lifecycle."""

from __future__ import annotations

import multiprocessing as mp

import numpy as np
import pytest

from repro.graph.generators.datagen import datagen_graph
from repro.graph.graph import Graph, _CsrRows
from repro.graph.shm import SharedCsrHandle, SharedGraphPages, attach_graph


@pytest.fixture
def graph():
    g = datagen_graph(300, avg_degree=5, seed=3)
    g.content_key = "test-content-key"
    return g


def _attach_in_child(handle, queue):
    attached = attach_graph(handle)
    queue.put((
        attached.num_vertices,
        attached.num_edges,
        attached.out_neighbors(7),
        attached.content_key,
    ))


class TestShareAttach:
    def test_round_trip_is_equal(self, graph):
        with SharedGraphPages() as pages:
            attached = attach_graph(pages.share(graph))
            assert attached == graph
            assert attached.content_key == "test-content-key"

    def test_attached_csr_matches(self, graph):
        with SharedGraphPages() as pages:
            attached = attach_graph(pages.share(graph))
            np.testing.assert_array_equal(
                attached.csr().indptr, graph.csr().indptr)
            np.testing.assert_array_equal(
                attached.csr().indices, graph.csr().indices)

    def test_views_are_read_only(self, graph):
        with SharedGraphPages() as pages:
            attached = attach_graph(pages.share(graph))
            with pytest.raises(ValueError):
                attached.csr().indices[0] = 99

    def test_adjacency_stays_lazy(self, graph):
        # The attached graph must not mirror the edge data into Python
        # lists — that per-process copy is exactly what sharing avoids.
        with SharedGraphPages() as pages:
            attached = attach_graph(pages.share(graph))
            assert isinstance(attached._out, _CsrRows)
            assert attached.out_neighbors(0) == graph.out_neighbors(0)

    def test_empty_graph_round_trips(self):
        empty = Graph(0, [])
        with SharedGraphPages() as pages:
            attached = attach_graph(pages.share(empty))
            assert attached.num_vertices == 0
            assert attached.num_edges == 0

    def test_edgeless_vertices_round_trip(self):
        sparse = Graph(5, [(0, 1)])
        with SharedGraphPages() as pages:
            assert attach_graph(pages.share(sparse)) == sparse

    def test_attach_from_forked_child(self, graph):
        ctx = None
        try:
            ctx = mp.get_context("fork")
        except ValueError:
            pytest.skip("platform cannot fork")
        with SharedGraphPages() as pages:
            handle = pages.share(graph)
            queue = ctx.SimpleQueue()
            child = ctx.Process(target=_attach_in_child,
                                args=(handle, queue))
            child.start()
            n, m, row, key = queue.get()
            child.join(timeout=30)
            assert child.exitcode == 0
        assert (n, m) == (graph.num_vertices, graph.num_edges)
        assert row == graph.out_neighbors(7)
        assert key == "test-content-key"


class TestLifecycle:
    def test_close_unlinks_segments(self, graph):
        pages = SharedGraphPages()
        handle = pages.share(graph)
        assert len(pages) == 1
        pages.close()
        assert len(pages) == 0
        with pytest.raises((FileNotFoundError, OSError)):
            attach_graph(handle)

    def test_close_is_idempotent(self, graph):
        pages = SharedGraphPages()
        pages.share(graph)
        pages.close()
        pages.close()

    def test_handle_geometry(self):
        handle = SharedCsrHandle(name="x", num_vertices=10, num_edges=7)
        assert handle.indptr_nbytes == 88
        assert handle.indices_offset % 64 == 0
        assert handle.indices_offset >= handle.indptr_nbytes
        assert handle.total_nbytes == handle.indices_offset + 56


class TestFanOutSharing:
    def test_share_datasets_builds_handles(self, tmp_path, monkeypatch):
        from repro.workloads import datasets
        from repro.workloads.parallel import RunRequest, _share_datasets
        from repro.workloads.spec import WorkloadSpec

        monkeypatch.setenv("GRANULA_CACHE_DIR", str(tmp_path / "cache"))
        datasets.clear_cache()
        requests = [
            RunRequest(WorkloadSpec("Giraph", "bfs", "dg-tiny", workers=4)),
            RunRequest(WorkloadSpec("Giraph", "pagerank", "dg-tiny",
                                    workers=4)),
        ]
        pages, handles = _share_datasets(requests)
        try:
            assert pages is not None
            assert len(handles) == 1  # one distinct dataset
            assert handles[0].content_key is not None
            # The parent memo is dropped so forked children never
            # inherit (and later free) the eager heap copy.
            assert datasets._CACHE == {}
            attached = attach_graph(handles[0])
            assert attached.num_vertices == 2_000
        finally:
            if pages is not None:
                pages.close()
            datasets.clear_cache()
