"""Unit tests for the output validator."""

import math

from repro.graph.validate import compare_exact, compare_numeric


class TestCompareExact:
    def test_match(self):
        report = compare_exact({0: 1, 1: 2}, {0: 1, 1: 2})
        assert report.ok
        assert bool(report)
        assert report.total == 2
        assert "OK" in report.summary()

    def test_value_mismatch(self):
        report = compare_exact({0: 1}, {0: 2})
        assert not report.ok
        assert "v0" in report.mismatches[0]
        assert "FAILED" in report.summary()

    def test_missing_key_in_actual(self):
        report = compare_exact({0: 1, 1: 2}, {0: 1})
        assert not report.ok
        assert "missing" in report.mismatches[0]

    def test_extra_key_in_actual(self):
        report = compare_exact({0: 1}, {0: 1, 5: 9})
        assert not report.ok

    def test_mismatch_report_capped(self):
        expected = {i: 0 for i in range(100)}
        actual = {i: 1 for i in range(100)}
        report = compare_exact(expected, actual, max_reported=5)
        assert len(report.mismatches) == 5

    def test_empty_inputs_ok(self):
        assert compare_exact({}, {}).ok


class TestCompareNumeric:
    def test_within_tolerance(self):
        report = compare_numeric({0: 1.0}, {0: 1.0 + 1e-9})
        assert report.ok

    def test_outside_tolerance(self):
        report = compare_numeric({0: 1.0}, {0: 1.1})
        assert not report.ok

    def test_custom_tolerance(self):
        report = compare_numeric({0: 1.0}, {0: 1.05}, rel_tol=0.1)
        assert report.ok

    def test_infinities_match(self):
        report = compare_numeric({0: math.inf}, {0: math.inf})
        assert report.ok

    def test_inf_vs_finite_mismatch(self):
        report = compare_numeric({0: math.inf}, {0: 1e9})
        assert not report.ok

    def test_missing_keys_reported(self):
        report = compare_numeric({0: 1.0, 1: 2.0}, {0: 1.0})
        assert not report.ok
        assert any("missing" in m for m in report.mismatches)
