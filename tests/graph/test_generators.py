"""Unit tests for the synthetic graph generators."""

import pytest

from repro.errors import GenerationError
from repro.graph.algorithms.wcc import component_sizes
from repro.graph.generators import (
    datagen_graph,
    grid_graph,
    powerlaw_graph,
    rmat_graph,
    uniform_random_graph,
)


class TestDatagen:
    def test_deterministic(self):
        a = datagen_graph(500, avg_degree=6, seed=3)
        b = datagen_graph(500, avg_degree=6, seed=3)
        assert a == b

    def test_seed_changes_graph(self):
        a = datagen_graph(500, avg_degree=6, seed=3)
        b = datagen_graph(500, avg_degree=6, seed=4)
        assert a != b

    def test_weakly_connected(self):
        g = datagen_graph(1000, avg_degree=6, seed=9)
        assert len(component_sizes(g)) == 1

    def test_average_degree_near_target(self):
        g = datagen_graph(2000, avg_degree=8, seed=5)
        avg = g.num_edges / g.num_vertices
        assert 5.0 <= avg <= 14.0

    def test_degree_skew(self):
        g = datagen_graph(2000, avg_degree=8, seed=5)
        avg = g.num_edges / g.num_vertices
        assert g.max_out_degree() > 5 * avg

    def test_max_degree_capped(self):
        g = datagen_graph(2000, avg_degree=8, max_degree=40, seed=5)
        assert g.max_out_degree() <= 40

    def test_small_world_distances(self):
        from repro.graph.algorithms.bfs import bfs_levels
        g = datagen_graph(2000, avg_degree=8, seed=5)
        hub = max(g.vertices(), key=g.out_degree)
        levels = bfs_levels(g, hub)
        reached = [l for l in levels.values() if l >= 0]
        assert max(reached) <= 12

    def test_rejects_bad_params(self):
        with pytest.raises(GenerationError):
            datagen_graph(1)
        with pytest.raises(GenerationError):
            datagen_graph(100, avg_degree=0)
        with pytest.raises(GenerationError):
            datagen_graph(100, p_intra=1.5)
        with pytest.raises(GenerationError):
            datagen_graph(100, community_size=1)
        with pytest.raises(GenerationError):
            datagen_graph(100, max_degree=-1)


class TestPowerlaw:
    def test_edge_count_close_to_request(self):
        g = powerlaw_graph(1000, 5000, seed=2)
        assert 4500 <= g.num_edges <= 5000

    def test_deterministic(self):
        assert powerlaw_graph(300, 1500, seed=1) == powerlaw_graph(
            300, 1500, seed=1
        )

    def test_hubs_are_low_index(self):
        g = powerlaw_graph(1000, 8000, alpha=0.7, seed=2)
        low = sum(g.out_degree(v) + g.in_degree(v) for v in range(10))
        high = sum(g.out_degree(v) + g.in_degree(v)
                   for v in range(990, 1000))
        assert low > 3 * high

    def test_no_self_loops(self):
        g = powerlaw_graph(200, 1000, seed=3)
        assert all(s != t for s, t in g.edges())

    def test_rejects_bad_params(self):
        with pytest.raises(GenerationError):
            powerlaw_graph(0, 10)
        with pytest.raises(GenerationError):
            powerlaw_graph(10, -1)
        with pytest.raises(GenerationError):
            powerlaw_graph(10, 5, alpha=0.0)
        with pytest.raises(GenerationError):
            powerlaw_graph(3, 100)


class TestUniform:
    def test_exact_edge_count(self):
        g = uniform_random_graph(100, 500, seed=4)
        assert g.num_edges == 500

    def test_dense_request(self):
        g = uniform_random_graph(10, 80, seed=4)
        assert g.num_edges == 80

    def test_max_density(self):
        g = uniform_random_graph(5, 20, seed=4)
        assert g.num_edges == 20

    def test_no_self_loops(self):
        g = uniform_random_graph(50, 500, seed=4)
        assert all(s != t for s, t in g.edges())

    def test_too_many_edges_rejected(self):
        with pytest.raises(GenerationError):
            uniform_random_graph(3, 7)

    def test_deterministic(self):
        assert uniform_random_graph(60, 200, seed=9) == uniform_random_graph(
            60, 200, seed=9
        )


class TestGrid:
    def test_vertex_count(self):
        assert grid_graph(3, 4).num_vertices == 12

    def test_bidirectional_edge_count(self):
        # 2x2 grid: 4 undirected lattice edges -> 8 directed.
        assert grid_graph(2, 2).num_edges == 8

    def test_unidirectional_edge_count(self):
        assert grid_graph(2, 2, bidirectional=False).num_edges == 4

    def test_interior_degree(self):
        g = grid_graph(3, 3)
        assert g.out_degree(4) == 4  # center vertex

    def test_single_cell(self):
        g = grid_graph(1, 1)
        assert g.num_vertices == 1
        assert g.num_edges == 0

    def test_rejects_bad_dims(self):
        with pytest.raises(GenerationError):
            grid_graph(0, 3)


class TestRmat:
    def test_vertex_count_power_of_two(self):
        assert rmat_graph(6, edge_factor=4).num_vertices == 64

    def test_edge_count_bounded(self):
        g = rmat_graph(8, edge_factor=8, seed=1)
        assert 0 < g.num_edges <= 8 * 256

    def test_skewed_distribution(self):
        g = rmat_graph(10, edge_factor=8, seed=1)
        avg = g.num_edges / g.num_vertices
        assert g.max_out_degree() > 4 * avg

    def test_deterministic(self):
        assert rmat_graph(6, seed=7) == rmat_graph(6, seed=7)

    def test_scale_zero(self):
        g = rmat_graph(0, edge_factor=5)
        assert g.num_vertices == 1
        assert g.num_edges == 0

    def test_rejects_bad_probabilities(self):
        with pytest.raises(GenerationError):
            rmat_graph(4, a=0.9, b=0.2, c=0.2)
        with pytest.raises(GenerationError):
            rmat_graph(-1)
