"""Property-based tests (hypothesis): the ``.gcol`` view is the tree.

For random archives — random tree shapes, int/float/missing
timestamps, heterogeneous info values including the literal string
``"Infinity"`` — the zero-copy :class:`ColumnarArchiveView` must
answer every :class:`ArchiveQuery` selector and aggregation
*byte-identically*: equal floats (no tolerance), equal record lists,
and the same typed error with the same message where the tree path
raises.
"""

import struct
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.archive.archive import ArchivedOperation, PerformanceArchive
from repro.core.archive.columnar import build_sidecar, load_sidecar
from repro.core.archive.query import ArchiveQuery
from repro.core.archive.serialize import archive_to_document
from repro.errors import QueryError
from repro.service.app import _operation_record

# -- strategies -------------------------------------------------------------

MISSIONS = ("Load", "Compute", "Step-0", "Step-1", "Step-12", "IO-2")
ACTORS = ("Master", "Worker-1", "Worker-2", "Client")
INFO_KEYS = ("Duration", "Bytes", "Status", "Label")

floats = st.floats(min_value=-1e9, max_value=1e9,
                   allow_nan=False, allow_infinity=False)
timestamps = st.one_of(
    st.none(),
    st.floats(min_value=0, max_value=1e6, allow_nan=False,
              allow_infinity=False),
    st.integers(min_value=0, max_value=10**9),
)
info_values = st.one_of(
    floats,
    st.integers(min_value=-10**6, max_value=10**6),
    st.booleans(),
    st.none(),
    st.sampled_from(("SUCCEEDED", "FAILED", "Infinity", "-Infinity",
                     "\\Infinity", "12.5", "")),
    st.just(float("inf")),
    st.just(float("-inf")),
    st.lists(st.integers(0, 9), max_size=3),
)


@st.composite
def archives(draw):
    count = draw(st.integers(min_value=1, max_value=12))
    ops = []
    for index in range(count):
        infos = draw(st.dictionaries(
            st.sampled_from(INFO_KEYS), info_values, max_size=3))
        op = ArchivedOperation(
            uid=f"op{index}",
            mission=draw(st.sampled_from(MISSIONS)),
            actor=draw(st.sampled_from(ACTORS)),
            start_time=draw(timestamps),
            end_time=draw(timestamps),
            infos=infos,
        )
        if index:
            parent = ops[draw(st.integers(0, index - 1))]
            op.parent = parent
            parent.children.append(op)
        ops.append(op)
    return PerformanceArchive("prop-job", ops[0], platform="Test")


def view_of(archive, directory):
    document = archive_to_document(archive)
    payload = build_sidecar(document["operations"],
                            document["integrity"]["checksum"])
    path = Path(directory) / "prop.gcol"
    path.write_bytes(payload)
    return load_sidecar(
        path, expected_checksum=document["integrity"]["checksum"])


def assert_same_result(compute_view, compute_tree):
    """Equal values, or the same QueryError with the same message."""
    try:
        expected = compute_tree()
    except QueryError as exc:
        with pytest.raises(QueryError) as caught:
            compute_view()
        assert str(caught.value) == str(exc)
        return
    actual = compute_view()
    assert type(actual) is type(expected)
    if isinstance(expected, float):
        # Bit-identical, which also equates the two NaNs a total of
        # +inf and -inf folds to on both paths.
        assert struct.pack("<d", actual) == struct.pack("<d", expected)
    else:
        assert actual == expected


def assert_surfaces_identical(view, tree):
    assert len(view) == len(tree)
    assert view.durations() == tree.durations()
    assert view.operation_records() == \
        [_operation_record(op) for op in tree.operations()]
    for key in INFO_KEYS:
        assert view.values(key) == tree.values(key)
        assert view.values(key, default=-1) == tree.values(key, default=-1)
        assert_same_result(lambda k=key: view.total(k),
                           lambda k=key: tree.total(k))
        assert_same_result(lambda k=key: view.mean(k),
                           lambda k=key: tree.mean(k))
        assert_same_result(
            lambda k=key: view.top_records(k, 3),
            lambda k=key: [
                dict(_operation_record(op), value=op.infos.get(k))
                for op in tree.top(k, 3)
            ],
        )


# -- properties -------------------------------------------------------------

class TestColumnarIdentity:
    @given(archives())
    @settings(max_examples=40, deadline=None)
    def test_every_aggregation_matches_the_tree(self, archive):
        with tempfile.TemporaryDirectory() as directory:
            view = view_of(archive, directory)
            try:
                assert_surfaces_identical(view, ArchiveQuery(archive))
            finally:
                view.close()

    @given(archives(), st.sampled_from(MISSIONS), st.sampled_from(ACTORS),
           st.integers(0, 12))
    @settings(max_examples=40, deadline=None)
    def test_every_selector_matches_the_tree(self, archive, mission,
                                             actor, iteration):
        mission_base = mission.rsplit("-", 1)[0]
        tree = ArchiveQuery(archive)
        with tempfile.TemporaryDirectory() as directory:
            view = view_of(archive, directory)
            try:
                assert_surfaces_identical(
                    view.mission(mission_base), tree.mission(mission_base))
                assert_surfaces_identical(
                    view.actor(actor), tree.actor(actor))
                assert_surfaces_identical(
                    view.iteration(iteration), tree.iteration(iteration))
                pattern = f"{archive.root.mission}/*"
                assert_surfaces_identical(
                    view.path(pattern), tree.path(pattern))
                assert_surfaces_identical(view.path("*"), tree.path("*"))
                # The view's predicate sees service records, the
                # tree's sees operations — same selection either way.
                assert_surfaces_identical(
                    view.where(lambda r: r["duration"] is not None),
                    tree.where(lambda op: op.duration is not None))
                assert_surfaces_identical(
                    view.mission(mission_base).actor(actor),
                    tree.mission(mission_base).actor(actor))
            finally:
                view.close()
