"""Property-based tests (hypothesis): fleet scans are mode-invariant.

For stores of random archives — random tree shapes, int/float/missing
timestamps, heterogeneous info values, partially absent metadata — a
fleet query must return the *same document* whether it runs the
vectorized columnar scan (``mode="auto"``) or materializes every
archive (``mode="tree"``).  And when sidecars are corrupted or
deleted, the columnar scan must degrade per job (reported in
``degraded_jobs``), never change a value.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis.fleet import run_fleet_query
from repro.core.analysis.fleetplan import FleetPlan
from repro.core.archive.archive import ArchivedOperation, PerformanceArchive
from repro.core.archive.store import ArchiveStore

MISSIONS = ("Load", "Compute", "Step-0", "Step-1", "Step-12", "IO-2")
ACTORS = ("Master", "Worker-1", "Worker-2")
INFO_KEYS = ("Duration", "Bytes", "Status")
PLATFORMS = ("Giraph", "PowerGraph", "")

timestamps = st.one_of(
    st.none(),
    st.floats(min_value=0, max_value=1e6, allow_nan=False,
              allow_infinity=False),
    st.integers(min_value=0, max_value=10**9),
)
info_values = st.one_of(
    st.floats(min_value=-1e9, max_value=1e9, allow_nan=False,
              allow_infinity=False),
    st.integers(min_value=-10**6, max_value=10**6),
    st.booleans(),
    st.none(),
    st.sampled_from(("SUCCEEDED", "12.5", "Infinity", "")),
)

PLANS = (
    FleetPlan.from_params(
        {"group_by": "platform,meta:flavor",
         "agg": "count,sum,mean,min,max,p50,p95,top3"}),
    FleetPlan.from_params(
        {"group_by": "platform", "agg": "count,mean,p90,top2",
         "metric": "Bytes"}),
    FleetPlan.from_params(
        {"group_by": "platform", "agg": "sum", "mission": "Step"},
        op="series"),
    FleetPlan.from_params({"group_by": "platform", "k": "1.0"},
                          op="regressions"),
)


@st.composite
def stores_of_archives(draw):
    """2–5 random archives, keyed for one ArchiveStore."""
    jobs = draw(st.integers(min_value=2, max_value=5))
    archives = []
    for j in range(jobs):
        count = draw(st.integers(min_value=1, max_value=10))
        ops = []
        for index in range(count):
            op = ArchivedOperation(
                uid=f"j{j}op{index}",
                mission=draw(st.sampled_from(MISSIONS)),
                actor=draw(st.sampled_from(ACTORS)),
                start_time=draw(timestamps),
                end_time=draw(timestamps),
                infos=draw(st.dictionaries(
                    st.sampled_from(INFO_KEYS), info_values,
                    max_size=2)),
            )
            if index:
                parent = ops[draw(st.integers(0, index - 1))]
                op.parent = parent
                parent.children.append(op)
            ops.append(op)
        metadata = {}
        if draw(st.booleans()):
            metadata["flavor"] = draw(st.sampled_from(("fast", "slow")))
        archives.append(PerformanceArchive(
            f"job-{j:02d}", ops[0],
            platform=draw(st.sampled_from(PLATFORMS)),
            metadata=metadata,
        ))
    return archives


class TestFleetModeInvariance:
    @given(stores_of_archives(), st.sampled_from(PLANS))
    @settings(max_examples=25, deadline=None)
    def test_columnar_scan_equals_tree_scan(self, archives, plan):
        with tempfile.TemporaryDirectory() as directory:
            store = ArchiveStore(Path(directory) / "s")
            for archive in archives:
                store.save(archive)
            columnar = run_fleet_query(store, plan, mode="auto")
            tree = run_fleet_query(store, plan, mode="tree")
            assert columnar == tree
            assert columnar["degraded_jobs"] == []

    @given(stores_of_archives(), st.sampled_from(PLANS),
           st.data())
    @settings(max_examples=25, deadline=None)
    def test_damaged_sidecars_degrade_without_changing_values(
        self, archives, plan, data,
    ):
        with tempfile.TemporaryDirectory() as directory:
            store = ArchiveStore(Path(directory) / "s")
            for archive in archives:
                store.save(archive)
            job_ids = store.list()
            victims = sorted(data.draw(st.sets(
                st.sampled_from(job_ids), min_size=1,
                max_size=len(job_ids),
            )))
            for n, job_id in enumerate(victims):
                side = store.sidecar_path(job_id)
                if n % 2:
                    side.unlink()
                else:
                    side.write_bytes(b"GCOL not a real sidecar")
            columnar = run_fleet_query(store, plan, mode="auto")
            tree = run_fleet_query(store, plan, mode="tree")
            assert columnar["degraded_jobs"] == victims
            assert dict(columnar, degraded_jobs=[]) == tree
