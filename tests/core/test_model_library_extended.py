"""Tests for the extended model library (one model per Table 1 row)."""

import pytest

from repro.core.model.library import DOMAIN_OPERATIONS, default_library
from repro.core.model.serialize import model_from_json, model_to_json
from repro.core.model.validation import validate_model
from repro.platforms.registry import PLATFORM_TABLE

ALL_PLATFORM_MODELS = ("Giraph", "PowerGraph", "Hadoop", "GraphMat",
                       "PGX.D", "OpenG", "TOTEM")


class TestExtendedLibrary:
    def test_every_table1_platform_has_a_model(self):
        library = default_library()
        for platform in PLATFORM_TABLE:
            assert library.has(platform.name), platform.name

    @pytest.mark.parametrize("name", ALL_PLATFORM_MODELS)
    def test_models_validate(self, name):
        model = default_library().get(name)
        assert validate_model(model, strict=False) == []

    @pytest.mark.parametrize("name", ALL_PLATFORM_MODELS)
    def test_identical_domain_level(self, name):
        """The property enabling cross-platform comparison (Section 3.4)."""
        model = default_library().get(name)
        domain = tuple(c.mission for c in model.root.children)
        assert domain == DOMAIN_OPERATIONS

    @pytest.mark.parametrize("name", ALL_PLATFORM_MODELS)
    def test_models_serialize(self, name):
        model = default_library().get(name)
        clone = model_from_json(model_to_json(model))
        assert clone.size() == model.size()
        assert validate_model(clone, strict=False) == []

    def test_single_node_models_have_no_cluster_startup(self):
        """OpenG/TOTEM launch natively: no resource-manager operation."""
        library = default_library()
        for name in ("OpenG", "TOTEM"):
            model = library.get(name)
            startup_children = {
                c.mission for c in model.root.child("Startup").children
            }
            assert not startup_children & {"MpiStartup", "LaunchWorkers",
                                           "LaunchContainers"}

    def test_totem_models_hybrid_execution(self):
        model = default_library().get("TOTEM")
        round_children = {
            c.mission for c in model.find("HybridRound").children
        }
        assert {"CpuKernel", "GpuKernel", "BoundaryExchange"} <= round_children

    def test_graphmat_models_spmv(self):
        model = default_library().get("GraphMat")
        assert model.has("SpmvIteration")
        assert model.has("SpmvMultiply")

    def test_pgxd_models_push_pull(self):
        model = default_library().get("PGX.D")
        phase = model.find("ComputePhase")
        assert any(i.name == "Direction" for i in phase.infos)

    def test_library_count(self):
        # 7 Table 1 platforms + the generic domain-level model.
        assert len(default_library().platforms()) == 8
