"""Multi-process archive store tests.

Regression suite for the concurrent-writer guarantees: N forked
processes each ``save()`` into one store, and the final index must
contain every entry and be byte-identical to a fresh
``rebuild_index()`` over the same files.  Before the advisory lock,
interleaved read-modify-write cycles silently dropped entries.
"""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.core.archive.archive import ArchivedOperation, PerformanceArchive
from repro.core.archive.store import ArchiveStore, atomic_write_text

WRITERS = 8
SAVES_PER_WRITER = 4


def _make_archive(job_id: str) -> PerformanceArchive:
    root = ArchivedOperation(f"{job_id}:u0", "Job", "Client", 0.0, 10.0)
    for i in range(3):
        child = ArchivedOperation(
            f"{job_id}:u{i + 1}", f"Superstep-{i}", "Master",
            float(i), float(i + 1), infos={"Duration": 1.0}, parent=root,
        )
        root.children.append(child)
    return PerformanceArchive(job_id, root, platform="Test",
                              metadata={"algorithm": "bfs", "dataset": "d"})


def _writer(directory: str, writer: int) -> None:
    store = ArchiveStore(directory)
    for i in range(SAVES_PER_WRITER):
        store.save(_make_archive(f"job-{writer}-{i}"))


@pytest.fixture()
def fork():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        pytest.skip("fork start method unavailable")


class TestConcurrentWriters:
    def test_no_index_entries_lost(self, tmp_path, fork):
        processes = [
            fork.Process(target=_writer, args=(str(tmp_path), w))
            for w in range(WRITERS)
        ]
        for p in processes:
            p.start()
        for p in processes:
            p.join(timeout=60)
            assert p.exitcode == 0

        expected = {
            f"job-{w}-{i}"
            for w in range(WRITERS)
            for i in range(SAVES_PER_WRITER)
        }
        index = json.loads((tmp_path / "index.json").read_text())
        assert set(index) == expected

        # The incrementally-maintained index must be byte-for-byte what
        # a from-scratch rebuild over the same archives produces.
        incremental = (tmp_path / "index.json").read_text()
        store = ArchiveStore(tmp_path)
        store.rebuild_index()
        assert (tmp_path / "index.json").read_text() == incremental
        assert len(store) == WRITERS * SAVES_PER_WRITER

    def test_interleaved_save_and_delete(self, tmp_path, fork):
        seed = ArchiveStore(tmp_path)
        for w in range(WRITERS):
            seed.save(_make_archive(f"stale-{w}"))

        def churn(directory: str, writer: int) -> None:
            store = ArchiveStore(directory)
            store.save(_make_archive(f"fresh-{writer}"))
            store.delete(f"stale-{writer}")

        processes = [
            fork.Process(target=churn, args=(str(tmp_path), w))
            for w in range(WRITERS)
        ]
        for p in processes:
            p.start()
        for p in processes:
            p.join(timeout=60)
            assert p.exitcode == 0

        seed.refresh()
        assert seed.list() == sorted(
            f"fresh-{w}" for w in range(WRITERS)
        )


class TestAtomicWrite:
    def test_unique_tmp_names(self, tmp_path):
        # Two concurrent writers must not share a tmp sibling; the
        # names embed pid + counter so successive writes differ.
        target = tmp_path / "file.txt"
        atomic_write_text(target, "one")
        atomic_write_text(target, "two")
        assert target.read_text() == "two"
        assert [p for p in tmp_path.iterdir() if p.suffix == ".tmp"] == []

    def test_failed_write_cleans_tmp(self, tmp_path):
        target = tmp_path / "file.txt"
        with pytest.raises(TypeError):
            atomic_write_text(target, 123)  # type: ignore[arg-type]
        assert list(tmp_path.iterdir()) == []
