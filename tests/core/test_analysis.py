"""Tests for choke-point analysis, regression testing, and diagnosis."""

import pytest

from repro.core.analysis.chokepoint import (
    _merge_intervals,
    find_choke_points,
    render_choke_points,
)
from repro.core.analysis.diagnosis import diagnose, render_findings
from repro.core.analysis.regression import (
    PerformanceRegressionError,
    assert_no_regression,
    compare_archives,
)
from repro.core.archive.archive import ArchivedOperation, PerformanceArchive
from repro.errors import ArchiveError, VisualizationError


def leaf(parent, mission, actor, start, end, uid=None):
    op = ArchivedOperation(
        uid=uid or f"{mission}@{actor}@{start}",
        mission=mission, actor=actor, start_time=start, end_time=end,
        parent=parent,
    )
    parent.children.append(op)
    return op


def synthetic_archive(job_id="job", platform="Giraph", straggler=None,
                      recovery=False, makespan=100.0,
                      straggler_duration=8.0):
    """An archive with 5 supersteps x 4 workers of Compute leaves."""
    root = ArchivedOperation("root", "Job", "Client", 0.0, makespan)
    meta = {"algorithm": "bfs", "dataset": "d"}
    load = leaf(root, "LocalLoad", "Worker-1", 0.0, 30.0, uid="load")
    t = 30.0
    for step in range(5):
        for w in range(1, 5):
            duration = 4.0
            if straggler is not None and w == straggler:
                duration = straggler_duration
            leaf(root, f"Compute-{step}", f"Worker-{w}", t, t + duration)
        if recovery and step == 2:
            leaf(root, f"RecoverWorker-{step}", "Master", t + 8, t + 16)
        t += 10.0
    env = [(float(ts), "n1", 8.0) for ts in range(0, 30)]
    env += [(float(ts), "n1", 1.0) for ts in range(30, 100)]
    return PerformanceArchive(job_id, root, platform=platform,
                              metadata=meta, env_samples=env)


class TestMergeIntervals:
    def test_disjoint(self):
        assert _merge_intervals([(0, 1), (2, 3)]) == [(0, 1), (2, 3)]

    def test_overlapping(self):
        assert _merge_intervals([(0, 5), (3, 8)]) == [(0, 8)]

    def test_touching(self):
        assert _merge_intervals([(0, 2), (2, 4)]) == [(0, 4)]

    def test_nested(self):
        assert _merge_intervals([(0, 10), (2, 3)]) == [(0, 10)]

    def test_unsorted_input(self):
        assert _merge_intervals([(5, 6), (0, 1)]) == [(0, 1), (5, 6)]

    def test_empty(self):
        assert _merge_intervals([]) == []


class TestChokePoints:
    def test_dominant_operation_first(self):
        archive = synthetic_archive()
        points = find_choke_points(archive, min_share=0.01)
        assert points[0].mission == "LocalLoad"
        assert points[0].share == pytest.approx(0.30)

    def test_parallel_instances_counted_once(self):
        archive = synthetic_archive()
        compute = next(p for p in find_choke_points(archive, min_share=0.01)
                       if p.mission == "Compute")
        # 5 supersteps x 4s wall each (workers run in parallel).
        assert compute.wall_seconds == pytest.approx(20.0)
        assert compute.instances == 20

    def test_classification_from_env(self):
        archive = synthetic_archive()
        points = {p.mission: p for p in
                  find_choke_points(archive, min_share=0.01)}
        assert points["LocalLoad"].bound == "cpu-bound"
        assert points["Compute"].bound == "latency-bound"

    def test_unknown_without_env(self):
        archive = synthetic_archive()
        archive.env_samples.clear()
        points = find_choke_points(archive, min_share=0.01)
        assert all(p.bound == "unknown" for p in points)

    def test_min_share_filters(self):
        archive = synthetic_archive()
        points = find_choke_points(archive, min_share=0.25)
        assert [p.mission for p in points] == ["LocalLoad"]

    def test_top_n(self):
        archive = synthetic_archive()
        assert len(find_choke_points(archive, top_n=1, min_share=0.0)) == 1

    def test_rejects_zero_makespan(self):
        root = ArchivedOperation("r", "Job", "C", 5.0, 5.0)
        with pytest.raises(VisualizationError):
            find_choke_points(PerformanceArchive("j", root))

    def test_render(self):
        archive = synthetic_archive()
        text = render_choke_points(find_choke_points(archive, min_share=0.01))
        assert "LocalLoad" in text
        assert "cpu-bound" in text

    def test_real_giraph_archive(self, giraph_archive):
        points = find_choke_points(giraph_archive)
        assert points
        missions = [p.mission for p in points]
        assert "LocalLoad" in missions or "LocalStartup" in missions


class TestRegression:
    def test_identical_runs_pass(self):
        a = synthetic_archive("a")
        b = synthetic_archive("b")
        report = compare_archives(a, b)
        assert report.ok
        assert report.makespan_ratio == pytest.approx(1.0)

    def test_regression_detected(self):
        base = synthetic_archive("base")
        bad = synthetic_archive("bad", straggler=2, makespan=120.0)
        report = compare_archives(base, bad)
        assert not report.ok
        assert any(d.mission == "Compute" for d in report.regressions)

    def test_small_absolute_deltas_ignored(self):
        base = synthetic_archive("base")
        # A 0.2s regression on a 4s op is >10% but below the noise floor.
        bad = synthetic_archive("bad")
        for op in bad.walk():
            if op.mission_base == "Compute" and op.actor == "Worker-1":
                op.end_time = op.end_time + 0.004
        report = compare_archives(base, bad, min_abs_delta_s=0.5)
        assert report.ok

    def test_new_operation_is_regression(self):
        base = synthetic_archive("base")
        bad = synthetic_archive("bad", recovery=True)
        report = compare_archives(base, bad)
        assert any(d.mission == "RecoverWorker" for d in report.regressions)

    def test_mismatched_workloads_rejected(self):
        a = synthetic_archive("a")
        b = synthetic_archive("b", platform="PowerGraph")
        with pytest.raises(ArchiveError):
            compare_archives(a, b)

    def test_bad_threshold_rejected(self):
        a = synthetic_archive("a")
        with pytest.raises(ArchiveError):
            compare_archives(a, a, threshold=0.9)

    def test_assert_no_regression_raises(self):
        base = synthetic_archive("base")
        bad = synthetic_archive("bad", straggler=2)
        with pytest.raises(PerformanceRegressionError):
            assert_no_regression(base, bad)

    def test_assert_no_regression_returns_report(self):
        a = synthetic_archive("a")
        report = assert_no_regression(a, synthetic_archive("b"))
        assert report.ok

    def test_render(self):
        base = synthetic_archive("base")
        bad = synthetic_archive("bad", straggler=3)
        text = compare_archives(base, bad).render_text()
        assert "REGRESSION" in text
        assert "bad vs base" in text


class TestDiagnosis:
    def test_healthy_synthetic_has_no_critical(self):
        findings = diagnose(synthetic_archive())
        assert all(f.severity != "critical" for f in findings)

    def test_straggler_detected(self):
        findings = diagnose(synthetic_archive(straggler=3))
        stragglers = [f for f in findings if f.kind == "straggler"]
        assert len(stragglers) == 1
        assert stragglers[0].subject == "Worker-3"
        assert stragglers[0].severity == "critical"

    def test_recovery_detected(self):
        findings = diagnose(synthetic_archive(recovery=True))
        recoveries = [f for f in findings if f.kind == "recovery"]
        assert len(recoveries) == 1
        assert "RecoverWorker-2" in recoveries[0].subject

    def test_imbalance_detected_with_extreme_straggler(self):
        # max/mean = 12 / 6 = 2.0, above the 1.8 imbalance threshold.
        findings = diagnose(synthetic_archive(straggler=1,
                                              straggler_duration=12.0))
        assert any(f.kind == "imbalance" for f in findings)

    def test_moderate_skew_not_flagged_as_imbalance(self):
        # max/mean = 8 / 5 = 1.6, below the threshold: straggler yes,
        # per-superstep imbalance no.
        findings = diagnose(synthetic_archive(straggler=1))
        assert not any(f.kind == "imbalance" for f in findings)
        assert any(f.kind == "straggler" for f in findings)

    def test_critical_sorted_first(self):
        findings = diagnose(synthetic_archive(straggler=2, recovery=True))
        severities = [f.severity for f in findings]
        assert severities == sorted(
            severities, key=lambda s: 0 if s == "critical" else 1)

    def test_few_iterations_no_straggler_call(self):
        """Two iterations are not enough evidence for a straggler."""
        root = ArchivedOperation("r", "Job", "C", 0.0, 10.0)
        for step in range(2):
            for w in range(1, 3):
                duration = 5.0 if w == 1 else 1.0
                leaf(root, f"Compute-{step}", f"Worker-{w}",
                     step * 5.0, step * 5.0 + duration)
        archive = PerformanceArchive("j", root)
        findings = diagnose(archive)
        assert not any(f.kind == "straggler" for f in findings)

    def test_render_findings(self):
        text = render_findings(diagnose(synthetic_archive(straggler=2)))
        assert "straggler" in text
        assert render_findings([]) == "no findings: the run looks healthy"


class TestEndToEndFaultDiagnosis:
    """Inject faults, run, archive, diagnose — the full loop."""

    def test_injected_straggler_found(self, tiny_graph):
        from repro.core.archive.builder import build_archive
        from repro.core.model.giraph_model import giraph_model
        from repro.core.monitor.session import MonitoringSession
        from repro.platforms.base import JobRequest
        from repro.platforms.faults import FaultPlan
        from repro.platforms.pregel.engine import GiraphPlatform
        from tests.conftest import make_giraph_cluster

        platform = GiraphPlatform(make_giraph_cluster())
        platform.deploy_dataset("tiny", tiny_graph)
        slow_node = platform.cluster.node_names[4]  # Worker-5
        platform.inject_faults(FaultPlan(
            slow_nodes={slow_node: 3.0},
            crash_worker=1, crash_superstep=2,
        ))
        run = MonitoringSession(platform).run(JobRequest(
            "bfs", "tiny", 8, params={"source": 0}))
        archive, _ = build_archive(run, giraph_model())
        findings = diagnose(archive)
        kinds = {f.kind for f in findings}
        assert "recovery" in kinds
        stragglers = [f for f in findings if f.kind == "straggler"]
        assert any(f.subject == "Worker-5" for f in stragglers)


class TestCompleteness:
    def test_pristine_archive_is_complete(self):
        from repro.core.analysis.completeness import assess_completeness
        report = assess_completeness(synthetic_archive())
        assert report.complete
        assert report.score == 1.0
        assert report.inferred_missions == []

    def test_inferred_and_missing_counted(self):
        from repro.core.analysis.completeness import assess_completeness
        archive = synthetic_archive()
        ops = [op for op in archive.walk() if op is not archive.root]
        ops[0].mark_inferred()
        ops[1].end_time = None
        report = assess_completeness(archive)
        assert report.inferred == 1
        assert report.missing == 1
        assert 0 < report.score < 1
        assert ops[0].mission.split("-")[0] in \
            {m.split("-")[0] for m in report.inferred_missions}

    def test_diagnose_flags_incomplete_archive(self):
        archive = synthetic_archive()
        next(iter(archive.root.children)).mark_inferred()
        findings = diagnose(archive)
        incomplete = [f for f in findings if f.kind == "incomplete"]
        assert len(incomplete) == 1
        assert incomplete[0].severity == "warning"
        assert "completeness" in incomplete[0].evidence

    def test_mostly_inferred_archive_is_critical(self):
        archive = synthetic_archive()
        for op in archive.walk():
            op.mark_inferred()
        findings = diagnose(archive)
        incomplete = [f for f in findings if f.kind == "incomplete"]
        assert incomplete[0].severity == "critical"

    def test_render_text_mentions_inferred_missions(self):
        from repro.core.analysis.completeness import assess_completeness
        archive = synthetic_archive()
        archive.root.mark_inferred()
        text = assess_completeness(archive).render_text()
        assert "Job" in text
        assert "inferred" in text


class TestEffectiveMakespan:
    def test_uses_root_makespan_when_present(self):
        from repro.core.analysis.completeness import effective_makespan
        assert effective_makespan(synthetic_archive()) == 100.0

    def test_falls_back_to_observed_span(self):
        from repro.core.analysis.completeness import effective_makespan
        root = ArchivedOperation("r", "Job", "C")  # untimed root
        leaf(root, "A", "W", 2.0, 9.0)
        leaf(root, "B", "W", 5.0, 14.0)
        assert effective_makespan(PerformanceArchive("j", root)) == 12.0

    def test_rejects_untimed_archive(self):
        from repro.core.analysis.completeness import effective_makespan
        root = ArchivedOperation("r", "Job", "C", 5.0, 5.0)
        with pytest.raises(VisualizationError):
            effective_makespan(PerformanceArchive("j", root))

    def test_choke_points_on_partial_archive(self):
        root = ArchivedOperation("r", "Job", "C")
        leaf(root, "LocalLoad", "W", 0.0, 30.0)
        leaf(root, "Compute-0", "W", 30.0, 40.0)
        points = find_choke_points(PerformanceArchive("j", root),
                                   min_share=0.0)
        assert points[0].mission == "LocalLoad"
