"""Unit tests for monitoring: log parsing, env monitor, collector, session."""

import pytest

from repro.cluster.cluster import das5_cluster
from repro.core.monitor.collector import collect_platform_log, split_by_job
from repro.core.monitor.envmonitor import EnvironmentMonitor
from repro.core.monitor.logparser import (
    parse_log,
    parse_log_line,
    parse_log_report,
)
from repro.core.monitor.records import EnvSample, LogRecord
from repro.errors import LogParseError, MonitorError
from repro.platforms.base import JobResult


class TestParseLogLine:
    def test_start_event(self):
        record = parse_log_line(
            "GRANULA ts=1.5 job=j1 event=start uid=op1 parent=- "
            "mission=LoadGraph actor=Master"
        )
        assert record.is_start
        assert record.timestamp == 1.5
        assert record.mission == "LoadGraph"
        assert record.actor == "Master"
        assert record.parent_uid is None

    def test_start_with_parent(self):
        record = parse_log_line(
            "GRANULA ts=1 job=j event=start uid=op2 parent=op1 "
            "mission=X actor=Y"
        )
        assert record.parent_uid == "op1"

    def test_end_event(self):
        record = parse_log_line("GRANULA ts=2 job=j event=end uid=op1")
        assert record.is_end

    def test_info_event(self):
        record = parse_log_line(
            "GRANULA ts=2 job=j event=info uid=op1 name=Bytes value=42"
        )
        assert record.is_info
        assert record.info_name == "Bytes"
        assert record.info_value == "42"

    def test_missing_required_field(self):
        with pytest.raises(LogParseError):
            parse_log_line("GRANULA ts=1 event=start uid=op1")

    def test_bad_timestamp(self):
        with pytest.raises(LogParseError):
            parse_log_line("GRANULA ts=abc job=j event=end uid=op1")

    def test_unknown_event(self):
        with pytest.raises(LogParseError):
            parse_log_line("GRANULA ts=1 job=j event=pause uid=op1")

    def test_start_missing_mission(self):
        with pytest.raises(LogParseError):
            parse_log_line("GRANULA ts=1 job=j event=start uid=op1 parent=-")

    def test_info_missing_value(self):
        with pytest.raises(LogParseError):
            parse_log_line(
                "GRANULA ts=1 job=j event=info uid=op1 name=Bytes")

    def test_not_granula(self):
        with pytest.raises(LogParseError):
            parse_log_line("INFO normal platform logging")


class TestParseLog:
    GOOD = [
        "2017-01-01 INFO platform noise",
        "GRANULA ts=0 job=j event=start uid=a parent=- mission=Job actor=C",
        "GRANULA ts=1 job=j event=end uid=a",
    ]

    def test_skips_foreign_lines(self):
        records, bad = parse_log(self.GOOD)
        assert len(records) == 2
        assert bad == []

    def test_strict_raises_on_malformed(self):
        lines = self.GOOD + ["GRANULA ts=zzz job=j event=end uid=a"]
        with pytest.raises(LogParseError):
            parse_log(lines, strict=True)

    def test_lenient_collects_malformed(self):
        lines = self.GOOD + ["GRANULA ts=zzz job=j event=end uid=a"]
        records, bad = parse_log(lines, strict=False)
        assert len(records) == 2
        assert len(bad) == 1


class TestParseReport:
    LINES = TestParseLog.GOOD + ["GRANULA ts=zzz job=j event=end uid=a"]

    def test_counts_account_for_every_line(self):
        records, report = parse_log_report(self.LINES, strict=False)
        assert report.total_lines == 4
        assert report.foreign_lines == 1
        assert report.records == 2
        assert report.malformed == 1
        assert len(records) == 2

    def test_summary_is_flat(self):
        _, report = parse_log_report(self.LINES, strict=False)
        assert report.summary() == {
            "total_lines": 4,
            "foreign_lines": 1,
            "records": 2,
            "malformed_lines": 1,
        }

    def test_strict_still_raises(self):
        with pytest.raises(LogParseError):
            parse_log_report(self.LINES, strict=True)


class TestRunSummary:
    def test_summary_surfaces_parse_statistics(self, giraph_run):
        summary = giraph_run.summary()
        assert summary["job_id"] == giraph_run.job_id
        assert summary["records"] == len(giraph_run.records)
        assert summary["nodes"] == len(giraph_run.node_names)
        assert summary["malformed_lines"] == 0
        assert summary["foreign_lines"] >= 0
        assert summary["makespan"] > 0


class TestRecords:
    def test_log_record_validation(self):
        with pytest.raises(MonitorError):
            LogRecord(1.0, "j", "explode", "op1")
        with pytest.raises(MonitorError):
            LogRecord(1.0, "j", "end", "")

    def test_env_sample_fields(self):
        sample = EnvSample(1.0, "node1", 3.5)
        assert sample.node == "node1"
        assert sample.cpu == 3.5


class TestEnvironmentMonitor:
    def test_rejects_bad_step(self):
        with pytest.raises(MonitorError):
            EnvironmentMonitor(das5_cluster(2), step=0)

    def test_sample_window_per_node(self):
        cluster = das5_cluster(2)
        cluster.nodes[0].work(0.0, 2.0, 4.0)
        monitor = EnvironmentMonitor(cluster)
        series = monitor.sample_window(0.0, 3.0)
        assert len(series) == 2
        busy = series[cluster.node_names[0]]
        assert busy.values == [4.0, 4.0, 0.0]

    def test_samples_flat_and_ordered(self):
        cluster = das5_cluster(2)
        cluster.nodes[1].work(0.0, 1.0, 2.0)
        samples = EnvironmentMonitor(cluster).samples(0.0, 2.0)
        assert len(samples) == 4
        timestamps = [s.timestamp for s in samples]
        assert timestamps == sorted(timestamps)

    def test_node_filter(self):
        cluster = das5_cluster(3)
        monitor = EnvironmentMonitor(cluster)
        only = monitor.sample_window(0.0, 1.0, nodes=[cluster.node_names[0]])
        assert list(only) == [cluster.node_names[0]]

    def test_cluster_series_sums(self):
        cluster = das5_cluster(2)
        cluster.nodes[0].work(0.0, 1.0, 1.0)
        cluster.nodes[1].work(0.0, 1.0, 2.0)
        merged = EnvironmentMonitor(cluster).cluster_series(0.0, 1.0)
        assert merged.values == [3.0]


class TestCollector:
    def make_result(self, lines, job_id="j"):
        return JobResult(
            job_id=job_id, algorithm="bfs", dataset="d", output={},
            started_at=0.0, finished_at=1.0, log_lines=lines,
        )

    def test_collects_records(self):
        lines = [
            "GRANULA ts=0 job=j event=start uid=a parent=- mission=X actor=Y",
            "GRANULA ts=1 job=j event=end uid=a",
        ]
        records = collect_platform_log(self.make_result(lines))
        assert len(records) == 2

    def test_empty_log_rejected(self):
        with pytest.raises(MonitorError):
            collect_platform_log(self.make_result(["no granula here"]))

    def test_foreign_job_rejected(self):
        lines = [
            "GRANULA ts=0 job=OTHER event=start uid=a parent=- "
            "mission=X actor=Y",
        ]
        with pytest.raises(MonitorError):
            collect_platform_log(self.make_result(lines, job_id="j"))

    def test_split_by_job(self):
        records, _ = parse_log([
            "GRANULA ts=0 job=a event=end uid=x",
            "GRANULA ts=0 job=b event=end uid=y",
            "GRANULA ts=1 job=a event=end uid=z",
        ])
        groups = split_by_job(records)
        assert sorted(groups) == ["a", "b"]
        assert len(groups["a"]) == 2


class TestMonitoringSession:
    def test_monitored_run_contents(self, giraph_run):
        assert giraph_run.records
        assert giraph_run.env_series
        assert giraph_run.env_samples
        assert len(giraph_run.node_names) == 8
        assert giraph_run.job_id == giraph_run.result.job_id

    def test_env_window_matches_job(self, giraph_run):
        start = giraph_run.result.started_at
        for series in giraph_run.env_series.values():
            assert series.times[0] == pytest.approx(start)

    def test_records_belong_to_job(self, giraph_run):
        assert all(r.job_id == giraph_run.job_id
                   for r in giraph_run.records)
