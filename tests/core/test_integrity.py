"""Tests for archive integrity: checksums, validation, repair,
JSON-prefix recovery, and corruption-tolerant storage."""

import json

import pytest

from repro.core.archive.archive import (
    PROVENANCE_INFERRED,
    ArchivedOperation,
    PerformanceArchive,
)
from repro.core.archive.integrity import (
    load_salvaged,
    recover_json,
    repair_archive,
    validate_archive,
    validate_text,
    worst_severity,
)
from repro.core.archive.serialize import (
    archive_from_json,
    archive_to_json,
    payload_checksum,
)
from repro.core.archive.store import ArchiveStore
from repro.errors import ArchiveError, ArchiveIntegrityError


def op(uid, mission, start=None, end=None, children=()):
    operation = ArchivedOperation(
        uid=uid, mission=mission, actor="A",
        start_time=start, end_time=end,
    )
    for child in children:
        child.parent = operation
        operation.children.append(child)
    return operation


def make_archive(root):
    return PerformanceArchive(job_id="job-1", root=root, platform="Test")


class TestValidateArchive:
    def test_clean_archive_has_no_findings(self):
        root = op("j", "Job", 0.0, 10.0,
                  [op("a", "Phase", 1.0, 5.0)])
        assert validate_archive(make_archive(root)) == []

    def test_negative_duration_is_error(self):
        root = op("j", "Job", 10.0, 0.0)
        findings = validate_archive(make_archive(root))
        assert [f.code for f in findings] == ["negative-duration"]
        assert worst_severity(findings) == "error"

    def test_child_outside_parent_is_warning(self):
        root = op("j", "Job", 0.0, 10.0,
                  [op("a", "Phase", 1.0, 12.0)])
        findings = validate_archive(make_archive(root))
        assert any(f.code == "child-outside-parent" for f in findings)

    def test_missing_timestamps_are_warnings(self):
        root = op("j", "Job", 0.0, 10.0, [op("a", "Phase", 1.0, None)])
        codes = {f.code for f in validate_archive(make_archive(root))}
        assert codes == {"missing-end"}


class TestRepairArchive:
    def test_fills_parent_interval_from_children(self):
        root = op("j", "Job", None, None,
                  [op("a", "Phase", 1.0, 5.0), op("b", "Phase", 4.0, 9.0)])
        archive, fixes = repair_archive(make_archive(root))
        assert archive.root.start_time == 1.0
        assert archive.root.end_time == 9.0
        assert archive.root.provenance == PROVENANCE_INFERRED
        assert len(fixes) == 2

    def test_fills_child_from_parent_and_clamps(self):
        root = op("j", "Job", 0.0, 10.0,
                  [op("a", "Phase", None, 12.0)])
        archive, fixes = repair_archive(make_archive(root))
        child = archive.root.children[0]
        assert child.start_time == 0.0
        assert child.end_time == 10.0
        assert child.provenance == PROVENANCE_INFERRED

    def test_swaps_inverted_interval(self):
        root = op("j", "Job", 10.0, 0.0)
        archive, fixes = repair_archive(make_archive(root))
        assert archive.root.start_time == 0.0
        assert archive.root.end_time == 10.0
        assert [f.code for f in fixes] == ["negative-duration"]

    def test_repair_clears_structural_findings(self):
        root = op("j", "Job", 10.0, 0.0,
                  [op("a", "Phase", None, 12.0),
                   op("b", "Phase", 2.0, None)])
        archive, _ = repair_archive(make_archive(root))
        remaining = validate_archive(archive)
        assert worst_severity(remaining) in (None, "warning", "info")
        assert not any(
            f.code in ("negative-duration", "child-outside-parent")
            for f in remaining
        )

    def test_durations_refreshed(self):
        root = op("j", "Job", None, None, [op("a", "Phase", 1.0, 5.0)])
        archive, _ = repair_archive(make_archive(root))
        assert archive.root.infos["Duration"] == 4.0

    def test_unfixable_stays_reported(self):
        root = op("j", "Job")  # no timestamps anywhere
        archive, fixes = repair_archive(make_archive(root))
        assert fixes == []
        codes = {f.code for f in validate_archive(archive)}
        assert codes == {"missing-start", "missing-end"}


class TestChecksums:
    def archive(self):
        return make_archive(op("j", "Job", 0.0, 10.0))

    def test_round_trip_verifies(self):
        text = archive_to_json(self.archive())
        restored = archive_from_json(text, verify=True)
        assert restored.job_id == "job-1"

    def test_tamper_raises_typed_error(self):
        text = archive_to_json(self.archive()).replace(
            '"platform":"Test"', '"platform":"Best"')
        with pytest.raises(ArchiveIntegrityError):
            archive_from_json(text)

    def test_tamper_skippable(self):
        text = archive_to_json(self.archive()).replace(
            '"platform":"Test"', '"platform":"Best"')
        assert archive_from_json(text, verify=False).platform == "Best"

    def test_tamper_is_a_critical_finding(self):
        text = archive_to_json(self.archive()).replace(
            '"platform":"Test"', '"platform":"Best"')
        findings = validate_text(text)
        assert [f.code for f in findings] == ["checksum-mismatch"]
        assert worst_severity(findings) == "critical"

    def test_checksum_ignores_whitespace(self):
        document = json.loads(archive_to_json(self.archive()))
        compact = json.dumps(document)
        assert payload_checksum(json.loads(compact)) == \
            document["integrity"]["checksum"]

    def test_legacy_v1_archive_still_loads(self):
        document = json.loads(archive_to_json(self.archive()))
        document["format_version"] = 1
        del document["integrity"]
        restored = archive_from_json(json.dumps(document))
        assert restored.job_id == "job-1"
        assert validate_text(json.dumps(document)) == []

    def test_unknown_version_rejected(self):
        document = json.loads(archive_to_json(self.archive()))
        document["format_version"] = 99
        with pytest.raises(ArchiveIntegrityError):
            archive_from_json(json.dumps(document))
        assert any(f.code == "unknown-version"
                   for f in validate_text(json.dumps(document)))

    def test_not_json_raises_archive_error(self):
        with pytest.raises(ArchiveError):
            archive_from_json("{ nope")


class TestRecoverJson:
    def test_intact_text_drops_nothing(self):
        doc, dropped = recover_json('{"a": [1, 2, {"b": "c"}]}')
        assert doc == {"a": [1, 2, {"b": "c"}]}
        assert dropped == 0

    @pytest.mark.parametrize("fraction", [0.3, 0.5, 0.7, 0.9])
    def test_truncated_prefix_recovered(self, fraction):
        text = json.dumps({
            "items": [{"id": i, "name": f"op-{i}", "values": [i, i * 2]}
                      for i in range(20)],
            "meta": {"nested": {"deep": True}},
        })
        cut = text[: int(len(text) * fraction)]
        doc, dropped = recover_json(cut)
        assert doc is not None
        assert dropped >= 0
        assert isinstance(doc, dict)

    def test_string_with_braces_handled(self):
        text = json.dumps({"tricky": 'a "quoted" } ] value', "n": 1})
        doc, dropped = recover_json(text[:-5])
        assert doc is not None

    def test_garbage_returns_none(self):
        doc, _ = recover_json("\x00\x01 not json at all")
        assert doc is None


class TestLoadSalvaged:
    def archive_text(self):
        root = op("j", "Job", 0.0, 10.0,
                  [op(f"c{i}", f"Phase-{i}", float(i), float(i + 1))
                   for i in range(8)])
        return archive_to_json(make_archive(root))

    def test_pristine_loads_without_findings(self):
        archive, findings = load_salvaged(self.archive_text())
        assert archive is not None
        assert findings == []

    def test_truncated_file_partially_recovered(self):
        text = self.archive_text()
        archive, findings = load_salvaged(text[: int(len(text) * 0.6)])
        assert archive is not None
        assert any(f.code == "truncated-json" for f in findings)
        assert len(list(archive.walk())) >= 2

    def test_garbage_yields_findings_not_exceptions(self):
        archive, findings = load_salvaged("\x00 utter garbage")
        assert archive is None
        assert [f.code for f in findings] == ["not-json"]

    def test_non_object_document(self):
        archive, findings = load_salvaged("[1, 2, 3]")
        assert archive is None
        assert any(f.code == "not-archive" for f in findings)

    def test_foreign_json_object(self):
        archive, findings = load_salvaged('{"hello": "world"}')
        assert archive is None
        assert any(f.code == "not-archive" for f in findings)


class TestStoreResilience:
    def make_store(self, tmp_path):
        store = ArchiveStore(tmp_path)
        store.save(make_archive(op("j", "Job", 0.0, 10.0)))
        return store

    def test_corrupt_index_rebuilt(self, tmp_path):
        self.make_store(tmp_path)
        (tmp_path / "index.json").write_text("{ not json")
        reopened = ArchiveStore(tmp_path)
        assert "job-1" in reopened
        assert json.loads((tmp_path / "index.json").read_text())

    def test_wrong_shape_index_rebuilt(self, tmp_path):
        self.make_store(tmp_path)
        (tmp_path / "index.json").write_text('["a", "b"]')
        assert "job-1" in ArchiveStore(tmp_path)

    def test_stale_index_rebuilt(self, tmp_path):
        store = self.make_store(tmp_path)
        # Simulate an archive written behind the index's back.
        other = make_archive(op("k", "Job", 0.0, 1.0))
        other.job_id = "job-2"
        path = tmp_path / "job-2.json"
        path.write_text(archive_to_json(other))
        assert "job-2" in ArchiveStore(tmp_path)

    def test_missing_index_with_archives_rebuilt(self, tmp_path):
        self.make_store(tmp_path)
        (tmp_path / "index.json").unlink()
        reopened = ArchiveStore(tmp_path)
        assert "job-1" in reopened

    def test_unreadable_archive_skipped_in_rebuild(self, tmp_path):
        self.make_store(tmp_path)
        (tmp_path / "broken.json").write_text("{ nope")
        (tmp_path / "index.json").write_text("garbage")
        reopened = ArchiveStore(tmp_path)
        assert "job-1" in reopened
        assert len(reopened) == 1

    def test_save_leaves_no_tmp_files(self, tmp_path):
        self.make_store(tmp_path)
        leftovers = [p for p in tmp_path.iterdir()
                     if p.suffix not in (".json", ".lock", ".gcol")]
        assert leftovers == []
