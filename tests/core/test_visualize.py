"""Unit tests for visualization: text primitives, SVG, breakdown,
utilization, gantt, timeline, HTML report."""

import pytest

from repro.core.archive.archive import ArchivedOperation, PerformanceArchive
from repro.core.visualize.breakdown import compute_breakdown
from repro.core.visualize.gantt import compute_gantt
from repro.core.visualize.palette import node_color, phase_color, phase_of
from repro.core.visualize.render_html import render_report_html
from repro.core.visualize.render_svg import SvgCanvas
from repro.core.visualize.render_text import (
    bar,
    format_percent,
    format_seconds,
    segmented_bar,
    sparkline,
    table,
)
from repro.core.visualize.timeline import render_timeline
from repro.core.visualize.utilization import compute_utilization
from repro.errors import VisualizationError


class TestRenderText:
    def test_bar_full_and_empty(self):
        assert bar(1.0, 10) == "##########"
        assert bar(0.0, 10) == ".........."

    def test_bar_clamped(self):
        assert bar(2.0, 4) == "####"
        assert bar(-1.0, 4) == "...."

    def test_segmented_bar(self):
        line = segmented_bar([0.5, 0.5], ["A", "B"], width=10)
        assert line == "AAAAABBBBB"

    def test_segmented_bar_partial(self):
        line = segmented_bar([0.3], ["X"], width=10)
        assert line == "XXX......."

    def test_segmented_bar_rounding_capped(self):
        line = segmented_bar([0.34, 0.33, 0.34], ["A", "B", "C"], width=10)
        assert len(line) == 10

    def test_segmented_bar_arity_checked(self):
        with pytest.raises(ValueError):
            segmented_bar([0.5], ["A", "B"])

    def test_sparkline_scales(self):
        line = sparkline([0.0, 5.0, 10.0])
        assert len(line) == 3
        assert line[0] == " "
        assert line[2] == "@"

    def test_sparkline_flat_zero(self):
        assert sparkline([0.0, 0.0]) == "  "

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_table_alignment(self):
        text = table(("A", "Bee"), [("1", "2"), ("333", "4")])
        lines = text.splitlines()
        assert lines[0].startswith("A")
        assert "---" in lines[1]
        assert len(lines) == 4

    def test_formatters(self):
        assert format_seconds(81.594) == "81.59s"
        assert format_percent(0.433) == "43.3%"


class TestPalette:
    def test_phase_of(self):
        assert phase_of("LoadGraph") == "Input/output"
        assert phase_of("Startup") == "Setup"
        assert phase_of("Unknown") == ""

    def test_phase_colors_distinct(self):
        colors = {phase_color(p) for p in
                  ("Setup", "Input/output", "Processing")}
        assert len(colors) == 3

    def test_node_color_cycles(self):
        assert node_color(0) == node_color(8)


class TestSvgCanvas:
    def test_document_shape(self):
        canvas = SvgCanvas(100, 50)
        canvas.rect(0, 0, 10, 10, fill="#ff0000")
        canvas.line(0, 0, 10, 10)
        canvas.polyline([(0, 0), (5, 5)])
        canvas.text(1, 1, "hello")
        svg = canvas.render()
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert "<rect" in svg and "<line" in svg
        assert "<polyline" in svg and ">hello</text>" in svg

    def test_text_escaped(self):
        canvas = SvgCanvas(10, 10)
        canvas.text(0, 0, "<&>")
        assert "&lt;&amp;&gt;" in canvas.render()

    def test_negative_rect_clamped(self):
        canvas = SvgCanvas(10, 10)
        canvas.rect(0, 0, -5, 5)
        assert "width='0.00'" in canvas.render()


class TestBreakdown:
    def test_shapes(self, giraph_archive):
        breakdown = compute_breakdown(giraph_archive)
        assert breakdown.total == pytest.approx(giraph_archive.makespan)
        missions = [m for m, _d, _s in breakdown.operations]
        assert missions == ["Startup", "LoadGraph", "ProcessGraph",
                            "OffloadGraph", "Cleanup"]
        total_share = sum(s for _m, _d, s in breakdown.operations)
        assert total_share == pytest.approx(1.0, abs=0.02)

    def test_phase_sums(self, giraph_archive):
        breakdown = compute_breakdown(giraph_archive)
        setup = breakdown.phases["Setup"][0]
        startup = next(d for m, d, _s in breakdown.operations
                       if m == "Startup")
        cleanup = next(d for m, d, _s in breakdown.operations
                       if m == "Cleanup")
        assert setup == pytest.approx(startup + cleanup)

    def test_share_of(self, giraph_archive):
        breakdown = compute_breakdown(giraph_archive)
        assert breakdown.share_of("LoadGraph") == pytest.approx(
            breakdown.operations[1][2])
        assert breakdown.share_of("Setup") > 0
        with pytest.raises(VisualizationError):
            breakdown.share_of("Ghost")

    def test_render_text_contains_figures(self, giraph_archive):
        text = compute_breakdown(giraph_archive).render_text()
        assert "TOTAL" in text
        assert "Setup" in text and "Input/output" in text

    def test_render_svg_valid(self, giraph_archive):
        svg = compute_breakdown(giraph_archive).render_svg()
        assert svg.startswith("<svg")
        assert "100.0%" in svg

    def test_rejects_zero_makespan(self):
        root = ArchivedOperation("u", "Job", "C", 1.0, 1.0)
        archive = PerformanceArchive("j", root)
        with pytest.raises(VisualizationError):
            compute_breakdown(archive)


class TestUtilization:
    def test_chart_data(self, giraph_archive):
        chart = compute_utilization(giraph_archive)
        assert len(chart.series) == 8
        assert chart.peak > 0
        missions = [m for m, _s, _e in chart.boundaries]
        assert "LoadGraph" in missions and "ProcessGraph" in missions

    def test_boundaries_ordered(self, giraph_archive):
        chart = compute_utilization(giraph_archive)
        starts = [s for _m, s, _e in chart.boundaries]
        assert starts == sorted(starts)

    def test_node_cpu_seconds_positive(self, giraph_archive):
        chart = compute_utilization(giraph_archive)
        for cpu in chart.node_cpu_seconds().values():
            assert cpu > 0

    def test_cpu_by_operation(self, giraph_archive):
        chart = compute_utilization(giraph_archive)
        by_op = chart.cpu_seconds_by_operation()
        assert by_op["LoadGraph"] > 0

    def test_busiest_node(self, giraph_archive):
        chart = compute_utilization(giraph_archive)
        node, cpu = chart.busiest_node("LoadGraph")
        assert node in chart.series
        assert cpu > 0
        with pytest.raises(VisualizationError):
            chart.busiest_node("Ghost")

    def test_renders(self, giraph_archive):
        chart = compute_utilization(giraph_archive)
        assert "CPU time/second" in chart.render_text()
        assert chart.render_svg().startswith("<svg")

    def test_rejects_archive_without_env(self):
        root = ArchivedOperation("u", "Job", "C", 0.0, 1.0)
        archive = PerformanceArchive("j", root)
        with pytest.raises(VisualizationError):
            compute_utilization(archive)


class TestGantt:
    def test_spans_cover_workers_and_steps(self, giraph_archive):
        gantt = compute_gantt(giraph_archive)
        assert len(gantt.workers) == 8
        assert len(gantt.supersteps) >= 2
        for span in gantt.spans:
            assert span.pre_start <= span.compute_start
            assert span.compute_start <= span.compute_end
            assert span.compute_end <= span.post_end

    def test_imbalance_at_least_one(self, giraph_archive):
        gantt = compute_gantt(giraph_archive)
        assert gantt.imbalance(gantt.dominant_superstep()) >= 1.0
        with pytest.raises(VisualizationError):
            gantt.imbalance(999)

    def test_overhead_fraction_bounds(self, giraph_archive):
        gantt = compute_gantt(giraph_archive)
        assert 0.0 <= gantt.overhead_fraction() <= 1.0

    def test_renders(self, giraph_archive):
        gantt = compute_gantt(giraph_archive)
        text = gantt.render_text()
        assert "dominant superstep" in text
        assert gantt.render_svg().startswith("<svg")

    def test_powergraph_view_with_gather(self, powergraph_archive):
        gantt = compute_gantt(
            powergraph_archive,
            compute_mission="Gather",
            pre_mission="Gather",
            post_mission="Scatter",
            container_mission="Iteration",
        )
        assert gantt.spans

    def test_missing_containers_rejected(self):
        root = ArchivedOperation("u", "Job", "C", 0.0, 1.0)
        archive = PerformanceArchive("j", root)
        with pytest.raises(VisualizationError):
            compute_gantt(archive)


class TestTimeline:
    def test_renders_tree(self, giraph_archive):
        text = render_timeline(giraph_archive, max_depth=2)
        assert "GiraphJob" in text
        assert "LoadGraph" in text
        assert "|" in text

    def test_max_depth_limits(self, giraph_archive):
        shallow = render_timeline(giraph_archive, max_depth=1)
        deep = render_timeline(giraph_archive, max_depth=4)
        assert len(deep) > len(shallow)

    def test_sibling_elision(self, giraph_archive):
        text = render_timeline(giraph_archive, max_children=2)
        assert "more" in text


class TestHtmlReport:
    def test_report_contains_both_archives(self, giraph_archive,
                                           powergraph_archive):
        html = render_report_html([giraph_archive, powergraph_archive])
        assert html.startswith("<!DOCTYPE html>")
        assert giraph_archive.job_id in html
        assert powergraph_archive.job_id in html
        assert "<svg" in html

    def test_report_without_gantt(self, giraph_archive):
        html = render_report_html([giraph_archive], include_gantt=False)
        assert "compute distribution" not in html


def hostile_archive():
    """An archive whose every dynamic string carries markup."""
    root = ArchivedOperation("u0", "Job<b>", 'Client"', 0.0, 10.0)
    child = ArchivedOperation(
        "u1", "Load<i>", "Worker<script>alert(1)</script>",
        0.0, 4.0, parent=root,
    )
    root.children.append(child)
    return PerformanceArchive(
        "job<img src=x onerror=alert(1)>",
        root,
        platform="Giraph<svg onload=alert(1)>",
        metadata={"dataset": "a<b&c", "algorithm": "bfs<script>"},
        env_samples=[(0.0, "n1", 2.0)],
    )


class TestHtmlEscaping:
    def test_hostile_metadata_is_escaped(self):
        html = render_report_html([hostile_archive()])
        assert "a<b&c" not in html
        assert "a&lt;b&amp;c" in html

    def test_hostile_job_id_and_platform_never_raw(self):
        html = render_report_html([hostile_archive()])
        assert "<img src=x" not in html
        assert "<svg onload" not in html
        assert "&lt;img src=x" in html

    def test_no_script_injection_anywhere(self):
        html = render_report_html([hostile_archive()])
        # The report owns exactly two <script> elements (the data blob
        # and the dashboard code): payload strings must never open more.
        assert html.count("<script>") == 2
        assert "alert(1)</script>" not in html

    def test_embedded_json_is_angle_bracket_free(self):
        html = render_report_html([hostile_archive()])
        start = html.index("window.GRANULA_DATA")
        end = html.index("</script>", start)
        blob = html[start:end]
        assert "<" not in blob
        assert "\\u003c" in blob

    def test_hostile_title_is_escaped(self, giraph_archive):
        html = render_report_html(
            [giraph_archive], title="<script>alert(2)</script>"
        )
        assert "<script>alert(2)" not in html
        assert "&lt;script&gt;alert(2)" in html


class TestDegradedVisuals:
    def test_breakdown_of_partial_archive_is_annotated(self, giraph_archive):
        from repro.core.archive.serialize import archive_from_json, archive_to_json

        archive = archive_from_json(archive_to_json(giraph_archive))
        loads = archive.root.children_of("LoadGraph")
        loads[0].mark_inferred()
        breakdown = compute_breakdown(archive)
        assert 0 < breakdown.completeness < 1
        assert "LoadGraph" in breakdown.inferred
        text = breakdown.render_text()
        assert "LoadGraph (inferred)" in text
        assert "PARTIAL ARCHIVE" in text

    def test_breakdown_of_pristine_archive_unchanged(self, giraph_archive):
        breakdown = compute_breakdown(giraph_archive)
        assert breakdown.completeness == 1.0
        assert breakdown.inferred == []
        assert "PARTIAL ARCHIVE" not in breakdown.render_text()

    def test_breakdown_falls_back_to_observed_span(self):
        root = ArchivedOperation("r", "GiraphJob", "C")
        for index, mission in enumerate(
                ("Startup", "LoadGraph", "ProcessGraph")):
            child = ArchivedOperation(
                f"c{index}", mission, "W",
                float(index * 10), float(index * 10 + 10), parent=root)
            root.children.append(child)
        breakdown = compute_breakdown(PerformanceArchive("j", root))
        assert breakdown.total == 30.0

    def test_gantt_marks_inferred_spans(self, giraph_archive):
        from repro.core.archive.serialize import archive_from_json, archive_to_json

        archive = archive_from_json(archive_to_json(giraph_archive))
        containers = archive.find(mission_base="LocalSuperstep")
        containers[0].mark_inferred()
        gantt = compute_gantt(archive)
        flagged = [s for s in gantt.spans if s.inferred]
        assert len(flagged) >= 1
        assert "inferred" in gantt.render_text()

    def test_gantt_of_pristine_archive_has_no_inferred(self, giraph_archive):
        gantt = compute_gantt(giraph_archive)
        assert all(not s.inferred for s in gantt.spans)
        assert "inferred" not in gantt.render_text()
