"""Tests for performance-model serialization (R2)."""

import pytest

from repro.core.model.giraph_model import giraph_model
from repro.core.model.hadoop_model import hadoop_model
from repro.core.model.info import DERIVED, InfoSpec
from repro.core.model.job import JobModel
from repro.core.model.library import domain_level_model
from repro.core.model.operation import OperationModel
from repro.core.model.powergraph_model import powergraph_model
from repro.core.model.rules import DerivationRule
from repro.core.model.serialize import (
    model_from_json,
    model_to_json,
    register_rule_type,
)
from repro.core.model.validation import validate_model
from repro.errors import ModelError


def assert_models_equal(a: JobModel, b: JobModel) -> None:
    assert a.platform == b.platform
    assert a.version == b.version
    assert a.size() == b.size()
    for na, nb in zip(a.walk(), b.walk()):
        assert na.mission == nb.mission
        assert na.actor_type == nb.actor_type
        assert na.level == nb.level
        assert na.multiplicity == nb.multiplicity
        assert na.description == nb.description
        assert [i.name for i in na.infos] == [i.name for i in nb.infos]
        assert [type(r).__name__ for r in na.rules] == [
            type(r).__name__ for r in nb.rules
        ]


class TestRoundtrip:
    @pytest.mark.parametrize("factory", [
        giraph_model, powergraph_model, hadoop_model, domain_level_model,
    ])
    def test_shipped_models_roundtrip(self, factory):
        model = factory()
        clone = model_from_json(model_to_json(model))
        assert_models_equal(model, clone)
        assert validate_model(clone) == []

    def test_rules_survive_with_parameters(self):
        model = giraph_model()
        clone = model_from_json(model_to_json(model))
        load_hdfs = clone.find("LoadHdfsData")
        rule = load_hdfs.rules[0]
        assert rule.target == "BytesRead"
        assert rule.source == "BytesRead"
        assert rule.child_mission == "LocalLoad"

    def test_levels_survive(self):
        clone = model_from_json(model_to_json(giraph_model()))
        assert [l.name for l in clone.levels] == [
            "domain", "system", "implementation"]

    def test_roundtrip_archives_identically(self, giraph_run):
        """A deserialized model drives archiving exactly like the
        original (the point of sharing models)."""
        from repro.core.archive.builder import build_archive

        original_archive, _ = build_archive(giraph_run, giraph_model())
        clone = model_from_json(model_to_json(giraph_model()))
        clone_archive, report = build_archive(giraph_run, clone)
        assert report.unmodeled == []
        assert clone_archive.size() == original_archive.size()
        for a, b in zip(original_archive.walk(), clone_archive.walk()):
            assert a.infos == b.infos


class TestErrors:
    def test_rejects_non_json(self):
        with pytest.raises(ModelError):
            model_from_json("{nope")

    def test_rejects_foreign_document(self):
        with pytest.raises(ModelError):
            model_from_json('{"format": "granula-archive"}')

    def test_rejects_unknown_rule_type(self):
        text = model_to_json(giraph_model()).replace(
            '"type": "ShareOfParentRule"', '"type": "MysteryRule"')
        with pytest.raises(ModelError):
            model_from_json(text)

    def test_unregistered_custom_rule_rejected_on_encode(self):
        class CustomRule(DerivationRule):
            def compute(self, operation):
                return 1

        root = OperationModel("Job", "C", level=1)
        root.add_info(InfoSpec("X", DERIVED))
        root.add_rule(CustomRule("X"))
        with pytest.raises(ModelError):
            model_to_json(JobModel("T", root))

    def test_custom_rule_with_codec(self):
        class TaggedRule(DerivationRule):
            def compute(self, operation):
                return 7

        register_rule_type(
            "TaggedRule",
            lambda rule: {"target": rule.target},
            lambda data: TaggedRule(data["target"]),
        )
        root = OperationModel("Job", "C", level=1)
        root.add_info(InfoSpec("X", DERIVED))
        root.add_rule(TaggedRule("X"))
        clone = model_from_json(model_to_json(JobModel("T", root)))
        assert type(clone.root.rules[0]).__name__ == "TaggedRule"

    def test_duplicate_codec_registration_rejected(self):
        with pytest.raises(ModelError):
            register_rule_type("DurationRule", lambda r: {}, lambda d: None)
