"""Unit tests for archives: structure, builder, query, serialize, store."""

import math

import pytest

from repro.core.archive.archive import ArchivedOperation, PerformanceArchive
from repro.core.archive.builder import build_archive
from repro.core.archive.query import ArchiveQuery
from repro.core.archive.serialize import archive_from_json, archive_to_json
from repro.core.archive.store import ArchiveStore
from repro.core.model.giraph_model import giraph_model
from repro.core.monitor.logparser import parse_log
from repro.core.monitor.session import MonitoredRun
from repro.errors import ArchiveBuildError, ArchiveError, QueryError
from repro.platforms.base import JobResult


def make_archive():
    root = ArchivedOperation("u0", "Job", "Client", 0.0, 10.0)
    load = ArchivedOperation("u1", "LoadGraph", "Master", 0.0, 4.0,
                             parent=root)
    root.children.append(load)
    for i in range(2):
        worker_op = ArchivedOperation(
            f"u2{i}", "LocalLoad", f"Worker-{i + 1}", 0.0, 2.0 + i,
            infos={"BytesRead": 100 * (i + 1)}, parent=load,
        )
        load.children.append(worker_op)
    process = ArchivedOperation("u3", "ProcessGraph", "Master", 4.0, 10.0,
                                parent=root)
    root.children.append(process)
    for k in range(3):
        step = ArchivedOperation(
            f"u4{k}", f"Superstep-{k}", "Master", 4.0 + 2 * k,
            6.0 + 2 * k, infos={"Duration": 2.0}, parent=process,
        )
        process.children.append(step)
    return PerformanceArchive("job-x", root, platform="Test",
                              env_samples=[(0.0, "n1", 2.0), (1.0, "n1", 3.0)])


class TestArchivedOperation:
    def test_duration(self):
        assert ArchivedOperation("u", "A", "x", 1.0, 3.5).duration == 2.5
        assert ArchivedOperation("u", "A", "x").duration is None

    def test_mission_iteration_split(self):
        op = ArchivedOperation("u", "Compute-4", "Worker-2")
        assert op.mission_base == "Compute"
        assert op.iteration == 4
        assert op.actor_base == "Worker"
        assert op.actor_index == 2

    def test_path(self):
        archive = make_archive()
        local = archive.find(mission_base="LocalLoad")[0]
        assert local.path == "Job/LoadGraph/LocalLoad"

    def test_child_lookup(self):
        archive = make_archive()
        assert archive.root.child("LoadGraph").uid == "u1"
        with pytest.raises(ArchiveError):
            archive.root.child("Ghost")

    def test_children_of(self):
        archive = make_archive()
        process = archive.root.child("ProcessGraph")
        assert len(process.children_of("Superstep")) == 3


class TestPerformanceArchive:
    def test_requires_job_id(self):
        with pytest.raises(ArchiveError):
            PerformanceArchive("", ArchivedOperation("u", "A", "x"))

    def test_duplicate_uid_rejected(self):
        root = ArchivedOperation("u", "A", "x")
        child = ArchivedOperation("u", "B", "x", parent=root)
        root.children.append(child)
        with pytest.raises(ArchiveError):
            PerformanceArchive("j", root)

    def test_size_and_lookup(self):
        archive = make_archive()
        assert archive.size() == 8
        assert archive.operation("u1").mission == "LoadGraph"
        with pytest.raises(ArchiveError):
            archive.operation("ghost")

    def test_makespan(self):
        assert make_archive().makespan == 10.0

    def test_find_filters(self):
        archive = make_archive()
        assert len(archive.find(mission_base="Superstep")) == 3
        assert len(archive.find(mission="Superstep-1")) == 1
        assert len(archive.find(actor_base="Worker")) == 2
        assert len(archive.find(actor="Worker-2")) == 1
        assert archive.find(mission="Nope") == []

    def test_node_env_series(self):
        series = make_archive().node_env_series()
        assert series == {"n1": [(0.0, 2.0), (1.0, 3.0)]}


class TestBuilder:
    def make_run(self, lines, job_id="j"):
        records, _ = parse_log(lines)
        result = JobResult(job_id=job_id, algorithm="bfs", dataset="d",
                           output={}, started_at=0.0, finished_at=1.0)
        return MonitoredRun(result=result, records=records, env_series={},
                            env_samples=[], node_names=["n1"])

    def test_build_minimal_tree(self):
        run = self.make_run([
            "GRANULA ts=0 job=j event=start uid=a parent=- mission=Job actor=C",
            "GRANULA ts=1 job=j event=info uid=a name=Bytes value=42",
            "GRANULA ts=2 job=j event=end uid=a",
        ])
        archive, report = build_archive(run)
        assert archive.root.mission == "Job"
        assert archive.root.infos["Bytes"] == 42
        assert archive.root.infos["Duration"] == 2.0
        assert report.infos_recorded == 1

    def test_info_values_typed(self):
        run = self.make_run([
            "GRANULA ts=0 job=j event=start uid=a parent=- mission=Job actor=C",
            "GRANULA ts=0 job=j event=info uid=a name=I value=7",
            "GRANULA ts=0 job=j event=info uid=a name=F value=1.5",
            "GRANULA ts=0 job=j event=info uid=a name=S value=hello",
            "GRANULA ts=1 job=j event=end uid=a",
        ])
        archive, _report = build_archive(run)
        assert archive.root.infos["I"] == 7
        assert archive.root.infos["F"] == 1.5
        assert archive.root.infos["S"] == "hello"

    def test_double_start_rejected(self):
        run = self.make_run([
            "GRANULA ts=0 job=j event=start uid=a parent=- mission=A actor=C",
            "GRANULA ts=0 job=j event=start uid=a parent=- mission=A actor=C",
        ])
        with pytest.raises(ArchiveBuildError):
            build_archive(run)

    def test_unknown_parent_rejected(self):
        run = self.make_run([
            "GRANULA ts=0 job=j event=start uid=a parent=ghost "
            "mission=A actor=C",
        ])
        with pytest.raises(ArchiveBuildError):
            build_archive(run)

    def test_end_without_start_rejected(self):
        run = self.make_run(["GRANULA ts=0 job=j event=end uid=ghost"])
        with pytest.raises(ArchiveBuildError):
            build_archive(run)

    def test_double_end_rejected(self):
        run = self.make_run([
            "GRANULA ts=0 job=j event=start uid=a parent=- mission=A actor=C",
            "GRANULA ts=1 job=j event=end uid=a",
            "GRANULA ts=2 job=j event=end uid=a",
        ])
        with pytest.raises(ArchiveBuildError):
            build_archive(run)

    def test_dangling_operation_rejected(self):
        run = self.make_run([
            "GRANULA ts=0 job=j event=start uid=a parent=- mission=A actor=C",
        ])
        with pytest.raises(ArchiveBuildError):
            build_archive(run)

    def test_multiple_roots_rejected(self):
        run = self.make_run([
            "GRANULA ts=0 job=j event=start uid=a parent=- mission=A actor=C",
            "GRANULA ts=0 job=j event=start uid=b parent=- mission=B actor=C",
            "GRANULA ts=1 job=j event=end uid=a",
            "GRANULA ts=1 job=j event=end uid=b",
        ])
        with pytest.raises(ArchiveBuildError):
            build_archive(run)

    def test_info_for_unknown_op_rejected(self):
        run = self.make_run([
            "GRANULA ts=0 job=j event=info uid=ghost name=X value=1",
        ])
        with pytest.raises(ArchiveBuildError):
            build_archive(run)

    def test_full_run_with_model(self, giraph_run):
        archive, report = build_archive(giraph_run, giraph_model())
        assert report.unmodeled == []
        assert report.rules_applied > 0
        assert archive.platform == "Giraph"
        assert archive.metadata["algorithm"] == "bfs"
        # Domain shares derived on every domain operation.
        for mission in ("Startup", "LoadGraph", "ProcessGraph",
                        "OffloadGraph", "Cleanup"):
            domain_op = archive.root.child(mission)
            assert 0.0 <= domain_op.infos["ShareOfParent"] <= 1.0

    def test_build_without_model(self, giraph_run):
        archive, report = build_archive(giraph_run, model=None)
        assert archive.platform == ""
        assert report.rules_applied == 0
        assert archive.root.infos["Duration"] > 0

    def test_unmodeled_reported_with_truncated_model(self, giraph_run):
        coarse = giraph_model().truncated(1)
        _archive, report = build_archive(giraph_run, coarse)
        assert ("Superstep", "Master") in report.unmodeled


class TestQuery:
    @pytest.fixture()
    def archive(self):
        return make_archive()

    def test_path_glob(self, archive):
        q = ArchiveQuery(archive)
        assert len(q.path("Job/ProcessGraph/Superstep-*")) == 3
        assert len(q.path("Job/*/LocalLoad")) == 2

    def test_mission_and_actor(self, archive):
        q = ArchiveQuery(archive)
        assert len(q.mission("Superstep")) == 3
        assert len(q.actor("Worker")) == 2

    def test_iteration_filter(self, archive):
        q = ArchiveQuery(archive)
        assert q.iteration(2).one().mission == "Superstep-2"

    def test_where(self, archive):
        q = ArchiveQuery(archive).where(lambda op: op.duration > 5)
        assert {op.mission for op in q.operations()} == {"Job",
                                                         "ProcessGraph"}

    def test_one_requires_single(self, archive):
        with pytest.raises(QueryError):
            ArchiveQuery(archive).mission("Superstep").one()
        with pytest.raises(QueryError):
            ArchiveQuery(archive).mission("Ghost").one()

    def test_first(self, archive):
        assert ArchiveQuery(archive).mission("Superstep").first().iteration == 0
        with pytest.raises(QueryError):
            ArchiveQuery(archive).mission("Ghost").first()

    def test_values_and_total(self, archive):
        q = ArchiveQuery(archive).mission("LocalLoad")
        assert q.values("BytesRead") == [100, 200]
        assert q.total("BytesRead") == 300

    def test_mean(self, archive):
        assert ArchiveQuery(archive).mission("Superstep").mean() == 2.0
        with pytest.raises(QueryError):
            ArchiveQuery(archive).mission("Ghost").mean()

    def test_top(self, archive):
        top = ArchiveQuery(archive).mission("LocalLoad").top("BytesRead", 1)
        assert top[0].infos["BytesRead"] == 200
        with pytest.raises(QueryError):
            ArchiveQuery(archive).top("Duration", 0)

    def test_group_by_actor(self, archive):
        groups = ArchiveQuery(archive).mission("LocalLoad").group_by_actor()
        assert sorted(groups) == ["Worker-1", "Worker-2"]

    def test_group_by_iteration(self, archive):
        groups = ArchiveQuery(archive).mission("Superstep").group_by_iteration()
        assert sorted(groups) == [0, 1, 2]

    def test_durations(self, archive):
        assert ArchiveQuery(archive).mission("Superstep").durations() == [
            2.0, 2.0, 2.0]


class TestSerialize:
    def test_roundtrip(self):
        archive = make_archive()
        clone = archive_from_json(archive_to_json(archive))
        assert clone.job_id == archive.job_id
        assert clone.size() == archive.size()
        assert clone.env_samples == archive.env_samples
        local = clone.find(mission_base="LocalLoad")
        assert [op.infos["BytesRead"] for op in local] == [100, 200]

    def test_infinity_handling(self):
        root = ArchivedOperation("u", "A", "x", 0.0, 1.0,
                                 infos={"Dist": math.inf})
        archive = PerformanceArchive("j", root)
        clone = archive_from_json(archive_to_json(archive))
        assert clone.root.infos["Dist"] == math.inf

    def test_rejects_non_json(self):
        with pytest.raises(ArchiveError):
            archive_from_json("{not json")

    def test_rejects_foreign_document(self):
        with pytest.raises(ArchiveError):
            archive_from_json('{"format": "something-else"}')

    def test_rejects_wrong_version(self):
        text = archive_to_json(make_archive()).replace(
            '"format_version":3', '"format_version":99')
        assert '"format_version":99' in text
        with pytest.raises(ArchiveError):
            archive_from_json(text)

    def test_giraph_archive_roundtrip(self, giraph_archive):
        clone = archive_from_json(archive_to_json(giraph_archive))
        assert clone.size() == giraph_archive.size()
        assert clone.makespan == pytest.approx(giraph_archive.makespan)


class TestStore:
    def test_save_load_list(self, tmp_path):
        store = ArchiveStore(tmp_path)
        archive = make_archive()
        path = store.save(archive)
        assert path.exists()
        assert "job-x" in store
        assert len(store) == 1
        loaded = store.load("job-x")
        assert loaded.size() == archive.size()
        assert store.list() == ["job-x"]

    def test_save_no_overwrite_by_default(self, tmp_path):
        store = ArchiveStore(tmp_path)
        store.save(make_archive())
        with pytest.raises(ArchiveError):
            store.save(make_archive())
        store.save(make_archive(), overwrite=True)

    def test_load_missing(self, tmp_path):
        with pytest.raises(ArchiveError):
            ArchiveStore(tmp_path).load("ghost")

    def test_delete(self, tmp_path):
        store = ArchiveStore(tmp_path)
        store.save(make_archive())
        store.delete("job-x")
        assert "job-x" not in store
        with pytest.raises(ArchiveError):
            store.delete("job-x")

    def test_index_survives_reopen(self, tmp_path):
        ArchiveStore(tmp_path).save(make_archive())
        reopened = ArchiveStore(tmp_path)
        assert reopened.list() == ["job-x"]
        assert reopened.summary("job-x")["platform"] == "Test"

    def test_list_filters(self, tmp_path, giraph_archive):
        store = ArchiveStore(tmp_path)
        store.save(make_archive())
        store.save(giraph_archive)
        assert store.list(platform="Giraph") == [giraph_archive.job_id]
        assert store.list(platform="Nope") == []
        assert store.list(algorithm="bfs") == [giraph_archive.job_id]
        assert store.list(dataset="tiny") == [giraph_archive.job_id]

    def test_summary_missing(self, tmp_path):
        with pytest.raises(ArchiveError):
            ArchiveStore(tmp_path).summary("ghost")
