"""Unit tests for archives: structure, builder, query, serialize, store."""

import math

import pytest

from repro.core.archive.archive import ArchivedOperation, PerformanceArchive
from repro.core.archive.builder import build_archive
from repro.core.archive.query import ArchiveQuery
from repro.core.archive.serialize import archive_from_json, archive_to_json
from repro.core.archive.store import ArchiveStore
from repro.core.model.giraph_model import giraph_model
from repro.core.monitor.logparser import parse_log
from repro.core.monitor.session import MonitoredRun
from repro.errors import ArchiveBuildError, ArchiveError, QueryError
from repro.platforms.base import JobResult


def make_archive():
    root = ArchivedOperation("u0", "Job", "Client", 0.0, 10.0)
    load = ArchivedOperation("u1", "LoadGraph", "Master", 0.0, 4.0,
                             parent=root)
    root.children.append(load)
    for i in range(2):
        worker_op = ArchivedOperation(
            f"u2{i}", "LocalLoad", f"Worker-{i + 1}", 0.0, 2.0 + i,
            infos={"BytesRead": 100 * (i + 1)}, parent=load,
        )
        load.children.append(worker_op)
    process = ArchivedOperation("u3", "ProcessGraph", "Master", 4.0, 10.0,
                                parent=root)
    root.children.append(process)
    for k in range(3):
        step = ArchivedOperation(
            f"u4{k}", f"Superstep-{k}", "Master", 4.0 + 2 * k,
            6.0 + 2 * k, infos={"Duration": 2.0}, parent=process,
        )
        process.children.append(step)
    return PerformanceArchive("job-x", root, platform="Test",
                              env_samples=[(0.0, "n1", 2.0), (1.0, "n1", 3.0)])


class TestArchivedOperation:
    def test_duration(self):
        assert ArchivedOperation("u", "A", "x", 1.0, 3.5).duration == 2.5
        assert ArchivedOperation("u", "A", "x").duration is None

    def test_mission_iteration_split(self):
        op = ArchivedOperation("u", "Compute-4", "Worker-2")
        assert op.mission_base == "Compute"
        assert op.iteration == 4
        assert op.actor_base == "Worker"
        assert op.actor_index == 2

    def test_path(self):
        archive = make_archive()
        local = archive.find(mission_base="LocalLoad")[0]
        assert local.path == "Job/LoadGraph/LocalLoad"

    def test_child_lookup(self):
        archive = make_archive()
        assert archive.root.child("LoadGraph").uid == "u1"
        with pytest.raises(ArchiveError):
            archive.root.child("Ghost")

    def test_children_of(self):
        archive = make_archive()
        process = archive.root.child("ProcessGraph")
        assert len(process.children_of("Superstep")) == 3


class TestPerformanceArchive:
    def test_requires_job_id(self):
        with pytest.raises(ArchiveError):
            PerformanceArchive("", ArchivedOperation("u", "A", "x"))

    def test_duplicate_uid_rejected(self):
        root = ArchivedOperation("u", "A", "x")
        child = ArchivedOperation("u", "B", "x", parent=root)
        root.children.append(child)
        with pytest.raises(ArchiveError):
            PerformanceArchive("j", root)

    def test_size_and_lookup(self):
        archive = make_archive()
        assert archive.size() == 8
        assert archive.operation("u1").mission == "LoadGraph"
        with pytest.raises(ArchiveError):
            archive.operation("ghost")

    def test_makespan(self):
        assert make_archive().makespan == 10.0

    def test_find_filters(self):
        archive = make_archive()
        assert len(archive.find(mission_base="Superstep")) == 3
        assert len(archive.find(mission="Superstep-1")) == 1
        assert len(archive.find(actor_base="Worker")) == 2
        assert len(archive.find(actor="Worker-2")) == 1
        assert archive.find(mission="Nope") == []

    def test_node_env_series(self):
        series = make_archive().node_env_series()
        assert series == {"n1": [(0.0, 2.0), (1.0, 3.0)]}


class TestBuilder:
    def make_run(self, lines, job_id="j"):
        records, _ = parse_log(lines)
        result = JobResult(job_id=job_id, algorithm="bfs", dataset="d",
                           output={}, started_at=0.0, finished_at=1.0)
        return MonitoredRun(result=result, records=records, env_series={},
                            env_samples=[], node_names=["n1"])

    def test_build_minimal_tree(self):
        run = self.make_run([
            "GRANULA ts=0 job=j event=start uid=a parent=- mission=Job actor=C",
            "GRANULA ts=1 job=j event=info uid=a name=Bytes value=42",
            "GRANULA ts=2 job=j event=end uid=a",
        ])
        archive, report = build_archive(run)
        assert archive.root.mission == "Job"
        assert archive.root.infos["Bytes"] == 42
        assert archive.root.infos["Duration"] == 2.0
        assert report.infos_recorded == 1

    def test_info_values_typed(self):
        run = self.make_run([
            "GRANULA ts=0 job=j event=start uid=a parent=- mission=Job actor=C",
            "GRANULA ts=0 job=j event=info uid=a name=I value=7",
            "GRANULA ts=0 job=j event=info uid=a name=F value=1.5",
            "GRANULA ts=0 job=j event=info uid=a name=S value=hello",
            "GRANULA ts=1 job=j event=end uid=a",
        ])
        archive, _report = build_archive(run)
        assert archive.root.infos["I"] == 7
        assert archive.root.infos["F"] == 1.5
        assert archive.root.infos["S"] == "hello"

    def test_double_start_rejected(self):
        run = self.make_run([
            "GRANULA ts=0 job=j event=start uid=a parent=- mission=A actor=C",
            "GRANULA ts=0 job=j event=start uid=a parent=- mission=A actor=C",
        ])
        with pytest.raises(ArchiveBuildError):
            build_archive(run)

    def test_unknown_parent_rejected(self):
        run = self.make_run([
            "GRANULA ts=0 job=j event=start uid=a parent=ghost "
            "mission=A actor=C",
        ])
        with pytest.raises(ArchiveBuildError):
            build_archive(run)

    def test_end_without_start_rejected(self):
        run = self.make_run(["GRANULA ts=0 job=j event=end uid=ghost"])
        with pytest.raises(ArchiveBuildError):
            build_archive(run)

    def test_double_end_rejected(self):
        run = self.make_run([
            "GRANULA ts=0 job=j event=start uid=a parent=- mission=A actor=C",
            "GRANULA ts=1 job=j event=end uid=a",
            "GRANULA ts=2 job=j event=end uid=a",
        ])
        with pytest.raises(ArchiveBuildError):
            build_archive(run)

    def test_dangling_operation_rejected(self):
        run = self.make_run([
            "GRANULA ts=0 job=j event=start uid=a parent=- mission=A actor=C",
        ])
        with pytest.raises(ArchiveBuildError):
            build_archive(run)

    def test_multiple_roots_rejected(self):
        run = self.make_run([
            "GRANULA ts=0 job=j event=start uid=a parent=- mission=A actor=C",
            "GRANULA ts=0 job=j event=start uid=b parent=- mission=B actor=C",
            "GRANULA ts=1 job=j event=end uid=a",
            "GRANULA ts=1 job=j event=end uid=b",
        ])
        with pytest.raises(ArchiveBuildError):
            build_archive(run)

    def test_info_for_unknown_op_rejected(self):
        run = self.make_run([
            "GRANULA ts=0 job=j event=info uid=ghost name=X value=1",
        ])
        with pytest.raises(ArchiveBuildError):
            build_archive(run)

    def test_full_run_with_model(self, giraph_run):
        archive, report = build_archive(giraph_run, giraph_model())
        assert report.unmodeled == []
        assert report.rules_applied > 0
        assert archive.platform == "Giraph"
        assert archive.metadata["algorithm"] == "bfs"
        # Domain shares derived on every domain operation.
        for mission in ("Startup", "LoadGraph", "ProcessGraph",
                        "OffloadGraph", "Cleanup"):
            domain_op = archive.root.child(mission)
            assert 0.0 <= domain_op.infos["ShareOfParent"] <= 1.0

    def test_build_without_model(self, giraph_run):
        archive, report = build_archive(giraph_run, model=None)
        assert archive.platform == ""
        assert report.rules_applied == 0
        assert archive.root.infos["Duration"] > 0

    def test_unmodeled_reported_with_truncated_model(self, giraph_run):
        coarse = giraph_model().truncated(1)
        _archive, report = build_archive(giraph_run, coarse)
        assert ("Superstep", "Master") in report.unmodeled


class TestQuery:
    @pytest.fixture()
    def archive(self):
        return make_archive()

    def test_path_glob(self, archive):
        q = ArchiveQuery(archive)
        assert len(q.path("Job/ProcessGraph/Superstep-*")) == 3
        assert len(q.path("Job/*/LocalLoad")) == 2

    def test_path_glob_star_stays_in_segment(self, archive):
        # Regression: fnmatch translated * to .*, so Job/* matched
        # arbitrarily deep descendants like Job/ProcessGraph/Superstep-1.
        q = ArchiveQuery(archive)
        assert {op.mission for op in q.path("Job/*").operations()} == {
            "LoadGraph", "ProcessGraph"}
        assert len(q.path("Job/Superstep-*")) == 0

    def test_path_glob_globstar_any_depth(self, archive):
        q = ArchiveQuery(archive)
        assert len(q.path("Job/**")) == 8  # includes Job itself
        assert {op.mission for op in q.path("**/LocalLoad").operations()} \
            == {"LocalLoad"}
        assert len(q.path("Job/**/Superstep-*")) == 3
        assert len(q.path("**")) == 8

    def test_path_glob_question_mark(self, archive):
        q = ArchiveQuery(archive)
        assert len(q.path("Job/ProcessGraph/Superstep-?")) == 3
        assert len(q.path("Job/ProcessGraph/Superstep?0")) == 1

    def test_path_glob_rejects_bad_patterns(self, archive):
        q = ArchiveQuery(archive)
        with pytest.raises(QueryError):
            q.path("")
        with pytest.raises(QueryError):
            q.path("Job/Process**")

    def test_mission_and_actor(self, archive):
        q = ArchiveQuery(archive)
        assert len(q.mission("Superstep")) == 3
        assert len(q.actor("Worker")) == 2

    def test_iteration_filter(self, archive):
        q = ArchiveQuery(archive)
        assert q.iteration(2).one().mission == "Superstep-2"

    def test_where(self, archive):
        q = ArchiveQuery(archive).where(lambda op: op.duration > 5)
        assert {op.mission for op in q.operations()} == {"Job",
                                                         "ProcessGraph"}

    def test_one_requires_single(self, archive):
        with pytest.raises(QueryError):
            ArchiveQuery(archive).mission("Superstep").one()
        with pytest.raises(QueryError):
            ArchiveQuery(archive).mission("Ghost").one()

    def test_first(self, archive):
        assert ArchiveQuery(archive).mission("Superstep").first().iteration == 0
        with pytest.raises(QueryError):
            ArchiveQuery(archive).mission("Ghost").first()

    def test_values_and_total(self, archive):
        q = ArchiveQuery(archive).mission("LocalLoad")
        assert q.values("BytesRead") == [100, 200]
        assert q.total("BytesRead") == 300

    def test_mean(self, archive):
        assert ArchiveQuery(archive).mission("Superstep").mean() == 2.0
        with pytest.raises(QueryError):
            ArchiveQuery(archive).mission("Ghost").mean()

    def test_top(self, archive):
        top = ArchiveQuery(archive).mission("LocalLoad").top("BytesRead", 1)
        assert top[0].infos["BytesRead"] == 200
        with pytest.raises(QueryError):
            ArchiveQuery(archive).top("Duration", 0)

    def test_aggregation_rejects_non_numeric(self, archive):
        # Regression: a string info leaked a raw ValueError out of
        # total/mean/top instead of a typed QueryError.
        archive.operation("u20").infos["Status"] = "SUCCEEDED"
        q = ArchiveQuery(archive).mission("LocalLoad")
        with pytest.raises(QueryError, match="not numeric"):
            q.total("Status")
        with pytest.raises(QueryError, match="not numeric"):
            q.mean("Status")
        with pytest.raises(QueryError, match="not numeric"):
            q.top("Status")
        archive.operation("u20").infos["Nested"] = [1, 2]
        with pytest.raises(QueryError, match="not numeric"):
            q.total("Nested")

    def test_aggregation_rejects_boolean(self, archive):
        archive.operation("u20").infos["Cached"] = True
        q = ArchiveQuery(archive).mission("LocalLoad")
        with pytest.raises(QueryError, match="boolean"):
            q.total("Cached")
        with pytest.raises(QueryError, match="boolean"):
            q.mean("Cached")

    def test_group_by_actor(self, archive):
        groups = ArchiveQuery(archive).mission("LocalLoad").group_by_actor()
        assert sorted(groups) == ["Worker-1", "Worker-2"]

    def test_group_by_iteration(self, archive):
        groups = ArchiveQuery(archive).mission("Superstep").group_by_iteration()
        assert sorted(groups) == [0, 1, 2]

    def test_durations(self, archive):
        assert ArchiveQuery(archive).mission("Superstep").durations() == [
            2.0, 2.0, 2.0]


class TestSerialize:
    def test_roundtrip(self):
        archive = make_archive()
        clone = archive_from_json(archive_to_json(archive))
        assert clone.job_id == archive.job_id
        assert clone.size() == archive.size()
        assert clone.env_samples == archive.env_samples
        local = clone.find(mission_base="LocalLoad")
        assert [op.infos["BytesRead"] for op in local] == [100, 200]

    def test_infinity_handling(self):
        root = ArchivedOperation("u", "A", "x", 0.0, 1.0,
                                 infos={"Dist": math.inf})
        archive = PerformanceArchive("j", root)
        clone = archive_from_json(archive_to_json(archive))
        assert clone.root.infos["Dist"] == math.inf

    @pytest.mark.parametrize("version", [2, 3])
    def test_literal_infinity_string_roundtrips(self, version):
        # A *string* info value that happens to spell a sentinel must
        # not come back as a float — _decode_value used to turn any
        # value comparing equal to "Infinity" into math.inf.
        infos = {
            "Label": "Infinity",
            "Neg": "-Infinity",
            "Escaped": "\\Infinity",
            "Dist": math.inf,
            "NegDist": -math.inf,
        }
        root = ArchivedOperation("u", "A", "x", 0.0, 1.0, infos=dict(infos))
        archive = PerformanceArchive("j", root)
        clone = archive_from_json(archive_to_json(archive, version=version))
        assert clone.root.infos == infos
        assert isinstance(clone.root.infos["Label"], str)
        assert isinstance(clone.root.infos["Dist"], float)

    def test_rejects_non_json(self):
        with pytest.raises(ArchiveError):
            archive_from_json("{not json")

    def test_rejects_foreign_document(self):
        with pytest.raises(ArchiveError):
            archive_from_json('{"format": "something-else"}')

    def test_rejects_wrong_version(self):
        text = archive_to_json(make_archive()).replace(
            '"format_version":3', '"format_version":99')
        assert '"format_version":99' in text
        with pytest.raises(ArchiveError):
            archive_from_json(text)

    def test_giraph_archive_roundtrip(self, giraph_archive):
        clone = archive_from_json(archive_to_json(giraph_archive))
        assert clone.size() == giraph_archive.size()
        assert clone.makespan == pytest.approx(giraph_archive.makespan)


class TestStore:
    def test_save_load_list(self, tmp_path):
        store = ArchiveStore(tmp_path)
        archive = make_archive()
        path = store.save(archive)
        assert path.exists()
        assert "job-x" in store
        assert len(store) == 1
        loaded = store.load("job-x")
        assert loaded.size() == archive.size()
        assert store.list() == ["job-x"]

    def test_save_no_overwrite_by_default(self, tmp_path):
        store = ArchiveStore(tmp_path)
        store.save(make_archive())
        with pytest.raises(ArchiveError):
            store.save(make_archive())
        store.save(make_archive(), overwrite=True)

    def test_load_missing(self, tmp_path):
        with pytest.raises(ArchiveError):
            ArchiveStore(tmp_path).load("ghost")

    def test_delete(self, tmp_path):
        store = ArchiveStore(tmp_path)
        store.save(make_archive())
        store.delete("job-x")
        assert "job-x" not in store
        with pytest.raises(ArchiveError):
            store.delete("job-x")

    def test_index_survives_reopen(self, tmp_path):
        ArchiveStore(tmp_path).save(make_archive())
        reopened = ArchiveStore(tmp_path)
        assert reopened.list() == ["job-x"]
        assert reopened.summary("job-x")["platform"] == "Test"

    def test_list_filters(self, tmp_path, giraph_archive):
        store = ArchiveStore(tmp_path)
        store.save(make_archive())
        store.save(giraph_archive)
        assert store.list(platform="Giraph") == [giraph_archive.job_id]
        assert store.list(platform="Nope") == []
        assert store.list(algorithm="bfs") == [giraph_archive.job_id]
        assert store.list(dataset="tiny") == [giraph_archive.job_id]

    def test_summary_missing(self, tmp_path):
        with pytest.raises(ArchiveError):
            ArchiveStore(tmp_path).summary("ghost")

    @pytest.mark.parametrize("job_id", [
        "../escape", "a/b", "..", ".", "a\\b", "nul\x00byte", ".hidden",
    ])
    def test_path_unsafe_job_ids_rejected(self, tmp_path, job_id):
        # Regression: f"{job_id}.json" was built unvalidated, so a job
        # id carrying separators escaped the store directory.
        store = ArchiveStore(tmp_path)
        root = ArchivedOperation("u", "Job", "C", 0.0, 1.0)
        archive = PerformanceArchive(job_id, root)
        with pytest.raises(ArchiveError, match="job id"):
            store.save(archive)
        with pytest.raises(ArchiveError, match="job id"):
            store.handle(job_id)
        with pytest.raises(ArchiveError, match="job id"):
            store.delete(job_id)
        assert list(tmp_path.parent.glob("*.json")) == []

    def test_checksum_matches_handle_and_memoizes(self, tmp_path):
        store = ArchiveStore(tmp_path)
        store.save(make_archive())
        checksum = store.checksum("job-x")
        assert checksum == store.handle("job-x").checksum
        assert store.checksum("job-x") == checksum  # memoized path
        store.save(make_archive(), overwrite=True)
        assert store.checksum("job-x") == checksum  # same payload
        with pytest.raises(ArchiveError):
            store.checksum("ghost")

    def test_refresh_sees_external_writes(self, tmp_path):
        store = ArchiveStore(tmp_path)
        store.save(make_archive())
        other = ArchiveStore(tmp_path)
        other.save(make_archive_with_id("job-y"))
        assert "job-y" not in store
        assert store.refresh() is True
        assert store.list() == ["job-x", "job-y"]
        assert store.refresh() is False  # nothing changed: stat only

    def test_refresh_handles_deleted_index(self, tmp_path):
        store = ArchiveStore(tmp_path)
        store.save(make_archive())
        (tmp_path / "index.json").unlink()
        assert store.refresh() is True
        assert store.list() == ["job-x"]


def make_archive_with_id(job_id):
    root = ArchivedOperation("u0", "Job", "Client", 0.0, 5.0)
    child = ArchivedOperation("u1", "LoadGraph", "Master", 0.0, 2.0,
                              parent=root)
    root.children.append(child)
    return PerformanceArchive(job_id, root, platform="Test")


class TestHandle:
    def test_makespan_rejects_boolean_timestamps(self, tmp_path):
        # isinstance(True, int) holds, so a damaged document with
        # boolean start/end used to report a makespan of True - False.
        import json

        path = tmp_path / "b.json"
        path.write_text(json.dumps({
            "format": "granula-archive",
            "format_version": 1,
            "job_id": "b",
            "operations": {"uid": "u", "mission": "Job", "actor": "C",
                           "start": False, "end": True, "infos": {},
                           "children": []},
        }))
        from repro.core.archive.store import ArchiveHandle

        assert ArchiveHandle(path).makespan is None

    def test_checksum_computed_for_v1(self, tmp_path):
        import json

        from repro.core.archive.serialize import payload_checksum
        from repro.core.archive.store import ArchiveHandle

        document = {
            "format": "granula-archive",
            "format_version": 1,
            "job_id": "b",
            "operations": {"uid": "u", "mission": "Job", "actor": "C",
                           "start": 0.0, "end": 1.0, "infos": {},
                           "children": []},
        }
        path = tmp_path / "b.json"
        path.write_text(json.dumps(document))
        assert ArchiveHandle(path).checksum == payload_checksum(document)
