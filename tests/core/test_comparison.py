"""Tests for cross-platform comparison (Section 3.4 metrics)."""

import pytest

from repro.core.archive.archive import ArchivedOperation, PerformanceArchive
from repro.core.comparison import compare_platforms, domain_metrics
from repro.errors import ArchiveError


def make_archive(platform, total, setup, io, processing,
                 algorithm="bfs", dataset="d", job_id=None):
    root = ArchivedOperation("r", f"{platform}Job", "Client", 0.0, total)
    t = 0.0
    for mission, duration in (
        ("Startup", setup / 2), ("LoadGraph", io * 0.9),
        ("ProcessGraph", processing), ("OffloadGraph", io * 0.1),
        ("Cleanup", setup / 2),
    ):
        op = ArchivedOperation(
            mission, mission, "Client", t, t + duration, parent=root)
        root.children.append(op)
        t += duration
    return PerformanceArchive(
        job_id or f"{platform}-job", root, platform=platform,
        metadata={"algorithm": algorithm, "dataset": dataset},
    )


GIRAPH = make_archive("Giraph", 80.0, setup=25.0, io=35.0, processing=20.0)
POWERGRAPH = make_archive("PowerGraph", 400.0, setup=3.0, io=385.0,
                          processing=12.0)


class TestDomainMetrics:
    def test_ts_td_tp(self):
        m = domain_metrics(GIRAPH)
        assert m.setup_s == pytest.approx(25.0)
        assert m.io_s == pytest.approx(35.0)
        assert m.processing_s == pytest.approx(20.0)
        assert m.total_s == 80.0

    def test_shares(self):
        m = domain_metrics(GIRAPH)
        assert m.setup_share == pytest.approx(25 / 80)
        assert m.io_share == pytest.approx(35 / 80)
        assert m.processing_share == pytest.approx(20 / 80)

    def test_missing_ops_count_zero(self):
        root = ArchivedOperation("r", "Job", "C", 0.0, 10.0)
        process = ArchivedOperation("p", "ProcessGraph", "C", 0.0, 10.0,
                                    parent=root)
        root.children.append(process)
        archive = PerformanceArchive("j", root, platform="X",
                                     metadata={"algorithm": "a",
                                               "dataset": "d"})
        m = domain_metrics(archive)
        assert m.setup_s == 0.0
        assert m.processing_s == 10.0

    def test_rejects_zero_makespan(self):
        root = ArchivedOperation("r", "Job", "C", 1.0, 1.0)
        with pytest.raises(ArchiveError):
            domain_metrics(PerformanceArchive("j", root))

    def test_real_archives(self, giraph_archive, powergraph_archive):
        g = domain_metrics(giraph_archive)
        p = domain_metrics(powergraph_archive)
        assert g.platform == "Giraph"
        assert p.platform == "PowerGraph"
        assert g.setup_s + g.io_s + g.processing_s <= g.total_s * 1.01


class TestComparePlatforms:
    def test_sorted_fastest_first(self):
        report = compare_platforms([POWERGRAPH, GIRAPH])
        assert [m.platform for m in report.metrics] == [
            "Giraph", "PowerGraph"]

    def test_fastest_per_metric(self):
        report = compare_platforms([GIRAPH, POWERGRAPH])
        assert report.fastest("total_s").platform == "Giraph"
        assert report.fastest("processing_s").platform == "PowerGraph"
        assert report.fastest("setup_s").platform == "PowerGraph"

    def test_speedup_factors(self):
        report = compare_platforms([GIRAPH, POWERGRAPH])
        speedups = report.speedup("total_s")
        assert speedups["Giraph"] == pytest.approx(1.0)
        assert speedups["PowerGraph"] == pytest.approx(5.0)

    def test_render_contains_metrics(self):
        text = compare_platforms([GIRAPH, POWERGRAPH]).render_text()
        assert "Ts setup" in text
        assert "Giraph" in text and "PowerGraph" in text

    def test_rejects_empty(self):
        with pytest.raises(ArchiveError):
            compare_platforms([])

    def test_rejects_mixed_workloads(self):
        other = make_archive("PowerGraph", 100, 10, 80, 10,
                             algorithm="pagerank")
        with pytest.raises(ArchiveError):
            compare_platforms([GIRAPH, other])

    def test_rejects_duplicate_platforms(self):
        twin = make_archive("Giraph", 90, 25, 40, 25, job_id="twin")
        with pytest.raises(ArchiveError):
            compare_platforms([GIRAPH, twin])

    def test_real_cross_platform(self, giraph_archive, powergraph_archive):
        report = compare_platforms([giraph_archive, powergraph_archive])
        assert len(report.metrics) == 2
        # Even at tiny scale PowerGraph's processing phase is the faster.
        assert report.fastest("processing_s").platform == "PowerGraph"
