"""Binary column sidecar (.gcol): write/load, damage detection, fallback.

The sidecar is an accelerator, never the truth: every form of damage —
corruption, truncation, staleness, deletion — must be *detected* (so a
damaged sidecar is never queried) and *survivable* (queries fall back
to the JSON tree path with identical results).
"""

import math
import shutil

import pytest

from repro.core.archive.archive import ArchivedOperation, PerformanceArchive
from repro.core.archive.columnar import (
    ColumnarArchiveView,
    SidecarError,
    load_sidecar,
    read_sidecar_header,
)
from repro.core.archive.integrity import validate_sidecar
from repro.core.archive.query import ArchiveQuery
from repro.core.archive.store import ArchiveStore
from repro.errors import QueryError

from tests.core.test_archive import make_archive


@pytest.fixture()
def store(tmp_path):
    return ArchiveStore(tmp_path)


@pytest.fixture()
def saved(store):
    archive = make_archive()
    store.save(archive)
    return archive


class TestSidecarWrite:
    def test_save_writes_sidecar_next_to_json(self, store, saved):
        side = store.sidecar_path(saved.job_id)
        assert side.exists()
        assert side.suffix == ".gcol"
        header = read_sidecar_header(side)
        assert header["archive_checksum"] == store.checksum(saved.job_id)

    def test_view_is_checksum_bound(self, store, saved):
        view = store.columnar_view(saved.job_id)
        assert isinstance(view, ColumnarArchiveView)
        assert view.archive_checksum == store.checksum(saved.job_id)
        view.close()

    def test_overwrite_refreshes_sidecar(self, store, saved):
        saved.root.infos["Extra"] = 7.0
        store.save(saved, overwrite=True)
        view = store.columnar_view(saved.job_id)
        assert view is not None
        assert view.values("Extra")[0] == 7.0
        view.close()


class TestQueryIdentity:
    def test_view_matches_tree_battery(self, store, saved):
        view = store.columnar_view(saved.job_id)
        tree = ArchiveQuery(store.load(saved.job_id))
        assert len(view) == len(tree)
        assert view.total("Duration") == tree.total("Duration")
        assert view.durations() == tree.durations()
        sel_v = view.mission("Superstep")
        sel_t = tree.mission("Superstep")
        assert sel_v.values("Duration") == sel_t.values("Duration")
        assert sel_v.mean("Duration") == sel_t.mean("Duration")
        assert (view.actor("Worker").total("BytesRead")
                == tree.actor("Worker").total("BytesRead"))
        assert len(view.path("Job/ProcessGraph/*")) == \
            len(tree.path("Job/ProcessGraph/*"))
        view.close()

    def test_view_reproduces_tree_error_messages(self, store):
        root = ArchivedOperation("u", "Job", "x", 0.0, 1.0,
                                 infos={"Status": "SUCCEEDED"})
        store.save(PerformanceArchive("err-job", root))
        view = store.columnar_view("err-job")
        tree = ArchiveQuery(store.load("err-job"))
        with pytest.raises(QueryError) as tree_exc:
            tree.total("Status")
        with pytest.raises(QueryError) as view_exc:
            view.total("Status")
        assert str(view_exc.value) == str(tree_exc.value)
        with pytest.raises(QueryError) as tree_mean:
            tree.mission("Nope").mean("Duration")
        with pytest.raises(QueryError) as view_mean:
            view.mission("Nope").mean("Duration")
        assert str(view_mean.value) == str(tree_mean.value)
        view.close()

    def test_literal_infinity_string_survives_sidecar(self, store):
        root = ArchivedOperation(
            "u", "Job", "x", 0.0, 1.0,
            infos={"Label": "Infinity", "Dist": math.inf})
        store.save(PerformanceArchive("inf-job", root))
        view = store.columnar_view("inf-job")
        assert view.values("Label") == ["Infinity"]
        assert view.values("Dist") == [math.inf]
        view.close()


class TestDamageDetection:
    """Satellite: corrupt or missing sidecars are detected, queries
    fall back to JSON, and ``granula validate`` reports a finding."""

    def corrupt(self, store, job_id):
        """Flip one byte inside the sidecar's data region."""
        side = store.sidecar_path(job_id)
        raw = bytearray(side.read_bytes())
        raw[-1] ^= 0xFF
        side.write_bytes(bytes(raw))
        return side

    def test_missing_sidecar_falls_back(self, store, saved):
        store.sidecar_path(saved.job_id).unlink()
        assert store.columnar_view(saved.job_id) is None
        # The JSON is still the truth: queries stay answerable.
        assert ArchiveQuery(store.load(saved.job_id)).total() > 0

    def test_corrupt_sidecar_raises_typed_error(self, store, saved):
        side = self.corrupt(store, saved.job_id)
        with pytest.raises(SidecarError, match="checksum mismatch"):
            load_sidecar(side,
                         expected_checksum=store.checksum(saved.job_id))

    def test_corrupt_sidecar_falls_back(self, store, saved, caplog):
        self.corrupt(store, saved.job_id)
        with caplog.at_level("WARNING"):
            assert store.columnar_view(saved.job_id) is None
        assert "falling back to JSON" in caplog.text
        assert ArchiveQuery(store.load(saved.job_id)).total() > 0

    def test_stale_sidecar_falls_back(self, store, saved, tmp_path):
        side = store.sidecar_path(saved.job_id)
        stale = tmp_path / "stale.gcol"
        shutil.copy(side, stale)
        saved.root.infos["Changed"] = 1.0
        store.save(saved, overwrite=True)
        shutil.copy(stale, side)  # sidecar now from the old bytes
        assert store.columnar_view(saved.job_id) is None
        with pytest.raises(SidecarError, match="stale"):
            load_sidecar(side,
                         expected_checksum=store.checksum(saved.job_id))

    def test_truncated_sidecar_raises_typed_error(self, store, saved):
        side = store.sidecar_path(saved.job_id)
        side.write_bytes(side.read_bytes()[:10])
        with pytest.raises(SidecarError):
            load_sidecar(side)

    def test_validate_sidecar_clean(self, store, saved):
        path = store.handle(saved.job_id).path
        assert validate_sidecar(path) == []

    def test_validate_sidecar_missing_is_not_a_finding(self, store, saved):
        store.sidecar_path(saved.job_id).unlink()
        assert validate_sidecar(store.handle(saved.job_id).path) == []

    def test_validate_sidecar_reports_corruption(self, store, saved):
        self.corrupt(store, saved.job_id)
        findings = validate_sidecar(store.handle(saved.job_id).path)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.code == "sidecar-unusable"
        assert finding.severity == "warning"
        assert "fall back" in finding.detail

    def test_cli_validate_reports_sidecar_finding(self, store, saved,
                                                  capsys):
        from repro.cli import main

        path = str(store.handle(saved.job_id).path)
        assert main(["validate", path]) == 0
        assert "no findings" in capsys.readouterr().out
        self.corrupt(store, saved.job_id)
        # Warning severity: reported, but the exit code stays 0 — the
        # JSON is intact and queries still work.
        assert main(["validate", path]) == 0
        out = capsys.readouterr().out
        assert "sidecar-unusable" in out
        assert "fall back" in out
