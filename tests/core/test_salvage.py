"""Tests for salvage ingestion of damaged platform logs."""

import pytest

from repro import logformat
from repro.core.archive.archive import (
    PROVENANCE_INFERRED,
    PROVENANCE_MEASURED,
)
from repro.core.monitor.salvage import (
    SALVAGED_ROOT_MISSION,
    UNATTRIBUTED_MISSION,
    SalvageParser,
    salvage_archive,
)
from repro.errors import IngestError, ReproError


def line(ts, event, uid, job="job-1", **extra):
    fields = {"ts": str(ts), "job": job, "event": event, "uid": uid}
    fields.update({k: str(v) for k, v in extra.items()})
    return logformat.format_line(fields)


def clean_log(job="job-1"):
    """A well-formed three-operation log."""
    return [
        line(0.0, "start", "j", job, parent="-", mission="GiraphJob",
             actor="GiraphClient"),
        line(1.0, "start", "a", job, parent="j", mission="Startup",
             actor="Master"),
        line(2.0, "info", "a", job, name="Memory", value="12"),
        line(5.0, "end", "a", job),
        line(5.0, "start", "b", job, parent="j", mission="LoadGraph",
             actor="Worker-1"),
        line(9.0, "end", "b", job),
        line(10.0, "end", "j", job),
    ]


class TestCleanIngest:
    def test_round_trip(self):
        archive, report = salvage_archive(clean_log(), platform="Giraph")
        assert report.clean
        assert report.records == 7
        assert archive.job_id == "job-1"
        assert archive.root.mission == "GiraphJob"
        assert [c.mission for c in archive.root.children] == \
            ["Startup", "LoadGraph"]
        assert archive.root.duration == 10.0
        assert all(op.provenance == PROVENANCE_MEASURED
                   for op in archive.walk())

    def test_infos_coerced(self):
        archive, _ = salvage_archive(clean_log())
        startup = archive.root.children[0]
        assert startup.infos["Memory"] == 12

    def test_metadata_records_ingest(self):
        archive, report = salvage_archive(clean_log())
        assert archive.metadata["salvaged"] is True
        assert archive.metadata["ingest"] == report.to_dict()


class TestTruncation:
    def test_missing_ends_are_synthesized(self):
        log = [l for l in clean_log() if "event=end" not in l
               or "uid=a" in l]
        archive, report = salvage_archive(log)
        assert report.inferred_ends == 2  # root j and load b
        load = archive.root.children[1]
        assert load.end_time == 5.0  # last-seen timestamp for b
        assert load.infos["InferredEnd"] is True
        assert load.provenance == PROVENANCE_INFERRED
        assert archive.root.provenance == PROVENANCE_INFERRED

    def test_end_never_before_start(self):
        log = [
            line(5.0, "start", "x", parent="-", mission="M", actor="A"),
            line(3.0, "end", "x"),
        ]
        archive, report = salvage_archive(log)
        op = archive.root
        assert op.end_time >= op.start_time
        assert op.provenance == PROVENANCE_INFERRED


class TestDedup:
    def test_exact_and_repeated_uid_duplicates_dropped(self):
        log = clean_log()
        log.insert(2, log[1])             # exact duplicate start
        log.append(line(9.5, "end", "b"))  # repeated end, new timestamp
        archive, report = salvage_archive(log)
        assert report.duplicate_records == 2
        assert report.node("Master").duplicates == 1
        # First end wins: b still closes at 9.0.
        assert archive.root.children[1].end_time == 9.0

    def test_duplicate_info_lines_dropped(self):
        log = clean_log()
        log.insert(3, log[2])
        _, report = salvage_archive(log)
        assert report.duplicate_records == 1


class TestReordering:
    def test_benign_reorder_is_sorted_and_still_clean(self):
        log = clean_log()
        log[2], log[3] = log[3], log[2]  # info/end swap, 3s apart > 1s
        archive, report = salvage_archive(log)
        assert report.reordered >= 1
        assert archive.root.children[0].end_time == 5.0

    def test_skew_violations_counted(self):
        log = clean_log()
        parser = SalvageParser(clock_skew_tolerance=0.5)
        log[2], log[3] = log[3], log[2]
        records, report = parser.parse(log)
        assert report.skew_violations >= 1
        parser_tolerant = SalvageParser(clock_skew_tolerance=10.0)
        _, tolerant_report = parser_tolerant.parse(log)
        assert tolerant_report.skew_violations == 0


class TestOrphans:
    def test_unknown_parent_is_quarantined(self):
        log = clean_log() + [
            line(6.0, "start", "z", parent="nope", mission="Mystery",
                 actor="Worker-2"),
            line(7.0, "end", "z"),
        ]
        archive, report = salvage_archive(log)
        assert report.orphans_reattached == 1
        quarantine = [c for c in archive.root.children
                      if c.mission == UNATTRIBUTED_MISSION]
        assert len(quarantine) == 1
        assert [c.mission for c in quarantine[0].children] == ["Mystery"]

    def test_missing_root_is_synthesized(self):
        log = clean_log()[1:]  # drop the job start; "end j" dangles
        archive, report = salvage_archive(log)
        assert report.synthesized_root
        assert archive.root.mission == SALVAGED_ROOT_MISSION


class TestJobFiltering:
    def test_majority_job_selected(self):
        log = clean_log() + [
            line(50.0, "start", "q", job="job-2", parent="-",
                 mission="Other", actor="X"),
        ]
        archive, report = salvage_archive(log)
        assert archive.job_id == "job-1"
        assert report.foreign_job_records == 1

    def test_explicit_job_id_wins(self):
        log = clean_log() + [
            line(50.0, "start", "q", job="job-2", parent="-",
                 mission="Other", actor="X"),
            line(51.0, "end", "q", job="job-2"),
        ]
        archive, _ = salvage_archive(log, job_id="job-2")
        assert archive.job_id == "job-2"
        assert archive.root.mission == "Other"


class TestMalformedLines:
    def test_attributed_to_guessed_node(self):
        log = clean_log() + [
            "GRANULA ts=oops event=start uid=bad actor=Worker-9",
        ]
        _, report = salvage_archive(log)
        assert report.malformed == 1
        assert report.node("Worker-9").malformed == 1

    def test_binary_garbage_is_foreign(self):
        log = clean_log() + ["\x00\x7f\x1b garbage", ""]
        _, report = salvage_archive(log)
        assert report.foreign_lines == 2
        assert report.malformed == 0

    def test_nothing_salvageable_raises_typed_error(self):
        with pytest.raises(IngestError) as excinfo:
            salvage_archive(["no granula here", "\x00\x01"])
        assert isinstance(excinfo.value, ReproError)

    def test_mangled_lines_never_raise_raw_errors(self):
        base = clean_log()
        mangled = []
        for i, source in enumerate(base):
            mangled.append(source[: max(1, len(source) - i * 7)])
        mangled += base  # keep something salvageable
        archive, report = salvage_archive(mangled)
        assert archive.root is not None
        assert report.records > 0


class TestReportRendering:
    def test_render_text_lists_nodes(self):
        log = clean_log()
        log.insert(2, log[1])
        _, report = salvage_archive(log)
        text = report.render_text()
        assert "duplicate records" in text
        assert "Master" in text

    def test_to_dict_is_json_safe(self):
        import json

        _, report = salvage_archive(clean_log())
        assert json.loads(json.dumps(report.to_dict()))
