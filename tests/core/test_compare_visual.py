"""Tests for the side-by-side decomposition rendering."""

import pytest

from repro.core.visualize.breakdown import compute_breakdown
from repro.core.visualize.compare import (
    render_side_by_side_svg,
    render_side_by_side_text,
    side_by_side_from_archives,
)
from repro.errors import VisualizationError


class TestSideBySide:
    def test_text_stacks_both(self, giraph_archive, powergraph_archive):
        text = render_side_by_side_text([
            compute_breakdown(giraph_archive),
            compute_breakdown(powergraph_archive),
        ])
        assert "Giraph" in text
        assert "PowerGraph" in text
        assert "=" * 10 in text

    def test_svg_contains_both_platforms(self, giraph_archive,
                                         powergraph_archive):
        svg = side_by_side_from_archives([giraph_archive,
                                          powergraph_archive])
        assert svg.startswith("<svg")
        assert "Giraph" in svg
        assert "PowerGraph" in svg
        # Shared legend phases.
        for phase in ("Setup", "Input/output", "Processing"):
            assert phase in svg

    def test_single_archive_works(self, giraph_archive):
        svg = render_side_by_side_svg([compute_breakdown(giraph_archive)])
        assert svg.startswith("<svg")

    def test_empty_rejected(self):
        with pytest.raises(VisualizationError):
            render_side_by_side_svg([])
        with pytest.raises(VisualizationError):
            render_side_by_side_text([])
