"""Tests for the iterative evaluation process (Figure 2 loop)."""

import pytest

from repro.core.archive.store import ArchiveStore
from repro.core.model.giraph_model import giraph_model
from repro.core.model.job import JobModel
from repro.core.model.operation import OperationModel
from repro.core.process import EvaluationProcess
from repro.errors import ModelValidationError
from repro.platforms.base import JobRequest
from repro.platforms.pregel.engine import GiraphPlatform

from tests.conftest import make_giraph_cluster


@pytest.fixture()
def process(tiny_graph, tmp_path):
    platform = GiraphPlatform(make_giraph_cluster())
    platform.deploy_dataset("tiny", tiny_graph)
    store = ArchiveStore(tmp_path / "archives")
    return EvaluationProcess(platform, giraph_model(), store=store)


REQUEST = JobRequest("bfs", "tiny", 8, params={"source": 0}, job_id="it")


class TestEvaluationProcess:
    def test_invalid_model_rejected(self, tiny_graph):
        platform = GiraphPlatform(make_giraph_cluster())
        bad = JobModel("Bad", OperationModel("Job", "x", level=2))
        with pytest.raises(ModelValidationError):
            EvaluationProcess(platform, bad)

    def test_full_iteration_artifacts(self, process):
        iteration = process.iterate(REQUEST)
        assert iteration.index == 1
        assert iteration.archive.size() > 100
        assert iteration.breakdown.total > 0
        assert iteration.utilization.peak > 0
        assert iteration.gantt is not None
        assert iteration.feedback == []

    def test_archive_persisted_to_store(self, process):
        iteration = process.iterate(REQUEST)
        assert iteration.archive.job_id in process.store

    def test_domain_level_iteration(self, process):
        iteration = process.iterate(REQUEST, model_level=1)
        assert iteration.model.size() == 6
        assert iteration.gantt is None  # No implementation-level ops.
        assert iteration.feedback  # Unmodeled system ops reported.

    def test_system_level_iteration(self, process):
        iteration = process.iterate(REQUEST, model_level=2)
        assert iteration.gantt is None
        missions = {m for m, _a in iteration.feedback}
        assert "LocalSuperstep" in missions

    def test_iterations_accumulate(self, process):
        process.iterate(REQUEST, model_level=1)
        process.iterate(REQUEST)
        assert [it.index for it in process.iterations] == [1, 2]

    def test_refine_adopts_new_model(self, process):
        original_version = process.model.version
        refined = giraph_model()
        process.refine(refined)
        assert process.model is refined
        assert process.model.version == original_version + 1

    def test_refine_validates(self, process):
        bad = JobModel("Bad", OperationModel("Job", "x", level=2))
        with pytest.raises(ModelValidationError):
            process.refine(bad)
