"""Unit tests for the performance-model language."""

import pytest

from repro.core.model.info import DERIVED, IMPLICIT_INFOS, RECORDED, InfoSpec
from repro.core.model.job import CANONICAL_LEVELS, JobModel
from repro.core.model.operation import (
    Multiplicity,
    OperationModel,
    split_iteration,
)
from repro.errors import ModelError


class TestSplitIteration:
    def test_plain_name(self):
        assert split_iteration("LoadGraph") == ("LoadGraph", None)

    def test_iterated_name(self):
        assert split_iteration("Compute-4") == ("Compute", 4)

    def test_multi_digit(self):
        assert split_iteration("Superstep-12") == ("Superstep", 12)

    def test_instance_suffix(self):
        assert split_iteration("Worker-8") == ("Worker", 8)

    def test_dash_without_number(self):
        assert split_iteration("Pre-Step") == ("Pre-Step", None)

    def test_interior_number(self):
        assert split_iteration("Step-2-Go") == ("Step-2-Go", None)


class TestInfoSpec:
    def test_valid_sources(self):
        assert InfoSpec("X", RECORDED).is_recorded
        assert InfoSpec("Y", DERIVED).is_derived

    def test_empty_name_rejected(self):
        with pytest.raises(ModelError):
            InfoSpec("")

    def test_bad_source_rejected(self):
        with pytest.raises(ModelError):
            InfoSpec("X", "guessed")

    def test_implicit_infos(self):
        names = [i.name for i in IMPLICIT_INFOS]
        assert names == ["StartTime", "EndTime", "Duration"]


class TestOperationModel:
    def test_rejects_iteration_suffix_in_mission(self):
        with pytest.raises(ModelError):
            OperationModel("Compute-4", "Worker")

    def test_rejects_empty_fields(self):
        with pytest.raises(ModelError):
            OperationModel("", "Worker")
        with pytest.raises(ModelError):
            OperationModel("X", "")

    def test_rejects_bad_multiplicity(self):
        with pytest.raises(ModelError):
            OperationModel("X", "W", multiplicity="sometimes")

    def test_rejects_bad_level(self):
        with pytest.raises(ModelError):
            OperationModel("X", "W", level=0)

    def test_add_child_and_lookup(self):
        parent = OperationModel("Job", "Client")
        child = parent.add_child(OperationModel("Load", "Master"))
        assert parent.child("Load") is child

    def test_duplicate_child_rejected(self):
        parent = OperationModel("Job", "Client")
        parent.add_child(OperationModel("Load", "Master"))
        with pytest.raises(ModelError):
            parent.add_child(OperationModel("Load", "Master"))

    def test_missing_child_lookup(self):
        with pytest.raises(ModelError):
            OperationModel("Job", "Client").child("Nope")

    def test_duplicate_info_rejected(self):
        op = OperationModel("X", "W")
        op.add_info(InfoSpec("Bytes"))
        with pytest.raises(ModelError):
            op.add_info(InfoSpec("Bytes"))

    def test_walk_preorder(self):
        root = OperationModel("A", "x")
        b = root.add_child(OperationModel("B", "x"))
        b.add_child(OperationModel("C", "x"))
        root.add_child(OperationModel("D", "x"))
        assert [n.mission for n in root.walk()] == ["A", "B", "C", "D"]

    def test_matches_single(self):
        op = OperationModel("LoadGraph", "Master")
        assert op.matches("LoadGraph", "Master")
        assert not op.matches("LoadGraph-1", "Master")
        assert not op.matches("Other", "Master")

    def test_matches_iterated(self):
        op = OperationModel("Superstep", "Master",
                            multiplicity=Multiplicity.ITERATED)
        assert op.matches("Superstep-0", "Master")
        assert op.matches("Superstep", "Master")

    def test_matches_per_actor(self):
        op = OperationModel("LocalLoad", "Worker",
                            multiplicity=Multiplicity.PER_ACTOR)
        assert op.matches("LocalLoad", "Worker-3")
        assert not op.matches("LocalLoad", "Master")

    def test_matches_per_actor_iterated(self):
        op = OperationModel("Compute", "Worker",
                            multiplicity=Multiplicity.PER_ACTOR_ITERATED)
        assert op.matches("Compute-7", "Worker-2")


class TestJobModel:
    def make_model(self):
        root = OperationModel("Job", "Client", level=1)
        load = root.add_child(OperationModel("Load", "Master", level=2))
        load.add_child(OperationModel(
            "LocalLoad", "Worker", level=3,
            multiplicity=Multiplicity.PER_ACTOR))
        return JobModel("Test", root)

    def test_requires_platform_name(self):
        with pytest.raises(ModelError):
            JobModel("", OperationModel("Job", "C"))

    def test_find_by_base_name(self):
        model = self.make_model()
        assert model.find("LocalLoad").actor_type == "Worker"
        assert model.find("LocalLoad-3").mission == "LocalLoad"

    def test_find_missing(self):
        with pytest.raises(ModelError):
            self.make_model().find("Ghost")

    def test_has(self):
        model = self.make_model()
        assert model.has("Load")
        assert model.has("Load-1")
        assert not model.has("Ghost")

    def test_match_concrete_instance(self):
        model = self.make_model()
        node = model.match("LocalLoad", "Worker-5")
        assert node is model.find("LocalLoad")
        assert model.match("LocalLoad", "Master") is None
        assert model.match("Ghost", "Worker") is None

    def test_levels(self):
        model = self.make_model()
        assert model.max_level() == 3
        assert [n.mission for n in model.at_level(2)] == ["Load"]

    def test_size(self):
        assert self.make_model().size() == 3

    def test_truncated_drops_deep_nodes(self):
        model = self.make_model()
        coarse = model.truncated(2)
        assert coarse.size() == 2
        assert not coarse.has("LocalLoad")
        # The original is untouched.
        assert model.has("LocalLoad")

    def test_truncated_rejects_bad_level(self):
        with pytest.raises(ModelError):
            self.make_model().truncated(0)

    def test_render_tree_mentions_levels(self):
        text = self.make_model().render_tree()
        assert "[domain]" in text
        assert "[system]" in text
        assert "[impl L3]" in text

    def test_canonical_levels(self):
        names = [l.name for l in CANONICAL_LEVELS]
        assert names == ["domain", "system", "implementation"]
