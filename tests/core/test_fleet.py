"""Unit tests for the fleet analytics engine and its query AST."""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.core.analysis.fleet import (
    FleetScanSession,
    fleet_findings,
    percentile_of,
    reduce_single,
    render_fleet_text,
    run_fleet_query,
)
from repro.core.analysis.fleetplan import AggSpec, FleetPlan
from repro.core.archive.store import ArchiveStore
from repro.errors import ArchiveError, QueryError
from tests.service.conftest import make_archive


@pytest.fixture()
def fleet_store(tmp_path) -> ArchiveStore:
    store = ArchiveStore(tmp_path / "fleet")
    store.save(make_archive("alpha", platform="Giraph", supersteps=3))
    store.save(make_archive("beta", platform="Giraph", supersteps=5))
    store.save(make_archive("gamma", platform="PowerGraph",
                            algorithm="pr", supersteps=4))
    store.save(make_archive("delta", platform="PowerGraph",
                            algorithm="pr", dataset="d2", supersteps=2))
    return store


class TestAggSpec:
    def test_simple_aggregations_parse(self):
        for name in ("count", "sum", "mean", "min", "max"):
            agg = AggSpec.parse(name)
            assert (agg.kind, agg.label) == (name, name)

    def test_percentile_and_topk_parse(self):
        p = AggSpec.parse("p95")
        assert (p.kind, p.q, p.label) == ("percentile", 95.0, "p95")
        assert AggSpec.parse("p99.9").q == 99.9
        assert AggSpec.parse("p100").q == 100.0
        top = AggSpec.parse("top3")
        assert (top.kind, top.k) == ("top", 3)

    @pytest.mark.parametrize("bad", ["bogus", "p101", "p-1", "top0",
                                     "topx", "p", ""])
    def test_malformed_aggregations_raise(self, bad):
        with pytest.raises(QueryError):
            AggSpec.parse(bad)


class TestFleetPlan:
    def test_defaults(self):
        plan = FleetPlan()
        assert plan.op == "query"
        assert plan.group_by == ("platform",)
        assert [a.label for a in plan.aggs] == ["count"]
        assert plan.metric == "duration"

    def test_from_params_round_trips_through_json(self):
        params = {"group_by": "platform,meta:algorithm",
                  "agg": "count,mean,p95,top2", "mission": "Superstep",
                  "platform": "Giraph"}
        from_params = FleetPlan.from_params(params)
        from_json = FleetPlan.from_json(
            json.loads(from_params.canonical())
        )
        assert from_json == from_params
        assert from_json.canonical() == from_params.canonical()

    def test_unknown_params_and_fields_rejected(self):
        with pytest.raises(QueryError, match="unknown fleet parameter"):
            FleetPlan.from_params({"nope": "1"})
        with pytest.raises(QueryError, match="unknown fleet plan field"):
            FleetPlan.from_json({"op": "query", "nope": 1})

    def test_group_by_validation(self):
        with pytest.raises(QueryError, match="unknown group-by"):
            FleetPlan.from_params({"group_by": "job_id"})
        with pytest.raises(QueryError, match="duplicate"):
            FleetPlan.from_params({"group_by": "platform,platform"})
        with pytest.raises(QueryError, match="names no metadata key"):
            FleetPlan.from_params({"group_by": "meta:"})
        with pytest.raises(QueryError, match="at least one group-by"):
            FleetPlan.from_params({"group_by": ","})

    def test_series_takes_exactly_one_scalar_aggregation(self):
        with pytest.raises(QueryError, match="exactly one"):
            FleetPlan.from_params({"agg": "sum,mean"}, op="series")
        with pytest.raises(QueryError, match="top-k"):
            FleetPlan.from_params({"agg": "top3"}, op="series")
        plan = FleetPlan.from_params({}, op="series")
        assert [a.label for a in plan.aggs] == ["sum"]

    def test_k_sigma_validation(self):
        with pytest.raises(QueryError, match="not a number"):
            FleetPlan.from_params({"k": "abc"}, op="regressions")
        with pytest.raises(QueryError, match="positive"):
            FleetPlan.from_params({"k": "0"}, op="regressions")
        with pytest.raises(QueryError, match="must be a number"):
            FleetPlan.from_json({"op": "regressions", "k": True})
        assert FleetPlan.from_params(
            {"k": "2.5"}, op="regressions").k_sigma == 2.5

    def test_unknown_op_rejected(self):
        with pytest.raises(QueryError, match="unknown fleet op"):
            FleetPlan(op="explode")

    def test_canonical_is_sorted_and_stable(self):
        plan = FleetPlan.from_params(
            {"group_by": "platform", "agg": "mean", "dataset": "d"})
        assert plan.canonical() == (
            '{"aggs":["mean"],"dataset":"d","group_by":["platform"],'
            '"metric":"duration","op":"query"}'
        )


class TestAggregationPrimitives:
    def test_percentile_of_nearest_rank(self):
        values = np.array([1.0, 2.0, 3.0, 4.0], dtype=np.float64)
        assert percentile_of(values, 50) == 2.0
        assert percentile_of(values, 100) == 4.0
        assert percentile_of(values, 0.1) == 1.0
        assert percentile_of(np.zeros(0), 50) is None

    def test_reduce_single_on_empty_vectors(self):
        empty = np.zeros(0, dtype=np.float64)
        assert reduce_single(empty, AggSpec.parse("count")) == 0
        assert reduce_single(empty, AggSpec.parse("sum")) == 0.0
        assert reduce_single(empty, AggSpec.parse("mean")) is None
        assert reduce_single(empty, AggSpec.parse("min")) is None
        assert reduce_single(empty, AggSpec.parse("p50")) is None

    def test_reduce_single_rejects_topk(self):
        with pytest.raises(QueryError):
            reduce_single(np.array([1.0]), AggSpec.parse("top2"))


class TestFleetQueries:
    def test_columnar_equals_tree_on_every_op(self, fleet_store):
        plans = [
            FleetPlan.from_params(
                {"group_by": "platform,algorithm",
                 "agg": "count,sum,mean,min,max,p50,top2"}),
            FleetPlan.from_params(
                {"group_by": "meta:algorithm", "agg": "mean",
                 "metric": "Duration"}),
            FleetPlan.from_params({"agg": "sum"}, op="series"),
            FleetPlan.from_params({"k": "1.0"}, op="regressions"),
        ]
        for plan in plans:
            columnar = run_fleet_query(fleet_store, plan, mode="auto")
            tree = run_fleet_query(fleet_store, plan, mode="tree")
            assert columnar == tree
            assert columnar["degraded_jobs"] == []

    def test_group_and_filter(self, fleet_store):
        plan = FleetPlan.from_params(
            {"group_by": "platform", "agg": "count"})
        document = run_fleet_query(fleet_store, plan)
        keys = [g["key"]["platform"] for g in document["groups"]]
        assert keys == ["Giraph", "PowerGraph"]
        assert document["jobs_scanned"] == 4

        only = FleetPlan.from_params(
            {"group_by": "platform", "platform": "Giraph"})
        document = run_fleet_query(fleet_store, only)
        assert document["jobs_scanned"] == 2
        assert [g["jobs"] for g in document["groups"]] == [2]

    def test_mission_selector_narrows_the_metric(self, fleet_store):
        plan = FleetPlan.from_params(
            {"group_by": "platform", "agg": "count",
             "mission": "Superstep", "platform": "Giraph"})
        document = run_fleet_query(fleet_store, plan)
        # alpha has 3 supersteps, beta 5.
        assert document["groups"][0]["aggs"]["count"] == 8

    def test_series_orders_points_by_timestamp(self, fleet_store):
        plan = FleetPlan.from_params(
            {"agg": "max", "mission": "Superstep"}, op="series")
        document = run_fleet_query(fleet_store, plan)
        assert [p["job_id"] for p in document["points"]] == [
            "alpha", "beta", "delta", "gamma",
        ]
        assert all(p["value"] == 2.0 for p in document["points"])

    def test_missing_sidecar_degrades_not_fails(self, fleet_store):
        fleet_store.sidecar_path("beta").unlink()
        fleet_store.sidecar_path("gamma").write_bytes(b"junk")
        plan = FleetPlan.from_params(
            {"group_by": "platform", "agg": "count,sum,p50"})
        columnar = run_fleet_query(fleet_store, plan, mode="auto")
        tree = run_fleet_query(fleet_store, plan, mode="tree")
        assert columnar["degraded_jobs"] == ["beta", "gamma"]
        assert dict(columnar, degraded_jobs=[]) == tree

    def test_fleet_findings_round_trip(self, fleet_store):
        plan = FleetPlan.from_params({"k": "0.5"}, op="regressions")
        document = run_fleet_query(fleet_store, plan)
        findings = fleet_findings(document)
        assert len(findings) == len(document["findings"])
        for finding, entry in zip(findings, document["findings"]):
            assert finding.kind == "fleet-regression"
            assert finding.subject == entry["subject"]

    def test_render_covers_every_op(self, fleet_store):
        for op, extra in (("query", {"agg": "mean,top1"}),
                          ("series", {"agg": "sum"}),
                          ("regressions", {"k": "0.5"})):
            plan = FleetPlan.from_params(dict(extra), op=op)
            text = render_fleet_text(run_fleet_query(fleet_store, plan))
            assert text.startswith(f"fleet {op}: 4 job(s) scanned")


@pytest.mark.skipif(not Path("/proc/self/fd").is_dir(),
                    reason="needs /proc file-descriptor listing")
class TestDescriptorHygiene:
    @staticmethod
    def _open_fds() -> int:
        return len(os.listdir("/proc/self/fd"))

    def test_fleet_query_leaks_no_descriptors(self, fleet_store):
        plan = FleetPlan.from_params(
            {"group_by": "platform", "agg": "count,p95,top2"})
        run_fleet_query(fleet_store, plan)  # warm caches/imports
        before = self._open_fds()
        for _ in range(3):
            run_fleet_query(fleet_store, plan)
        assert self._open_fds() == before

    def test_abandoned_scan_closes_on_exit(self, fleet_store):
        plan = FleetPlan()
        before = self._open_fds()
        with FleetScanSession(fleet_store, plan) as session:
            for _ in session.jobs():
                break  # abandon mid-fleet with a view open
        assert self._open_fds() == before

    def test_jobs_outside_context_raises(self, fleet_store):
        session = FleetScanSession(fleet_store, FleetPlan())
        with pytest.raises(QueryError):
            next(session.jobs())


class TestStoreFastPath:
    def test_sidecar_rebuild_matches_json_rebuild_bytes(self, fleet_store):
        index_path = fleet_store.directory / "index.json"
        expected = index_path.read_bytes()

        # Fast path: every sidecar present -> no JSON archive parsed.
        index_path.unlink()
        from repro.core.archive import store as store_module

        original = store_module.ArchiveHandle.index_entry
        store_module.ArchiveHandle.index_entry = _boom
        try:
            rebuilt = ArchiveStore(fleet_store.directory)
            assert rebuilt.list() == fleet_store.list()
        finally:
            store_module.ArchiveHandle.index_entry = original
        assert index_path.read_bytes() == expected

        # Fallback: no sidecars -> identical index from the JSON parse.
        for job_id in fleet_store.list():
            fleet_store.sidecar_path(job_id).unlink()
        index_path.unlink()
        ArchiveStore(fleet_store.directory)
        assert index_path.read_bytes() == expected

    def test_mismatched_sidecar_binding_falls_back(self, fleet_store):
        # A sidecar describing different archive bytes must be ignored.
        alpha = fleet_store.sidecar_path("alpha")
        alpha.write_bytes(fleet_store.sidecar_path("beta").read_bytes())
        (fleet_store.directory / "index.json").unlink()
        rebuilt = ArchiveStore(fleet_store.directory)
        assert rebuilt.summary("alpha")["platform"] == "Giraph"
        assert rebuilt.list() == ["alpha", "beta", "delta", "gamma"]


def _boom(self):  # pragma: no cover - only reached on regression
    raise AssertionError("index_entry() called despite sidecar fast path")


class TestStorePaging:
    def test_iter_jobs_pages_the_filtered_sequence(self, fleet_store):
        assert list(fleet_store.iter_jobs(limit=2)) == ["alpha", "beta"]
        assert list(fleet_store.iter_jobs(offset=2)) == ["delta", "gamma"]
        assert list(fleet_store.iter_jobs(
            platform="PowerGraph", offset=1, limit=1)) == ["gamma"]
        assert list(fleet_store.iter_jobs(offset=99)) == []
        assert list(fleet_store.iter_jobs(limit=0)) == []

    def test_iter_jobs_rejects_negative_paging(self, fleet_store):
        with pytest.raises(ArchiveError):
            list(fleet_store.iter_jobs(offset=-1))
        with pytest.raises(ArchiveError):
            list(fleet_store.iter_jobs(limit=-1))

    def test_listing_checksum_tracks_content(self, fleet_store):
        first = fleet_store.listing_checksum()
        assert first == fleet_store.listing_checksum()
        assert ArchiveStore(
            fleet_store.directory).listing_checksum() == first
        fleet_store.save(make_archive("omega"))
        assert fleet_store.listing_checksum() != first
