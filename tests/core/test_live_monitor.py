"""Tests for live monitoring: incremental snapshots and SSE framing."""

import io
import json
import threading

from repro import logformat
from repro.core.archive.archive import PROVENANCE_INFERRED
from repro.core.archive.serialize import archive_from_json, archive_to_json
from repro.core.monitor.live import (
    LiveJobRegistry,
    LiveMonitor,
    complete_payload,
    iter_sse_events,
    sse_comment,
    sse_event,
)
from repro.core.monitor.records import EnvSample
from repro.core.monitor.salvage import salvage_archive


def line(ts, event, uid, job="job-1", **extra):
    fields = {"ts": str(ts), "job": job, "event": event, "uid": uid}
    fields.update({k: str(v) for k, v in extra.items()})
    return logformat.format_line(fields)


def full_log(job="job-1"):
    """A well-formed three-operation log."""
    return [
        line(0.0, "start", "j", job, parent="-", mission="GiraphJob",
             actor="GiraphClient"),
        line(1.0, "start", "a", job, parent="j", mission="Startup",
             actor="Master"),
        line(5.0, "end", "a", job),
        line(5.0, "start", "b", job, parent="j", mission="LoadGraph",
             actor="Worker-1"),
        line(9.0, "end", "b", job),
        line(10.0, "end", "j", job),
    ]


class TestLiveMonitor:
    def test_no_snapshot_before_records(self):
        monitor = LiveMonitor("job-1")
        assert monitor.snapshot() is None
        monitor.feed(["garbage that is not a granula line"])
        assert monitor.snapshot() is None

    def test_partial_snapshot_has_inferred_ends(self):
        monitor = LiveMonitor("job-1", platform="Giraph")
        monitor.feed(full_log()[:2])  # two starts, no ends yet
        snap = monitor.snapshot()
        assert snap is not None
        assert not snap.complete
        assert snap.inferred_ends == 2
        archive = archive_from_json(snap.body.decode("utf-8"))
        assert archive.metadata["live"]["partial"] is True
        assert all(
            op.provenance == PROVENANCE_INFERRED for op in archive.walk()
        )

    def test_seq_monotonic_and_stable_without_feeds(self):
        monitor = LiveMonitor("job-1")
        log = full_log()
        monitor.feed(log[:2])
        first = monitor.snapshot()
        again = monitor.snapshot()
        assert again is first  # no feed -> identical snapshot object
        monitor.feed(log[2:4])
        second = monitor.snapshot()
        assert second.seq == first.seq + 1
        monitor.feed([])  # empty feed does not dirty the monitor
        assert monitor.snapshot() is second

    def test_every_snapshot_is_a_valid_archive(self):
        monitor = LiveMonitor("job-1", platform="Giraph")
        log = full_log()
        bodies = []
        for i in range(len(log)):
            monitor.feed([log[i]])
            snap = monitor.snapshot()
            if snap is not None:
                bodies.append(snap.body)
        assert bodies
        for body in bodies:
            archive = archive_from_json(body.decode("utf-8"))
            assert archive.job_id == "job-1"
            assert archive.root.mission == "GiraphJob"

    def test_open_operation_closes_in_later_snapshot(self):
        monitor = LiveMonitor("job-1")
        log = full_log()
        monitor.feed(log[:2])
        early = archive_from_json(monitor.snapshot().body.decode("utf-8"))
        startup = early.root.children[0]
        assert startup.provenance == PROVENANCE_INFERRED
        monitor.feed(log[2:])
        late = archive_from_json(monitor.snapshot().body.decode("utf-8"))
        startup = late.root.children[0]
        assert startup.provenance != PROVENANCE_INFERRED
        assert startup.end_time == 5.0

    def test_final_snapshot_is_byte_identical_to_store_format(self):
        log = full_log()
        archive, _report = salvage_archive(log, platform="Giraph")
        monitor = LiveMonitor("job-1", platform="Giraph")
        monitor.feed(log)
        final = monitor.complete(archive)
        assert final.complete
        assert final.body == archive_to_json(archive).encode("utf-8")
        assert monitor.is_complete
        # Feeding after completion is a silent no-op.
        assert monitor.feed(["tail straggler"]) == 0
        assert monitor.snapshot() is final

    def test_env_samples_flow_into_snapshots(self):
        monitor = LiveMonitor("job-1")
        monitor.feed(full_log()[:2], [EnvSample(0.5, "node085", 3.0)])
        archive = archive_from_json(monitor.snapshot().body.decode("utf-8"))
        assert archive.env_samples == [(0.5, "node085", 3.0)]

    def test_replay_chunks_produce_intermediate_snapshots(self):
        log = full_log()
        monitor = LiveMonitor("job-1", replay_chunks=3)
        seen = []
        done = threading.Event()

        def watch():
            since = 0
            while True:
                snap = monitor.wait(since, timeout=5.0)
                if snap is None:
                    break
                if snap.seq > since:
                    seen.append(snap)
                    since = snap.seq
                if snap.complete:
                    break
            done.set()

        thread = threading.Thread(target=watch)
        thread.start()
        # A small delay makes the watcher observe intermediate states.
        monitor.replay(log, chunks=3, delay=0.05)
        archive, _ = salvage_archive(log, platform="Giraph")
        monitor.complete(archive)
        assert done.wait(10.0)
        thread.join(10.0)
        seqs = [snap.seq for snap in seen]
        assert seqs == sorted(set(seqs))
        assert len(seen) >= 2  # at least one partial + the final
        assert seen[-1].complete
        assert any(snap.inferred_ends for snap in seen[:-1])

    def test_wait_timeout_returns_none(self):
        monitor = LiveMonitor("job-1")
        assert monitor.wait(0, timeout=0.01) is None

    def test_abort_releases_waiters_and_reports_error(self):
        monitor = LiveMonitor("job-1")
        monitor.feed(full_log()[:2])
        snap = monitor.snapshot()
        monitor.abort("worker exploded")
        assert monitor.is_complete
        assert monitor.error == "worker exploded"
        # wait() returns the last partial immediately so streams end.
        assert monitor.wait(snap.seq, timeout=5.0) is snap
        payload = json.loads(complete_payload(monitor))
        assert payload["error"] == "worker exploded"
        assert payload["final_seq"] == snap.seq

    def test_malformed_suffix_keeps_previous_snapshot(self):
        monitor = LiveMonitor("job-1")
        monitor.feed(full_log()[:3])
        before = monitor.snapshot()
        monitor.feed(["\x00\x01 binary garbage"])
        after = monitor.snapshot()
        # The garbage parses to no *new* records; the snapshot stays
        # consistent (same archive shape, possibly re-built).
        archive = archive_from_json(after.body.decode("utf-8"))
        assert archive.root.mission == "GiraphJob"
        assert after.records == before.records


class TestLiveJobRegistry:
    def test_open_get_jobs(self):
        registry = LiveJobRegistry()
        assert registry.get("nope") is None
        monitor = registry.open("job-1", platform="Giraph")
        assert registry.get("job-1") is monitor
        assert registry.jobs() == ["job-1"]
        replaced = registry.open("job-1")
        assert registry.get("job-1") is replaced

    def test_stream_accounting_and_drain(self):
        registry = LiveJobRegistry()
        assert registry.drain(timeout=0.01) is True
        registry.stream_opened()
        registry.stream_opened()
        assert registry.active_streams == 2
        assert registry.drain(timeout=0.05) is False

        def release():
            registry.stream_closed()
            registry.stream_closed()

        timer = threading.Timer(0.05, release)
        timer.start()
        assert registry.drain(timeout=5.0) is True
        timer.join()
        assert registry.active_streams == 0

    def test_stream_closed_never_goes_negative(self):
        registry = LiveJobRegistry()
        registry.stream_closed()
        assert registry.active_streams == 0


class TestSseFraming:
    def test_event_round_trip(self):
        wire = sse_event(b'{"a":1}', event="snapshot", event_id=7)
        wire += sse_comment()
        wire += sse_event(b"done", event="complete", event_id=8)
        events = list(iter_sse_events(io.BytesIO(wire)))
        assert [e.event for e in events] == ["snapshot", "complete"]
        assert events[0].event_id == 7
        assert events[0].data == b'{"a":1}'
        assert events[1].event_id == 8

    def test_multiline_data_round_trips(self):
        wire = sse_event(b"line1\nline2", event="snapshot", event_id=1)
        [event] = list(iter_sse_events(io.BytesIO(wire)))
        assert event.data == b"line1\nline2"

    def test_comment_is_skipped(self):
        assert list(iter_sse_events(io.BytesIO(sse_comment()))) == []

    def test_crlf_line_endings_accepted(self):
        wire = b"id: 3\r\nevent: snapshot\r\ndata: x\r\n\r\n"
        [event] = list(iter_sse_events(io.BytesIO(wire)))
        assert event.event_id == 3
        assert event.data == b"x"
