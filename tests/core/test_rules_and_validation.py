"""Unit tests for derivation rules and model validation."""

import pytest

from repro.core.archive.archive import ArchivedOperation
from repro.core.model.giraph_model import giraph_model
from repro.core.model.info import DERIVED, InfoSpec
from repro.core.model.job import JobModel
from repro.core.model.library import default_library, domain_level_model
from repro.core.model.operation import OperationModel
from repro.core.model.powergraph_model import powergraph_model
from repro.core.model.rules import (
    ChildCountRule,
    ChildDurationStatsRule,
    DurationRule,
    InfoSumRule,
    ShareOfParentRule,
)
from repro.core.model.validation import validate_model
from repro.errors import ArchiveBuildError, ModelError, ModelValidationError


def op(mission, actor="x", start=0.0, end=1.0, infos=None, parent=None):
    node = ArchivedOperation(
        uid=f"{mission}@{actor}@{id(object())}",
        mission=mission, actor=actor,
        start_time=start, end_time=end, infos=infos or {},
    )
    if parent is not None:
        node.parent = parent
        parent.children.append(node)
    return node


class TestDurationRule:
    def test_basic(self):
        assert DurationRule().compute(op("A", end=2.5)) == 2.5

    def test_missing_times_skip(self):
        node = ArchivedOperation(uid="u", mission="A", actor="x")
        assert DurationRule().compute(node) is None

    def test_rejects_empty_target(self):
        with pytest.raises(ArchiveBuildError):
            DurationRule("")


class TestInfoSumRule:
    def test_sums_children(self):
        parent = op("P")
        op("C", infos={"Bytes": 10}, parent=parent)
        op("C", infos={"Bytes": 5}, parent=parent)
        rule = InfoSumRule("Total", "Bytes")
        assert rule.compute(parent) == 15

    def test_filters_by_child_mission(self):
        parent = op("P")
        op("C-1", infos={"Bytes": 10}, parent=parent)
        op("D", infos={"Bytes": 99}, parent=parent)
        rule = InfoSumRule("Total", "Bytes", child_mission="C")
        assert rule.compute(parent) == 10

    def test_no_matching_children_skips(self):
        assert InfoSumRule("Total", "Bytes").compute(op("P")) is None


class TestShareOfParentRule:
    def test_share(self):
        parent = op("P", start=0.0, end=10.0)
        child = op("C", start=0.0, end=4.0, parent=parent)
        assert ShareOfParentRule().compute(child) == pytest.approx(0.4)

    def test_root_skipped(self):
        assert ShareOfParentRule().compute(op("P")) is None

    def test_zero_parent_duration_skipped(self):
        parent = op("P", start=1.0, end=1.0)
        child = op("C", parent=parent)
        assert ShareOfParentRule().compute(child) is None


class TestChildCountRule:
    def test_counts_matching(self):
        parent = op("P")
        op("Superstep-0", parent=parent)
        op("Superstep-1", parent=parent)
        op("Other", parent=parent)
        assert ChildCountRule("N", "Superstep").compute(parent) == 2


class TestChildDurationStatsRule:
    def make_parent(self):
        parent = op("P")
        op("C-0", start=0.0, end=1.0, parent=parent)
        op("C-0", start=0.0, end=2.0, parent=parent)
        op("C-0", start=0.0, end=3.0, parent=parent)
        return parent

    def test_max_min_mean(self):
        parent = self.make_parent()
        assert ChildDurationStatsRule("M", "C", "max").compute(parent) == 3.0
        assert ChildDurationStatsRule("M", "C", "min").compute(parent) == 1.0
        assert ChildDurationStatsRule("M", "C", "mean").compute(parent) == 2.0

    def test_imbalance(self):
        parent = self.make_parent()
        value = ChildDurationStatsRule("M", "C", "imbalance").compute(parent)
        assert value == pytest.approx(1.5)

    def test_unknown_statistic_rejected(self):
        with pytest.raises(ArchiveBuildError):
            ChildDurationStatsRule("M", "C", "median")

    def test_no_children_skips(self):
        rule = ChildDurationStatsRule("M", "C", "max")
        assert rule.compute(op("P")) is None


class TestValidation:
    def test_shipped_models_valid(self):
        assert validate_model(giraph_model()) == []
        assert validate_model(powergraph_model()) == []
        assert validate_model(domain_level_model()) == []

    def test_repeated_mission_on_path(self):
        root = OperationModel("Job", "x", level=1)
        child = root.add_child(OperationModel("Phase", "x", level=2))
        child.add_child(OperationModel("Job", "x", level=3))
        problems = validate_model(JobModel("T", root), strict=False)
        assert any("repeats" in p for p in problems)

    def test_level_inversion(self):
        root = OperationModel("Job", "x", level=2)
        root.add_child(OperationModel("Up", "x", level=1))
        problems = validate_model(JobModel("T", root), strict=False)
        assert any("above parent level" in p for p in problems)
        assert any("root" in p for p in problems)

    def test_derived_info_without_rule(self):
        root = OperationModel("Job", "x", level=1)
        root.add_info(InfoSpec("Metric", DERIVED))
        problems = validate_model(JobModel("T", root), strict=False)
        assert any("has no rule" in p for p in problems)

    def test_rule_with_undeclared_target(self):
        root = OperationModel("Job", "x", level=1)
        root.add_rule(ChildCountRule("Ghost", "X"))
        problems = validate_model(JobModel("T", root), strict=False)
        assert any("undeclared" in p for p in problems)

    def test_implicit_targets_always_declared(self):
        root = OperationModel("Job", "x", level=1)
        root.add_rule(DurationRule())
        assert validate_model(JobModel("T", root), strict=False) == []

    def test_strict_raises(self):
        root = OperationModel("Job", "x", level=2)
        with pytest.raises(ModelValidationError):
            validate_model(JobModel("T", root), strict=True)


class TestLibrary:
    def test_default_library_contents(self):
        library = default_library()
        # One model per Table 1 platform plus the generic domain model.
        assert set(library.platforms()) == {
            "generic", "giraph", "powergraph", "hadoop", "graphmat",
            "pgx.d", "openg", "totem",
        }
        assert library.has("Giraph")
        assert library.has("POWERGRAPH")
        assert library.has("hadoop")

    def test_get_returns_fresh_instances(self):
        library = default_library()
        a = library.get("Giraph")
        b = library.get("Giraph")
        assert a is not b
        assert a.size() == b.size()

    def test_unknown_platform(self):
        with pytest.raises(ModelError):
            default_library().get("Spark")

    def test_duplicate_registration_rejected(self):
        library = default_library()
        with pytest.raises(ModelError):
            library.register("Giraph", giraph_model)

    def test_platform_models_share_domain_level(self):
        g = giraph_model()
        p = powergraph_model()
        g_domain = [c.mission for c in g.root.children]
        p_domain = [c.mission for c in p.root.children]
        assert g_domain == p_domain

    def test_giraph_model_is_four_levels(self):
        assert giraph_model().max_level() == 4

    def test_powergraph_model_is_three_levels(self):
        assert powergraph_model().max_level() == 3
