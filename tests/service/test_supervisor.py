"""Shard-worker supervision: restarts, fencing, probe chaos.

These tests fork real worker processes (the production path) but keep
every interval tight so a full kill→restart→live cycle fits in a couple
of seconds.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import ServiceError
from repro.service.chaos import ChaosController, ChaosPlan, ProbeTimeout
from repro.service.supervisor import ShardSupervisor


def fast_supervisor(dirs, **overrides):
    options = dict(
        probe_interval=0.1,
        probe_timeout=1.0,
        heartbeat_timeout=2.0,
        suspect_threshold=2,
        restart_backoff_base=0.05,
        restart_backoff_cap=0.5,
        max_restart_streak=4,
        streak_reset_after=1.0,
    )
    options.update(overrides)
    return ShardSupervisor(dirs, **options)


def wait_for(predicate, timeout=15.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestLifecycle:
    def test_empty_shard_list_rejected(self):
        with pytest.raises(ServiceError):
            ShardSupervisor([])

    def test_workers_come_up_live(self, tmp_path):
        supervisor = fast_supervisor(
            [tmp_path / "s0", tmp_path / "s1"]
        )
        supervisor.start()
        try:
            assert supervisor.wait_live(timeout=20.0)
            assert supervisor.degraded() == []
            for index in range(2):
                assert supervisor.state(index) == "live"
                assert supervisor.endpoint(index).startswith(
                    "http://127.0.0.1:"
                )
                assert supervisor.worker_pid(index)
        finally:
            supervisor.stop()

    def test_killed_worker_restarts_and_recovers(self, tmp_path):
        supervisor = fast_supervisor([tmp_path / "s0"])
        supervisor.start()
        try:
            assert supervisor.wait_live(timeout=20.0)
            first_pid = supervisor.worker_pid(0)
            supervisor.kill_worker(0)
            # The death is observed, the shard leaves live...
            assert wait_for(lambda: supervisor.state(0) != "live")
            # ...and comes back with a fresh process.
            assert wait_for(lambda: supervisor.state(0) == "live")
            assert supervisor.worker_pid(0) != first_pid
            stats = supervisor.stats()
            assert stats["counters"]["restarts_total"] >= 1
            assert stats["shards"][0]["restart_reason"]
        finally:
            supervisor.stop()

    def test_stop_terminates_every_worker(self, tmp_path):
        supervisor = fast_supervisor(
            [tmp_path / "s0", tmp_path / "s1"]
        )
        supervisor.start()
        assert supervisor.wait_live(timeout=20.0)
        procs = [shard.process for shard in supervisor._shards]
        supervisor.stop()
        assert all(not p.is_alive() for p in procs)


class TestFencing:
    def test_crash_looping_shard_is_fenced(self, tmp_path):
        # A regular file where the store directory should be makes the
        # worker die instantly on every spawn: the restart streak runs
        # out and the shard is fenced instead of spinning forever.
        broken = tmp_path / "not-a-directory"
        broken.write_text("occupied")
        supervisor = fast_supervisor(
            [broken], max_restart_streak=2,
        )
        supervisor.start()
        try:
            assert wait_for(
                lambda: supervisor.state(0) == "fenced", timeout=30.0
            )
            assert supervisor.endpoint(0) is None
            assert supervisor.degraded() == [0]
            assert supervisor.stats()["counters"]["fenced_total"] == 1
            # Fenced is terminal: the keyspace hint is the ceiling.
            assert supervisor.retry_after(0) == 120.0
            # wait_live treats a fenced fleet as settled but not live.
            assert supervisor.wait_live(timeout=1.0) is False
        finally:
            supervisor.stop()

    def test_healthy_sibling_unaffected_by_fenced_shard(self, tmp_path):
        broken = tmp_path / "broken"
        broken.write_text("occupied")
        supervisor = fast_supervisor(
            [tmp_path / "good", broken], max_restart_streak=1,
        )
        supervisor.start()
        try:
            assert wait_for(
                lambda: supervisor.state(1) == "fenced", timeout=30.0
            )
            assert supervisor.state(0) == "live"
            assert supervisor.degraded() == [1]
        finally:
            supervisor.stop()


class TestProbeChaos:
    def test_probe_timeouts_drive_a_restart(self, tmp_path):
        # Two consecutive injected probe timeouts cross the suspect
        # threshold: the supervisor restarts a worker whose process is
        # perfectly alive — exactly what a hung-but-running worker
        # looks like from outside.
        plan = ChaosPlan(events=(
            ProbeTimeout(shard=0, after=2, count=2),
        ))
        supervisor = fast_supervisor(
            [tmp_path / "s0"], chaos=ChaosController(plan),
        )
        supervisor.start()
        try:
            assert supervisor.wait_live(timeout=20.0)
            assert wait_for(
                lambda: supervisor.stats()["counters"]["restarts_total"]
                >= 1,
                timeout=20.0,
            )
            assert wait_for(lambda: supervisor.state(0) == "live",
                            timeout=20.0)
            injected = supervisor.chaos.stats()["injected"]
            assert injected.get("probe_timeout") == 2
        finally:
            supervisor.stop()


class TestRetryAfter:
    def test_restarting_shard_hints_its_backoff(self, tmp_path):
        supervisor = fast_supervisor([tmp_path / "s0"])
        supervisor.start()
        try:
            assert supervisor.wait_live(timeout=20.0)
            supervisor.kill_worker(0)
            assert wait_for(
                lambda: supervisor.state(0) in ("restarting", "live")
            )
            hint = supervisor.retry_after(0)
            assert 1.0 <= hint <= 120.0
        finally:
            supervisor.stop()
