"""Unit tests for service request metrics."""

from repro.service.metrics import ServiceMetrics, percentile


class TestPercentile:
    def test_nearest_rank(self):
        values = [float(v) for v in range(101)]
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.99) == 99.0
        assert percentile([42.0], 0.90) == 42.0

    def test_unsorted_input(self):
        assert percentile([3.0, 1.0, 2.0], 1.0) == 3.0


class TestServiceMetrics:
    def test_counts_and_statuses(self):
        metrics = ServiceMetrics()
        metrics.observe("/jobs", 200, 0.010)
        metrics.observe("/jobs", 200, 0.020)
        metrics.observe("/jobs/{id}", 404, 0.001)
        metrics.observe("/jobs/{id}", 304, 0.0005)
        snapshot = metrics.snapshot({"hits": 1, "misses": 2})
        assert snapshot["requests_total"] == 4
        assert snapshot["requests_by_endpoint"]["/jobs"] == 2
        assert snapshot["responses_by_status"] == {
            "200": 2, "404": 1, "304": 1}
        assert snapshot["not_modified_total"] == 1
        assert snapshot["cache"] == {"hits": 1, "misses": 2}

    def test_latency_percentiles_in_ms(self):
        metrics = ServiceMetrics()
        for ms in (10, 20, 30, 40, 50):
            metrics.observe("/jobs", 200, ms / 1000.0)
        latency = metrics.snapshot({})["latency_ms"]["/jobs"]
        assert latency["p50_ms"] == 30.0
        assert latency["p99_ms"] == 50.0
