"""Service test fixtures: a populated store and a service over it."""

from __future__ import annotations

import pytest

from repro.core.archive.archive import ArchivedOperation, PerformanceArchive
from repro.core.archive.store import ArchiveStore
from repro.service.app import ArchiveService


def make_archive(job_id: str, platform: str = "Test",
                 algorithm: str = "bfs", supersteps: int = 3,
                 dataset: str = "d") -> PerformanceArchive:
    root = ArchivedOperation(f"{job_id}:u0", "Job", "Client",
                             0.0, 4.0 + 2.0 * supersteps)
    load = ArchivedOperation(f"{job_id}:u1", "LoadGraph", "Master",
                             0.0, 4.0, parent=root)
    root.children.append(load)
    for i in range(2):
        worker = ArchivedOperation(
            f"{job_id}:u2{i}", "LocalLoad", f"Worker-{i + 1}",
            0.0, 2.0 + i, infos={"BytesRead": 100 * (i + 1)}, parent=load,
        )
        load.children.append(worker)
    process = ArchivedOperation(f"{job_id}:u3", "ProcessGraph", "Master",
                                4.0, 4.0 + 2.0 * supersteps, parent=root)
    root.children.append(process)
    for k in range(supersteps):
        step = ArchivedOperation(
            f"{job_id}:u4{k}", f"Superstep-{k}", "Master",
            4.0 + 2 * k, 6.0 + 2 * k, infos={"Duration": 2.0},
            parent=process,
        )
        process.children.append(step)
    return PerformanceArchive(
        job_id, root, platform=platform,
        metadata={"algorithm": algorithm, "dataset": dataset},
        env_samples=[(0.0, "n1", 2.0), (1.0, "n1", 3.0)],
    )


@pytest.fixture()
def store(tmp_path) -> ArchiveStore:
    store = ArchiveStore(tmp_path / "store")
    store.save(make_archive("alpha", platform="Giraph"))
    store.save(make_archive("beta", platform="PowerGraph",
                            algorithm="pr"))
    store.save(make_archive("gamma", platform="Giraph", algorithm="wcc",
                            dataset="d2"))
    return store


@pytest.fixture()
def service(store) -> ArchiveService:
    return ArchiveService(store, cache_size=8)
