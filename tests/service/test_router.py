"""Consistent-hash ring and cluster router (no processes, no sockets).

The router is exercised through an injectable transport that dispatches
straight onto in-process :class:`ArchiveService` instances — one per
"shard" — and a fake supervisor whose states the tests flip by hand.
"""

from __future__ import annotations

import json

import pytest

from repro.core.archive.store import ArchiveStore
from repro.errors import ServiceError
from repro.service.app import ArchiveService, Response, json_response
from repro.service.router import (
    MIN_VNODES,
    ClusterService,
    ConsistentHashRing,
)
from tests.service.conftest import make_archive


class TestConsistentHashRing:
    def test_placement_is_deterministic_across_instances(self):
        first = ConsistentHashRing(5)
        second = ConsistentHashRing(5)
        keys = [f"job-{i}" for i in range(500)]
        assert [first.shard_for(k) for k in keys] == \
            [second.shard_for(k) for k in keys]

    def test_every_shard_owns_keyspace(self):
        ring = ConsistentHashRing(4)
        spread = ring.spread(f"job-{i}" for i in range(2000))
        assert set(spread) == {0, 1, 2, 3}
        assert all(count > 0 for count in spread.values())
        # 64 vnodes keep ownership within a loose band of fair share.
        assert max(spread.values()) < 3 * (2000 // 4)

    def test_vnode_floor_is_enforced(self):
        with pytest.raises(ServiceError):
            ConsistentHashRing(3, vnodes=MIN_VNODES - 1)
        with pytest.raises(ServiceError):
            ConsistentHashRing(0)

    def test_growing_the_ring_moves_a_minority_of_keys(self):
        small = ConsistentHashRing(3)
        grown = ConsistentHashRing(4)
        keys = [f"job-{i}" for i in range(2000)]
        moved = sum(
            1 for k in keys if small.shard_for(k) != grown.shard_for(k)
        )
        # Consistent hashing's whole point: adding a shard relocates
        # roughly 1/N of the keyspace, not all of it.
        assert moved < len(keys) // 2


class FakeSupervisor:
    """Supervisor stand-in with hand-settable per-shard states."""

    def __init__(self, count: int):
        self.states = ["live"] * count
        self.failures = []

    def __len__(self):
        return len(self.states)

    def state(self, index):
        return self.states[index]

    def endpoint(self, index):
        if self.states[index] in ("live", "suspect"):
            return f"fake://shard-{index}"
        return None

    def degraded(self):
        return [i for i, s in enumerate(self.states)
                if s not in ("live", "suspect")]

    def retry_after(self, index):
        return 2.0

    def record_failure(self, index, reason):
        self.failures.append((index, reason))

    def worker_pid(self, index):
        return 1000 + index

    def shard_directory(self, index):
        return f"/shards/{index}"

    def stats(self):
        return {"shards": [], "counters": {"restarts_total": 0}}


@pytest.fixture()
def cluster(tmp_path):
    """A 3-shard router over in-process services, plus its fakes."""
    supervisor = FakeSupervisor(3)
    probe = ClusterService.__new__(ClusterService)  # ring first
    ring = ConsistentHashRing(3)
    services = {}
    for index in range(3):
        store = ArchiveStore(tmp_path / f"shard-{index}")
        services[f"fake://shard-{index}"] = ArchiveService(store)
    # Jobs land on their ring-owned shard, as the real write path
    # guarantees.
    jobs = ["alpha", "beta", "gamma", "delta", "epsilon"]
    for job_id in jobs:
        owner = ring.shard_for(job_id)
        services[f"fake://shard-{owner}"].store.save(make_archive(job_id))

    calls = []

    def transport(base, path, params, headers, method, body, timeout):
        calls.append((base, path, method))
        return services[base].handle(
            path, params, headers, method=method, body=body
        )

    service = ClusterService(supervisor, transport=transport)
    service.test_jobs = jobs
    service.test_calls = calls
    service.test_services = services
    del probe
    return service


class TestRoutedReads:
    def test_per_job_get_hits_the_owner_shard(self, cluster):
        for job_id in cluster.test_jobs:
            response = cluster.handle(f"/jobs/{job_id}")
            assert response.status == 200
            assert response.json()["job_id"] == job_id
            owner = cluster.ring.shard_for(job_id)
            assert cluster.test_calls[-1][0] == f"fake://shard-{owner}"

    def test_etag_and_304_pass_through(self, cluster):
        job_id = cluster.test_jobs[0]
        first = cluster.handle(f"/jobs/{job_id}")
        etag = first.headers["ETag"]
        again = cluster.handle(
            f"/jobs/{job_id}", headers={"If-None-Match": etag}
        )
        assert again.status == 304
        assert again.headers["ETag"] == etag

    def test_query_and_report_route_like_summary(self, cluster):
        job_id = cluster.test_jobs[1]
        owner = f"fake://shard-{cluster.ring.shard_for(job_id)}"
        query = cluster.handle(
            f"/jobs/{job_id}/query",
            {"mission": "Superstep", "agg": "count"},
        )
        assert query.status == 200
        assert query.json()["result"] >= 1
        report = cluster.handle(f"/jobs/{job_id}/report")
        assert report.status == 200
        assert report.content_type.startswith("text/plain")
        assert all(call[0] == owner for call in cluster.test_calls[-2:])

    def test_invalid_job_id_is_rejected_before_routing(self, cluster):
        before = len(cluster.test_calls)
        response = cluster.handle("/jobs/../etc/passwd")
        assert response.status in (400, 404)
        response = cluster.handle("/jobs/.hidden")
        assert response.status == 400
        assert len(cluster.test_calls) == before  # nothing was proxied

    def test_unknown_route_404_and_bad_method_405(self, cluster):
        assert cluster.handle("/nope").status == 404
        assert cluster.handle("/jobs", method="DELETE").status == 405
        assert cluster.handle("/jobs/x", method="PUT").status == 405


class TestMergedListing:
    def test_jobs_merges_all_shards_sorted(self, cluster):
        response = cluster.handle("/jobs")
        assert response.status == 200
        document = response.json()
        listed = [job["job_id"] for job in document["jobs"]]
        assert listed == sorted(cluster.test_jobs)
        assert document["total"] == len(cluster.test_jobs)
        assert document["degraded_shards"] == []

    def test_pagination_spans_shard_boundaries(self, cluster):
        page = cluster.handle("/jobs", {"offset": "1", "limit": "2"})
        document = page.json()
        assert [j["job_id"] for j in document["jobs"]] == \
            sorted(cluster.test_jobs)[1:3]
        assert document["total"] == len(cluster.test_jobs)

    def test_merged_listing_revalidates_with_304(self, cluster):
        first = cluster.handle("/jobs")
        etag = first.headers["ETag"]
        again = cluster.handle("/jobs", headers={"If-None-Match": etag})
        assert again.status == 304

    def test_down_shard_degrades_listing_not_response(self, cluster):
        cluster.supervisor.states[1] = "restarting"
        response = cluster.handle("/jobs")
        assert response.status == 200
        document = response.json()
        assert document["degraded_shards"] == [1]
        surviving = [
            job_id for job_id in cluster.test_jobs
            if cluster.ring.shard_for(job_id) != 1
        ]
        assert [j["job_id"] for j in document["jobs"]] == \
            sorted(surviving)

    def test_filters_forward_to_every_shard(self, cluster):
        response = cluster.handle("/jobs", {"platform": "Nope"})
        assert response.status == 200
        assert response.json()["jobs"] == []


class TestShardFailure:
    def test_down_shard_keyspace_503_with_retry_after(self, cluster):
        cluster.supervisor.states[2] = "restarting"
        victims = [j for j in cluster.test_jobs
                   if cluster.ring.shard_for(j) == 2]
        others = [j for j in cluster.test_jobs
                  if cluster.ring.shard_for(j) != 2]
        assert victims and others  # fixture jobs cover every shard
        for job_id in victims:
            response = cluster.handle(f"/jobs/{job_id}")
            assert response.status == 503
            assert response.headers["Retry-After"] == "2"
            assert response.json()["shard"] == 2
        for job_id in others:
            assert cluster.handle(f"/jobs/{job_id}").status == 200

    def test_transport_failure_counts_against_the_shard(self, cluster):
        def broken(base, path, params, headers, method, body, timeout):
            raise ConnectionRefusedError("worker gone")

        cluster._transport = broken
        job_id = cluster.test_jobs[0]
        owner = cluster.ring.shard_for(job_id)
        response = cluster.handle(f"/jobs/{job_id}")
        assert response.status == 503
        assert "Retry-After" in response.headers
        assert cluster.supervisor.failures
        assert cluster.supervisor.failures[0][0] == owner

    def test_fenced_shard_stays_503_while_others_serve(self, cluster):
        cluster.supervisor.states[0] = "fenced"
        statuses = {
            cluster.handle(f"/jobs/{j}").status
            for j in cluster.test_jobs
        }
        assert statuses == {200, 503}


class TestRoutedWrites:
    def test_post_routes_by_embedded_job_id(self, cluster):
        posted = []

        def recorder(base, path, params, headers, method, body, timeout):
            posted.append((base, method))
            return json_response(202, {"tracking_id": "t-1"})

        cluster._transport = recorder
        body = json.dumps({"job_id": "omega", "schema": 3}).encode()
        response = cluster.handle("/jobs", method="POST", body=body)
        assert response.status == 202
        owner = cluster.ring.shard_for("omega")
        assert posted == [(f"fake://shard-{owner}", "POST")]

    def test_post_prefers_explicit_job_id_param(self, cluster):
        posted = []

        def recorder(base, path, params, headers, method, body, timeout):
            posted.append(base)
            return json_response(202, {"tracking_id": "t-2"})

        cluster._transport = recorder
        response = cluster.handle(
            "/jobs", {"job_id": "pinned"}, method="POST",
            body=json.dumps({"job_id": "other"}).encode(),
        )
        assert response.status == 202
        assert posted == [
            f"fake://shard-{cluster.ring.shard_for('pinned')}"
        ]

    def test_log_submission_without_job_id_is_400(self, cluster):
        before = len(cluster.test_calls)
        response = cluster.handle(
            "/jobs", {"kind": "log"}, method="POST", body=b"GRANULA ..."
        )
        assert response.status == 400
        assert "job_id" in response.json()["error"]
        assert len(cluster.test_calls) == before

    def test_archive_without_routable_id_is_400(self, cluster):
        response = cluster.handle(
            "/jobs", method="POST", body=b'{"schema": 3}'
        )
        assert response.status == 400
        response = cluster.handle(
            "/jobs", method="POST", body=b"not json"
        )
        assert response.status == 400

    def test_post_to_down_owner_shard_503(self, cluster):
        owner = cluster.ring.shard_for("omega")
        cluster.supervisor.states[owner] = "restarting"
        response = cluster.handle(
            "/jobs", method="POST",
            body=json.dumps({"job_id": "omega"}).encode(),
        )
        assert response.status == 503
        assert response.headers["Retry-After"] == "2"


class TestFanOutEndpoints:
    def test_healthz_aggregates_all_live(self, cluster):
        response = cluster.handle("/healthz")
        assert response.status == 200
        document = response.json()
        assert document["status"] == "ok"
        assert document["workers"] == 3
        assert [s["shard"] for s in document["shards"]] == [0, 1, 2]
        assert all(s["pid"] for s in document["shards"])

    def test_healthz_degrades_with_a_down_shard(self, cluster):
        cluster.supervisor.states[1] = "restarting"
        document = cluster.handle("/healthz").json()
        assert document["status"] == "degraded"
        assert document["degraded_shards"] == [1]
        assert document["shards"][1]["status"] == "restarting"

    def test_metrics_aggregates_router_and_shards(self, cluster):
        cluster.handle("/jobs")
        document = cluster.handle("/metrics").json()
        assert document["router"]["requests_total"] >= 1
        assert set(document["shards"]) == {"0", "1", "2"}
        assert "counters" in document["supervisor"]

    def test_ingest_status_fans_out_first_hit_wins(self, cluster):
        hits = {"fake://shard-1"}

        def transport(base, path, params, headers, method, body, timeout):
            if base in hits:
                return json_response(200, {"state": "stored"})
            return json_response(404, {"error": "unknown"})

        cluster._transport = transport
        response = cluster.handle("/ingest/some-tracking-id")
        assert response.status == 200
        assert response.json()["state"] == "stored"

    def test_ingest_status_unknown_everywhere_404(self, cluster):
        response = cluster.handle("/ingest/never-issued")
        assert response.status == 404
        assert "never-issued" in response.json()["error"]

    def test_ingest_status_all_shards_down_503(self, cluster):
        cluster.supervisor.states = ["restarting"] * 3
        response = cluster.handle("/ingest/whatever")
        assert response.status == 503
        assert "Retry-After" in response.headers


class TestRouterMetricsLabels:
    def test_labels_stay_in_the_closed_set(self, cluster):
        cluster.handle("/jobs")
        cluster.handle(f"/jobs/{cluster.test_jobs[0]}")
        cluster.handle("/completely/random/path")
        snapshot = cluster.metrics.snapshot({})
        assert set(snapshot["requests_by_endpoint"]) <= {
            "/jobs", "/jobs/{id}", "/jobs/{id}/query",
            "/jobs/{id}/report", "/healthz", "/metrics",
            "POST /jobs", "/ingest/{id}", "other",
        }
        assert snapshot["requests_by_endpoint"]["other"] == 1
