"""Live SSE streaming: service endpoint, real server, and router proxy."""

from __future__ import annotations

import io
import json
import socket
import threading
import time
import urllib.request

import pytest

from repro import logformat
from repro.core.archive.serialize import archive_to_json
from repro.core.monitor.live import (
    LiveJobRegistry,
    iter_sse_events,
)
from repro.core.monitor.salvage import salvage_archive
from repro.service.app import ArchiveService, StreamingResponse
from repro.service.router import ClusterService, http_transport
from repro.service.server import create_server

from tests.service.test_router import FakeSupervisor


def line(ts, event, uid, job, **extra):
    fields = {"ts": str(ts), "job": job, "event": event, "uid": uid}
    fields.update({k: str(v) for k, v in extra.items()})
    return logformat.format_line(fields)


def job_log(job):
    return [
        line(0.0, "start", "j", job, parent="-", mission="GiraphJob",
             actor="GiraphClient"),
        line(1.0, "start", "a", job, parent="j", mission="Startup",
             actor="Master"),
        line(5.0, "end", "a", job),
        line(5.0, "start", "b", job, parent="j", mission="LoadGraph",
             actor="Worker-1"),
        line(9.0, "end", "b", job),
        line(10.0, "end", "j", job),
    ]


def drain_stream(response: StreamingResponse):
    """Consume a StreamingResponse into parsed SSE events."""
    assert isinstance(response, StreamingResponse)
    assert response.content_type == "text/event-stream"
    payload = b"".join(response.chunks)
    return list(iter_sse_events(io.BytesIO(payload)))


class TestStoredStream:
    """A job without a live monitor degrades to a one-snapshot stream."""

    def test_stored_stream_is_byte_identical(self, service, store):
        response = service.handle("/jobs/alpha/live")
        events = drain_stream(response)
        assert [e.event for e in events] == ["snapshot", "complete"]
        assert events[0].event_id == 1
        assert events[0].data == store.handle("alpha").path.read_bytes()
        payload = json.loads(events[1].data)
        assert payload == {
            "job_id": "alpha", "final_seq": 1, "error": None,
        }

    def test_last_event_id_skips_delivered_snapshot(self, service):
        response = service.handle(
            "/jobs/alpha/live", headers={"Last-Event-ID": "1"}
        )
        events = drain_stream(response)
        assert [e.event for e in events] == ["complete"]

    def test_query_param_fallback_for_resume(self, service):
        response = service.handle(
            "/jobs/alpha/live", params={"last_event_id": "1"}
        )
        assert [e.event for e in drain_stream(response)] == ["complete"]

    def test_malformed_resume_id_means_from_start(self, service):
        response = service.handle(
            "/jobs/alpha/live", headers={"Last-Event-ID": "bogus"}
        )
        events = drain_stream(response)
        assert [e.event for e in events] == ["snapshot", "complete"]

    def test_unknown_job_is_404(self, service):
        response = service.handle("/jobs/nope/live")
        assert response.status == 404

    def test_unsafe_id_is_400(self, service):
        response = service.handle("/jobs/..%2fetc/live")
        assert response.status == 400

    def test_live_requests_land_in_metrics(self, service):
        service.handle("/jobs/alpha/live")
        snapshot = service.metrics.snapshot({})
        assert "/jobs/{id}/live" in json.dumps(snapshot)


@pytest.fixture()
def live_server(store):
    registry = LiveJobRegistry()
    server = create_server(
        store, port=0, cache_size=8, live=registry, live_heartbeat=0.05,
    )
    thread = threading.Thread(
        target=lambda: server.serve_forever(poll_interval=0.05),
        daemon=True,
    )
    thread.start()
    yield server, registry
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)
    assert not thread.is_alive()


def open_stream(server, path, headers=None):
    host, port = server.server_address[:2]
    request = urllib.request.Request(
        f"http://{host}:{port}{path}", headers=headers or {}
    )
    return urllib.request.urlopen(request, timeout=10)


class TestLiveStreamOverHTTP:
    def test_snapshots_stream_monotonic_then_complete(self, live_server):
        server, registry = live_server
        monitor = registry.open("run1", platform="Giraph")
        log = job_log("run1")
        archive, _ = salvage_archive(log, platform="Giraph")

        def produce():
            for i in range(len(log)):
                monitor.feed([log[i]])
                time.sleep(0.02)
            monitor.complete(archive)

        producer = threading.Thread(target=produce)
        producer.start()
        events = []
        with open_stream(server, "/jobs/run1/live") as reply:
            assert reply.headers["Content-Type"] == "text/event-stream"
            assert reply.headers["Cache-Control"] == "no-store"
            for event in iter_sse_events(reply):
                events.append(event)
                if event.event == "complete":
                    break
        producer.join(10)

        snapshots = [e for e in events if e.event == "snapshot"]
        assert snapshots, "no snapshots streamed"
        ids = [e.event_id for e in snapshots]
        assert ids == sorted(set(ids)), "event ids not strictly monotonic"
        assert snapshots[-1].data == archive_to_json(archive).encode("utf-8")
        completes = [e for e in events if e.event == "complete"]
        assert len(completes) == 1
        payload = json.loads(completes[0].data)
        assert payload["job_id"] == "run1"
        assert payload["error"] is None
        assert payload["final_seq"] == ids[-1]

    def test_last_event_id_resume_delivers_only_newer(self, live_server):
        server, registry = live_server
        monitor = registry.open("run2")
        log = job_log("run2")
        monitor.feed(log[:2])
        first = monitor.snapshot()
        monitor.feed(log[2:4])
        monitor.feed(log[4:])
        archive, _ = salvage_archive(log)
        final = monitor.complete(archive)
        assert final.seq > first.seq

        headers = {"Last-Event-ID": str(first.seq)}
        with open_stream(server, "/jobs/run2/live", headers) as reply:
            events = list(iter_sse_events(reply))
        snapshots = [e for e in events if e.event == "snapshot"]
        assert snapshots, "resume delivered nothing"
        assert all(e.event_id > first.seq for e in snapshots)
        assert snapshots[-1].data == final.body
        assert events[-1].event == "complete"

    def test_resume_at_final_seq_gets_only_complete(self, live_server):
        server, registry = live_server
        monitor = registry.open("run3")
        log = job_log("run3")
        monitor.feed(log)
        archive, _ = salvage_archive(log)
        final = monitor.complete(archive)

        headers = {"Last-Event-ID": str(final.seq)}
        with open_stream(server, "/jobs/run3/live", headers) as reply:
            events = list(iter_sse_events(reply))
        assert [e.event for e in events] == ["complete"]

    def test_aborted_run_surfaces_error_in_complete(self, live_server):
        server, registry = live_server
        monitor = registry.open("run4")
        monitor.feed(job_log("run4")[:2])
        monitor.abort("worker exploded")
        with open_stream(server, "/jobs/run4/live") as reply:
            events = list(iter_sse_events(reply))
        assert events[-1].event == "complete"
        assert json.loads(events[-1].data)["error"] == "worker exploded"

    def test_disconnect_mid_stream_releases_accounting(self, live_server):
        server, registry = live_server
        monitor = registry.open("run5")
        monitor.feed(job_log("run5")[:2])
        host, port = server.server_address[:2]
        raw = socket.create_connection((host, port), timeout=10)
        raw.sendall(
            b"GET /jobs/run5/live HTTP/1.1\r\n"
            b"Host: test\r\nAccept: text/event-stream\r\n\r\n"
        )
        # Read until the first snapshot frame is on the wire, proving
        # the stream is established, then vanish without closing it
        # politely.
        got = b""
        while b"event: snapshot" not in got:
            chunk = raw.recv(4096)
            assert chunk, "stream ended before first snapshot"
            got += chunk
        assert registry.active_streams == 1
        raw.close()
        # The server notices on its next heartbeat write and must
        # balance the stream accounting (no leaked monitor threads).
        deadline = time.monotonic() + 10.0
        while registry.active_streams and time.monotonic() < deadline:
            time.sleep(0.05)
        assert registry.active_streams == 0

    def test_stored_job_streams_over_http_too(self, live_server, store):
        server, _registry = live_server
        with open_stream(server, "/jobs/alpha/live") as reply:
            events = list(iter_sse_events(reply))
        assert [e.event for e in events] == ["snapshot", "complete"]
        assert events[0].data == store.handle("alpha").path.read_bytes()

    def test_live_endpoint_counted_in_metrics(self, live_server):
        server, _registry = live_server
        with open_stream(server, "/jobs/alpha/live") as reply:
            list(iter_sse_events(reply))
        with open_stream(server, "/metrics") as reply:
            body = reply.read().decode("utf-8")
        assert "/jobs/{id}/live" in body


class TestRouterStreaming:
    def _cluster_with(self, tmp_path, transport):
        supervisor = FakeSupervisor(1)
        return ClusterService(supervisor, transport=transport)

    def test_fake_transport_stream_passes_through(self, tmp_path, store):
        service = ArchiveService(store)

        def transport(base, path, params, headers, method, body, timeout):
            return service.handle(
                path, params, headers, method=method, body=body
            )

        cluster = self._cluster_with(tmp_path, transport)
        response = cluster.handle("/jobs/alpha/live")
        events = drain_stream(response)
        assert [e.event for e in events] == ["snapshot", "complete"]
        assert events[0].data == store.handle("alpha").path.read_bytes()

    def test_http_transport_relays_live_stream(self, live_server, store):
        server, registry = live_server
        monitor = registry.open("run6")
        log = job_log("run6")
        monitor.feed(log[:2])
        archive, _ = salvage_archive(log)

        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"

        def finish():
            time.sleep(0.1)
            monitor.feed(log[2:])
            monitor.complete(archive)

        finisher = threading.Thread(target=finish)
        finisher.start()
        response = http_transport(
            base, "/jobs/run6/live", {}, {}, "GET", b"", 10.0,
        )
        assert isinstance(response, StreamingResponse)
        events = drain_stream(response)
        finisher.join(10)
        snapshots = [e for e in events if e.event == "snapshot"]
        assert snapshots[-1].data == archive_to_json(archive).encode("utf-8")
        assert events[-1].event == "complete"

    def test_http_transport_forwards_last_event_id(self, live_server):
        server, registry = live_server
        monitor = registry.open("run7")
        log = job_log("run7")
        monitor.feed(log)
        archive, _ = salvage_archive(log)
        final = monitor.complete(archive)

        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        response = http_transport(
            base, "/jobs/run7/live", {},
            {"Last-Event-ID": str(final.seq)}, "GET", b"", 10.0,
        )
        events = drain_stream(response)
        assert [e.event for e in events] == ["complete"]


class TestWatchCli:
    def test_watch_follows_stream_to_completion(self, live_server, capsys):
        from repro.cli import main as granula_main

        server, registry = live_server
        monitor = registry.open("run8")
        log = job_log("run8")
        archive, _ = salvage_archive(log)

        def produce():
            monitor.replay(log, chunks=3, delay=0.05)
            monitor.complete(archive)

        producer = threading.Thread(target=produce)
        producer.start()
        host, port = server.server_address[:2]
        code = granula_main([
            "watch", f"http://{host}:{port}/jobs/run8/live",
            "--timeout", "30",
        ])
        producer.join(10)
        assert code == 0
        out = capsys.readouterr().out
        assert "snapshot" in out
        assert "complete" in out
