"""End-to-end tests over a real ThreadingHTTPServer."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.errors import ServiceError
from repro.service.server import create_server

from tests.service.conftest import make_archive


@pytest.fixture()
def server(store):
    server = create_server(store, port=0, cache_size=8)
    thread = threading.Thread(
        target=lambda: server.serve_forever(poll_interval=0.05),
        daemon=True,
    )
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)
    assert not thread.is_alive()


def fetch(server, path, headers=None):
    host, port = server.server_address[:2]
    request = urllib.request.Request(
        f"http://{host}:{port}{path}", headers=headers or {}
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


class TestHTTP:
    def test_healthz(self, server):
        status, _headers, body = fetch(server, "/healthz")
        assert status == 200
        assert json.loads(body)["status"] == "ok"

    def test_jobs_roundtrip(self, server):
        status, _headers, body = fetch(server, "/jobs?platform=Giraph")
        assert status == 200
        document = json.loads(body)
        assert [j["job_id"] for j in document["jobs"]] == ["alpha", "gamma"]

    def test_query_over_http(self, server):
        status, _headers, body = fetch(
            server,
            "/jobs/alpha/query?mission=Superstep&agg=mean",
        )
        assert status == 200
        assert json.loads(body)["result"] == 2.0

    def test_conditional_get_304(self, server):
        status, headers, _body = fetch(server, "/jobs/alpha")
        assert status == 200
        etag = headers["ETag"]
        status, headers, body = fetch(
            server, "/jobs/alpha", headers={"If-None-Match": etag}
        )
        assert status == 304
        assert body == b""
        assert headers["ETag"] == etag

    def test_missing_job_404_and_unsafe_400(self, server):
        assert fetch(server, "/jobs/ghost")[0] == 404
        assert fetch(server, "/jobs/..")[0] == 400

    def test_report_html(self, server):
        status, headers, body = fetch(
            server, "/jobs/alpha/report?format=html"
        )
        assert status == 200
        assert headers["Content-Type"].startswith("text/html")
        assert b"<svg" in body

    def test_write_method_rejected(self, server):
        host, port = server.server_address[:2]
        request = urllib.request.Request(
            f"http://{host}:{port}/jobs", data=b"{}", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 405

    def test_head_request(self, server):
        host, port = server.server_address[:2]
        request = urllib.request.Request(
            f"http://{host}:{port}/jobs", method="HEAD"
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.status == 200
            assert response.read() == b""

    def test_concurrent_clients(self, server):
        paths = [
            "/jobs",
            "/jobs/alpha",
            "/jobs/beta/query?agg=count",
            "/jobs/gamma/report",
            "/healthz",
        ]
        results: list = []
        errors: list = []

        def client(worker: int) -> None:
            try:
                for i in range(10):
                    path = paths[(worker + i) % len(paths)]
                    status, _headers, _body = fetch(server, path)
                    results.append(status)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(w,))
                   for w in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert errors == []
        assert len(results) == 80
        assert set(results) == {200}

    def test_serves_archives_written_while_running(self, server, store):
        store.save(make_archive("late"))
        status, _headers, body = fetch(server, "/jobs/late")
        assert status == 200
        assert json.loads(body)["job_id"] == "late"

    def test_metrics_over_http(self, server):
        fetch(server, "/jobs")
        status, _headers, body = fetch(server, "/metrics")
        assert status == 200
        document = json.loads(body)
        assert document["requests_total"] >= 1
        assert "cache" in document


class TestCreateServer:
    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(ServiceError):
            create_server(tmp_path / "nope")

    def test_accepts_directory_path(self, tmp_path, store):
        server = create_server(str(store.directory), port=0)
        try:
            thread = threading.Thread(
                target=lambda: server.serve_forever(poll_interval=0.05),
                daemon=True,
            )
            thread.start()
            assert fetch(server, "/healthz")[0] == 200
        finally:
            server.shutdown()
            server.server_close()
