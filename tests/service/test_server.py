"""End-to-end tests over a real ThreadingHTTPServer."""

from __future__ import annotations

import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.archive.serialize import archive_to_json
from repro.errors import ServiceError
from repro.service.server import create_server

from tests.service.conftest import make_archive


@pytest.fixture()
def server(store):
    server = create_server(store, port=0, cache_size=8)
    thread = threading.Thread(
        target=lambda: server.serve_forever(poll_interval=0.05),
        daemon=True,
    )
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    if server.service.ingest is not None:
        server.service.ingest.drain_and_stop(timeout=10.0)
    thread.join(timeout=10)
    assert not thread.is_alive()


def fetch(server, path, headers=None):
    host, port = server.server_address[:2]
    request = urllib.request.Request(
        f"http://{host}:{port}{path}", headers=headers or {}
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


class TestHTTP:
    def test_healthz(self, server):
        status, _headers, body = fetch(server, "/healthz")
        assert status == 200
        assert json.loads(body)["status"] == "ok"

    def test_jobs_roundtrip(self, server):
        status, _headers, body = fetch(server, "/jobs?platform=Giraph")
        assert status == 200
        document = json.loads(body)
        assert [j["job_id"] for j in document["jobs"]] == ["alpha", "gamma"]

    def test_query_over_http(self, server):
        status, _headers, body = fetch(
            server,
            "/jobs/alpha/query?mission=Superstep&agg=mean",
        )
        assert status == 200
        assert json.loads(body)["result"] == 2.0

    def test_conditional_get_304(self, server):
        status, headers, _body = fetch(server, "/jobs/alpha")
        assert status == 200
        etag = headers["ETag"]
        status, headers, body = fetch(
            server, "/jobs/alpha", headers={"If-None-Match": etag}
        )
        assert status == 304
        assert body == b""
        assert headers["ETag"] == etag

    def test_missing_job_404_and_unsafe_400(self, server):
        assert fetch(server, "/jobs/ghost")[0] == 404
        assert fetch(server, "/jobs/..")[0] == 400

    def test_report_html(self, server):
        status, headers, body = fetch(
            server, "/jobs/alpha/report?format=html"
        )
        assert status == 200
        assert headers["Content-Type"].startswith("text/html")
        assert b"<svg" in body

    def test_delete_method_rejected(self, server):
        host, port = server.server_address[:2]
        request = urllib.request.Request(
            f"http://{host}:{port}/jobs/alpha", method="DELETE"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 405

    def test_head_request(self, server):
        host, port = server.server_address[:2]
        request = urllib.request.Request(
            f"http://{host}:{port}/jobs", method="HEAD"
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.status == 200
            assert response.read() == b""

    def test_concurrent_clients(self, server):
        paths = [
            "/jobs",
            "/jobs/alpha",
            "/jobs/beta/query?agg=count",
            "/jobs/gamma/report",
            "/healthz",
        ]
        results: list = []
        errors: list = []

        def client(worker: int) -> None:
            try:
                for i in range(10):
                    path = paths[(worker + i) % len(paths)]
                    status, _headers, _body = fetch(server, path)
                    results.append(status)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(w,))
                   for w in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert errors == []
        assert len(results) == 80
        assert set(results) == {200}

    def test_serves_archives_written_while_running(self, server, store):
        store.save(make_archive("late"))
        status, _headers, body = fetch(server, "/jobs/late")
        assert status == 200
        assert json.loads(body)["job_id"] == "late"

    def test_metrics_over_http(self, server):
        fetch(server, "/jobs")
        status, _headers, body = fetch(server, "/metrics")
        assert status == 200
        document = json.loads(body)
        assert document["requests_total"] >= 1
        assert "cache" in document


def raw_request(server, data: bytes, timeout: float = 10.0) -> bytes:
    """Speak raw HTTP so we can violate the protocol on purpose."""
    host, port = server.server_address[:2]
    chunks = []
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(data)
        try:
            while True:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                chunks.append(chunk)
        except socket.timeout:
            pass
    return b"".join(chunks)


@pytest.fixture()
def strict_server(store):
    """A server with a tight body cap and request timeout."""
    server = create_server(
        store, port=0, cache_size=8,
        request_timeout=1.0, max_body_bytes=2048,
    )
    thread = threading.Thread(
        target=lambda: server.serve_forever(poll_interval=0.05),
        daemon=True,
    )
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    server.service.ingest.drain_and_stop(timeout=10.0)
    thread.join(timeout=10)


class TestWritePath:
    def test_post_archive_roundtrip(self, server):
        host, port = server.server_address[:2]
        payload = archive_to_json(make_archive("posted")).encode("utf-8")
        request = urllib.request.Request(
            f"http://{host}:{port}/jobs", data=payload, method="POST",
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.status == 202
            tracking = json.loads(response.read())
        deadline = time.monotonic() + 10.0
        state = "pending"
        while time.monotonic() < deadline and state == "pending":
            state = json.loads(fetch(
                server, tracking["status_url"])[2])["state"]
            time.sleep(0.02)
        assert state == "ingested"
        assert fetch(server, "/jobs/posted")[0] == 200


class TestRequestHygiene:
    def test_missing_content_length_is_411(self, strict_server):
        response = raw_request(
            strict_server,
            b"POST /jobs HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
        )
        assert response.startswith(b"HTTP/1.1 411")

    def test_malformed_content_length_is_400(self, strict_server):
        response = raw_request(
            strict_server,
            b"POST /jobs HTTP/1.1\r\nHost: t\r\n"
            b"Content-Length: banana\r\nConnection: close\r\n\r\n",
        )
        assert response.startswith(b"HTTP/1.1 400")

    def test_oversized_declaration_is_413_before_body(self, strict_server):
        # Declare far more than the cap but send nothing: the server
        # must refuse from the header alone instead of reading.
        response = raw_request(
            strict_server,
            b"POST /jobs HTTP/1.1\r\nHost: t\r\n"
            b"Content-Length: 1000000\r\nConnection: close\r\n\r\n",
        )
        assert response.startswith(b"HTTP/1.1 413")

    def test_stalled_body_times_out_with_408(self, strict_server):
        # Send 3 of 10 promised bytes, then stall: the 1s request
        # timeout must reclaim the thread and answer 408.
        started = time.monotonic()
        response = raw_request(
            strict_server,
            b"POST /jobs HTTP/1.1\r\nHost: t\r\n"
            b"Content-Length: 10\r\nConnection: close\r\n\r\nabc",
        )
        elapsed = time.monotonic() - started
        assert response.startswith(b"HTTP/1.1 408")
        assert elapsed < 8.0  # Reclaimed by the timeout, not by recv EOF.

    def test_pipelined_delete_with_body_stays_framed(self, server):
        # A bodied DELETE on a keep-alive connection: its declared body
        # must be drained, or the body bytes get parsed as the next
        # request line and every later response answers the wrong
        # request (request desynchronization).
        import re

        host, port = server.server_address[:2]
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(
                b"DELETE /jobs/alpha HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: 16\r\n\r\n"
                b"0123456789abcdef"  # body a handler never reads
                b"GET /healthz HTTP/1.1\r\nHost: t\r\n"
                b"Connection: close\r\n\r\n"
            )
            data = b""
            try:
                while True:
                    chunk = sock.recv(4096)
                    if not chunk:
                        break
                    data += chunk
            except socket.timeout:
                pass
        statuses = re.findall(rb"HTTP/1\.1 (\d{3})", data)
        # First response rejects the DELETE; the second must answer
        # the pipelined /healthz, not the drained body bytes.
        assert statuses == [b"405", b"200"]
        assert b'"status": "ok"' in data

    def test_get_with_body_drained_too(self, server):
        # Same desync guard for GET, whose body no handler ever reads.
        import re

        host, port = server.server_address[:2]
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(
                b"GET /healthz HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: 5\r\n\r\n"
                b"xxxxx"
                b"GET /healthz HTTP/1.1\r\nHost: t\r\n"
                b"Connection: close\r\n\r\n"
            )
            data = b""
            try:
                while True:
                    chunk = sock.recv(4096)
                    if not chunk:
                        break
                    data += chunk
            except socket.timeout:
                pass
        assert re.findall(rb"HTTP/1\.1 (\d{3})", data) == [b"200", b"200"]

    def test_partial_write_closes_connection(self, server):
        # A client that vanishes mid-response leaves a half-written
        # socket; reusing it would prefix the next response with the
        # remainder.  The handler must mark the connection closed.
        from repro.service.app import Response
        from repro.service.server import ArchiveRequestHandler

        class GoneClient:
            def write(self, data):
                raise BrokenPipeError

            def flush(self):
                raise BrokenPipeError

        handler = ArchiveRequestHandler.__new__(ArchiveRequestHandler)
        handler.request_version = "HTTP/1.1"
        handler.command = "GET"
        handler.requestline = "GET /jobs/alpha HTTP/1.1"
        handler.client_address = ("127.0.0.1", 1)
        handler.close_connection = False
        handler.wfile = GoneClient()
        handler._write(
            Response(200, b"body bytes"), include_body=True
        )
        assert handler.close_connection is True

    def test_stalled_request_line_does_not_pin_thread(self, strict_server):
        # A client that connects and never sends anything must be
        # dropped by the socket timeout; the server stays responsive.
        host, port = strict_server.server_address[:2]
        idle = socket.create_connection((host, port), timeout=10)
        try:
            time.sleep(1.2)  # Past the 1s request timeout.
            assert fetch(strict_server, "/healthz")[0] == 200
        finally:
            idle.close()


class TestCreateServer:
    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(ServiceError):
            create_server(tmp_path / "nope")

    def test_accepts_directory_path(self, tmp_path, store):
        server = create_server(str(store.directory), port=0)
        try:
            thread = threading.Thread(
                target=lambda: server.serve_forever(poll_interval=0.05),
                daemon=True,
            )
            thread.start()
            assert fetch(server, "/healthz")[0] == 200
        finally:
            server.shutdown()
            server.server_close()
