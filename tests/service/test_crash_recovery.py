"""Crash recovery: SIGKILL a serving process mid-burst, lose nothing.

The durability contract under test: every ``POST /jobs`` answered with
``202 Accepted`` was WAL-appended and fsync'd before the response went
out, so a ``kill -9`` at any point afterwards — including between the
store save and the WAL ack — must leave the store, after a restart and
replay, with exactly the acknowledged jobs and an index byte-identical
to a from-scratch rebuild.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.core.archive.serialize import archive_to_json
from repro.core.archive.store import ArchiveStore

from tests.service.conftest import make_archive

REPO_ROOT = Path(__file__).resolve().parents[2]
BANNER_RE = re.compile(r"(http://[\d.]+:\d+)")
STARTUP_TIMEOUT = 30.0


def spawn_server(store_dir: Path, *extra_args: str) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH="src")
    return subprocess.Popen(
        [sys.executable, "-u", "-m", "repro.cli", "serve",
         str(store_dir), "--port", "0", *extra_args],
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def wait_for_banner(process: subprocess.Popen) -> str:
    deadline = time.monotonic() + STARTUP_TIMEOUT
    assert process.stdout is not None
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            raise AssertionError(
                f"server exited early (code {process.poll()})"
            )
        match = BANNER_RE.search(line)
        if match:
            return match.group(1)
    raise AssertionError("no startup banner within timeout")


def fetch_json(base: str, path: str):
    request = urllib.request.Request(f"{base}{path}")
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


def wait_until(predicate, timeout: float, message: str) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            if predicate():
                return
        except (OSError, urllib.error.URLError):
            pass
        time.sleep(0.1)
    raise AssertionError(message)


def post_job(base: str, payload: bytes):
    request = urllib.request.Request(
        f"{base}/jobs", data=payload, method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


class TestSigkillRecovery:
    def test_acked_jobs_survive_kill_dash_nine(self, tmp_path):
        store_dir = tmp_path / "store"
        store = ArchiveStore(store_dir)
        store.save(make_archive("seed"))

        # Throttle WAL acks so the kill reliably lands while acked-but-
        # undrained records sit in the WAL (the replay-critical window).
        plan_path = tmp_path / "chaos.json"
        plan_path.write_text(json.dumps({
            "events": [{"type": "latency", "op": "ack",
                        "delay_s": 0.2, "after": 0, "count": 10000}],
        }))

        process = spawn_server(store_dir, "--chaos", str(plan_path))
        acked = []
        try:
            base = wait_for_banner(process)
            wait_until(
                lambda: fetch_json(base, "/healthz")[0] == 200,
                STARTUP_TIMEOUT, "/healthz never answered",
            )
            for i in range(10):
                payload = archive_to_json(
                    make_archive(f"burst-{i:02d}")
                ).encode("utf-8")
                try:
                    status, document = post_job(base, payload)
                except (urllib.error.URLError, ConnectionError):
                    break  # Server already gone; stop the burst.
                if status == 202:
                    acked.append((f"burst-{i:02d}",
                                  document["tracking_id"]))
        finally:
            process.kill()  # SIGKILL: no drain, no WAL acks, no cleanup.
            process.wait(timeout=10)

        assert len(acked) == 10  # The burst fit well under capacity.
        wal_segments = list((store_dir / ".wal").glob("segment-*.wal"))
        assert wal_segments, "kill -9 must leave the WAL behind"

        # Restart over the same store, chaos disarmed: startup replay
        # must land every acknowledged job.
        process = spawn_server(store_dir)
        try:
            base = wait_for_banner(process)
            wait_until(
                lambda: fetch_json(base, "/healthz")[0] == 200,
                STARTUP_TIMEOUT, "/healthz never answered after restart",
            )
            wait_until(
                lambda: fetch_json(
                    base, "/healthz")[1]["writes"]["wal_lag"] == 0,
                STARTUP_TIMEOUT, "WAL never fully drained after restart",
            )

            _status, metrics = fetch_json(base, "/metrics")
            assert metrics["ingest"]["counters"]["replayed"] >= 1

            _status, listing = fetch_json(base, "/jobs?limit=500")
            job_ids = [job["job_id"] for job in listing["jobs"]]
            for job_id, _tracking in acked:
                assert job_ids.count(job_id) == 1
            assert job_ids.count("seed") == 1
            assert len(job_ids) == len(set(job_ids))

            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=30) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)

        # The recovered index must be byte-identical to a from-scratch
        # rebuild over the same archive files.
        index_path = store_dir / "index.json"
        recovered = index_path.read_bytes()
        ArchiveStore(store_dir).rebuild_index()
        assert index_path.read_bytes() == recovered
