"""Write-ahead log: framing, durability, rotation, acks, repair."""

from __future__ import annotations

import hashlib
import struct

import pytest

from repro.errors import WalError
from repro.service.wal import WalEntry, WriteAheadLog


def payloads(wal: WriteAheadLog) -> list:
    return [entry.payload for entry in wal.replay()]


class TestAppendReplay:
    def test_roundtrip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        first = wal.append(b"one")
        second = wal.append(b"two")
        assert isinstance(first, WalEntry)
        assert first.entry_id != second.entry_id
        assert payloads(wal) == [b"one", b"two"]
        wal.close()

    def test_replay_survives_reopen(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal") as wal:
            wal.append(b"alpha")
            wal.append(b"beta")
        reopened = WriteAheadLog(tmp_path / "wal")
        assert payloads(reopened) == [b"alpha", b"beta"]
        reopened.close()

    def test_ack_removes_from_replay(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        first = wal.append(b"one")
        wal.append(b"two")
        wal.ack(first)
        assert payloads(wal) == [b"two"]
        assert wal.lag() == 1
        wal.close()

    def test_acks_survive_reopen(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal") as wal:
            first = wal.append(b"one")
            wal.append(b"two")
            wal.ack(first)
        reopened = WriteAheadLog(tmp_path / "wal")
        assert payloads(reopened) == [b"two"]
        reopened.close()

    def test_double_ack_is_idempotent(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        entry = wal.append(b"one")
        wal.ack(entry)
        wal.ack(entry)
        assert wal.lag() == 0
        assert wal.stats()["acked_total"] == 1
        wal.close()

    def test_ack_unknown_record_raises(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        with pytest.raises(WalError):
            wal.ack("00000001:000099")
        wal.close()

    def test_empty_payload_rejected(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        with pytest.raises(WalError):
            wal.append(b"")
        wal.close()


class TestRotation:
    def test_rotates_past_size_cap(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", max_segment_bytes=64)
        for i in range(6):
            wal.append(f"record-{i}".encode() * 4)
        assert wal.stats()["segments"] >= 2
        assert [p.decode()[:7] for p in payloads(wal)] == [
            "record-"] * 6
        wal.close()

    def test_fully_acked_segment_deleted(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", max_segment_bytes=64)
        entries = [wal.append(f"record-{i}".encode() * 4)
                   for i in range(6)]
        for entry in entries:
            wal.ack(entry)
        assert wal.lag() == 0
        # Only the active segment survives full acknowledgement.
        remaining = list((tmp_path / "wal").glob("segment-*.wal"))
        assert len(remaining) == 1
        wal.close()


class TestCrashRepair:
    def test_torn_tail_is_truncated(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal") as wal:
            wal.append(b"whole-record")
        segment = next((tmp_path / "wal").glob("segment-*.wal"))
        good = segment.read_bytes()
        # A crash mid-append leaves a half-written frame at the tail.
        segment.write_bytes(good + b"GWAL\x00\x00\x00\x63partial")
        reopened = WriteAheadLog(tmp_path / "wal")
        assert payloads(reopened) == [b"whole-record"]
        assert segment.read_bytes() == good  # repaired in place
        # Appends continue cleanly after the repair.
        reopened.append(b"after-crash")
        assert payloads(reopened) == [b"whole-record", b"after-crash"]
        reopened.close()

    def test_corrupt_checksum_is_skipped_and_counted(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal") as wal:
            wal.append(b"first")
            wal.append(b"second")
        segment = next((tmp_path / "wal").glob("segment-*.wal"))
        data = bytearray(segment.read_bytes())
        # Flip one payload byte of the first record (header is
        # magic(4) + length(4) + sha256(32) = 40 bytes).
        data[40] ^= 0xFF
        segment.write_bytes(bytes(data))
        reopened = WriteAheadLog(tmp_path / "wal")
        assert payloads(reopened) == [b"second"]
        assert reopened.stats()["corrupt_total"] == 1
        reopened.close()

    def test_zero_byte_newest_segment_is_clean(self, tmp_path):
        # A crash between segment creation and the first append leaves
        # a 0-byte newest segment.  That is a clean-empty file, not a
        # torn tail: reopening must not count corruption, and appends
        # resume into that segment at index 0.
        with WriteAheadLog(tmp_path / "wal") as wal:
            wal.append(b"survivor")
        empty = tmp_path / "wal" / "segment-00000002.wal"
        empty.touch()
        reopened = WriteAheadLog(tmp_path / "wal")
        assert payloads(reopened) == [b"survivor"]
        assert reopened.stats()["corrupt_total"] == 0
        assert reopened.lag() == 1
        entry = reopened.append(b"after-crash")
        assert entry.segment == 2
        assert entry.index == 0
        assert payloads(reopened) == [b"survivor", b"after-crash"]
        reopened.close()

    def test_frame_checksum_matches_payload(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal") as wal:
            wal.append(b"check-me")
        segment = next((tmp_path / "wal").glob("segment-*.wal"))
        data = segment.read_bytes()
        magic, length, digest = struct.unpack(">4sI32s", data[:40])
        assert magic == b"GWAL"
        assert length == len(b"check-me")
        assert digest == hashlib.sha256(b"check-me").digest()

    def test_closed_wal_refuses_appends(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.close()
        with pytest.raises(WalError):
            wal.append(b"late")


class TestFaultHook:
    def test_append_hook_failure_keeps_wal_consistent(self, tmp_path):
        calls = {"n": 0}

        def hook():
            calls["n"] += 1
            if calls["n"] == 2:
                raise OSError(28, "injected: disk full")

        wal = WriteAheadLog(tmp_path / "wal", append_hook=hook)
        wal.append(b"before")
        with pytest.raises(OSError):
            wal.append(b"during")
        wal.append(b"after")
        assert payloads(wal) == [b"before", b"after"]
        assert wal.stats()["appended_total"] == 2
        wal.close()
