"""Chaos plans: parsing, determinism, and event firing."""

from __future__ import annotations

import pytest

from repro.errors import ChaosError, StoreBusyError
from repro.service.chaos import (
    ChaosController,
    ChaosPlan,
    DiskFull,
    InjectLatency,
    LockTimeout,
    WorkerCrash,
    WorkerCrashed,
)


class TestPlanSerialization:
    def test_roundtrip(self):
        plan = ChaosPlan(events=(
            InjectLatency(op="request", delay_s=0.01, after=2, count=3),
            DiskFull(after=1),
            LockTimeout(after=0, count=2),
            WorkerCrash(after=4),
        ), seed=7)
        assert ChaosPlan.from_json(plan.to_json()) == plan

    def test_signature_stable_and_sensitive(self):
        plan = ChaosPlan(events=(DiskFull(after=1),))
        assert plan.signature() == ChaosPlan.from_json(
            plan.to_json()).signature()
        assert plan.signature() != ChaosPlan(
            events=(DiskFull(after=2),)).signature()

    def test_unknown_event_type_rejected(self):
        with pytest.raises(ChaosError):
            ChaosPlan.from_json('{"events": [{"type": "meteor"}]}')

    def test_unknown_field_rejected(self):
        with pytest.raises(ChaosError):
            ChaosPlan.from_json(
                '{"events": [{"type": "disk_full", "nope": 1}]}'
            )

    def test_invalid_json_rejected(self):
        with pytest.raises(ChaosError):
            ChaosPlan.from_json("{")

    def test_invalid_windows_rejected(self):
        with pytest.raises(ChaosError):
            DiskFull(after=-1)
        with pytest.raises(ChaosError):
            LockTimeout(count=0)
        with pytest.raises(ChaosError):
            InjectLatency(op="request", delay_s=0.0)
        with pytest.raises(ChaosError):
            InjectLatency(op="teleport", delay_s=1.0)


class TestController:
    def test_disk_full_fires_by_occurrence(self):
        controller = ChaosController(
            ChaosPlan(events=(DiskFull(after=2, count=1),))
        )
        controller.on("wal_append")
        controller.on("wal_append")
        with pytest.raises(OSError):
            controller.on("wal_append")
        controller.on("wal_append")  # Window passed.
        assert controller.stats()["injected"] == {"disk_full": 1}

    def test_lock_timeout_raises_store_busy(self):
        controller = ChaosController(
            ChaosPlan(events=(LockTimeout(after=0, count=2),))
        )
        with pytest.raises(StoreBusyError):
            controller.on("store_save")
        with pytest.raises(StoreBusyError):
            controller.on("store_save")
        controller.on("store_save")

    def test_worker_crash_is_base_exception(self):
        controller = ChaosController(
            ChaosPlan(events=(WorkerCrash(after=0),))
        )
        with pytest.raises(WorkerCrashed):
            controller.on("ack")
        assert not issubclass(WorkerCrashed, Exception)

    def test_latency_sleeps_via_injected_clock(self):
        slept = []
        controller = ChaosController(
            ChaosPlan(events=(
                InjectLatency(op="request", delay_s=0.25, after=1,
                              count=2),
            )),
            sleep=slept.append,
        )
        for _ in range(4):
            controller.on("request")
        assert slept == [0.25, 0.25]

    def test_ops_count_independently(self):
        controller = ChaosController(
            ChaosPlan(events=(DiskFull(after=1),))
        )
        # store_save occurrences must not advance the wal_append counter.
        controller.on("store_save")
        controller.on("store_save")
        controller.on("wal_append")
        with pytest.raises(OSError):
            controller.on("wal_append")

    def test_unknown_op_rejected(self):
        controller = ChaosController(ChaosPlan())
        with pytest.raises(ChaosError):
            controller.on("reboot")

    def test_determinism_same_plan_same_trace(self):
        def trace():
            controller = ChaosController(
                ChaosPlan(events=(DiskFull(after=1), WorkerCrash(after=2)))
            )
            out = []
            for op in ("wal_append", "wal_append", "ack",
                       "ack", "ack", "wal_append"):
                try:
                    controller.on(op)
                    out.append("ok")
                except OSError:
                    out.append("enospc")
                except WorkerCrashed:
                    out.append("crash")
            return out

        assert trace() == trace() == [
            "ok", "enospc", "ok", "ok", "crash", "ok",
        ]
