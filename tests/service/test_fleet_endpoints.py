"""Fleet analytics over HTTP: single-service endpoints and router fan-out.

Covers the ``/fleet/{query,series,regressions}`` routes of
:class:`ArchiveService` (ETag semantics, POST plans, client errors,
metrics labels) and the cluster router's scatter-gather merge, which
must answer exactly what a single service over the union of all shard
stores would.  Also pins the closed endpoint-label set: every label the
service can emit must be a member of ``KNOWN_ENDPOINTS`` so raw paths
never leak into metrics (see :mod:`repro.service.metrics`).
"""

from __future__ import annotations

import json

import pytest

from repro.core.archive.store import ArchiveStore
from repro.service.app import ArchiveService
from repro.service.metrics import KNOWN_ENDPOINTS, ServiceMetrics
from repro.service.router import ClusterService, ConsistentHashRing
from tests.service.conftest import make_archive
from tests.service.test_router import FakeSupervisor

QUERY_PARAMS = {
    "group_by": "platform,algorithm",
    "agg": "count,sum,mean,min,max,p95,top2",
}


class TestFleetEndpoints:
    def test_query_returns_groups_and_etag(self, service):
        response = service.handle("/fleet/query", QUERY_PARAMS)
        assert response.status == 200
        assert response.headers.get("ETag")
        document = response.json()
        assert document["op"] == "query"
        assert document["jobs_scanned"] == 3
        assert document["degraded_jobs"] == []
        keys = {tuple(sorted(g["key"].items())) for g in document["groups"]}
        assert (("algorithm", "bfs"), ("platform", "Giraph")) in keys
        assert (("algorithm", "pr"), ("platform", "PowerGraph")) in keys

    def test_etag_revalidates_and_tracks_store_changes(self, service):
        first = service.handle("/fleet/query", QUERY_PARAMS)
        etag = first.headers["ETag"]
        revalidated = service.handle(
            "/fleet/query", QUERY_PARAMS, {"If-None-Match": etag}
        )
        assert revalidated.status == 304
        assert revalidated.headers["ETag"] == etag
        # Any change to the store's listing must invalidate the tag.
        service.store.save(make_archive("delta", platform="Giraph"))
        changed = service.handle(
            "/fleet/query", QUERY_PARAMS, {"If-None-Match": etag}
        )
        assert changed.status == 200
        assert changed.headers["ETag"] != etag

    def test_etag_distinguishes_plans(self, service):
        one = service.handle("/fleet/query", QUERY_PARAMS)
        other = service.handle(
            "/fleet/query", {"group_by": "platform", "agg": "count"}
        )
        assert one.headers["ETag"] != other.headers["ETag"]

    def test_series_and_regressions_routes(self, service):
        series = service.handle(
            "/fleet/series",
            {"group_by": "platform", "agg": "sum", "mission": "Superstep"},
        )
        assert series.status == 200
        document = series.json()
        assert document["op"] == "series"
        assert len(document["points"]) == 3
        regressions = service.handle(
            "/fleet/regressions", {"group_by": "platform", "k": "3.0"}
        )
        assert regressions.status == 200
        document = regressions.json()
        assert document["op"] == "regressions"
        assert set(document) >= {"cohorts", "findings"}

    def test_post_plan_matches_get(self, service):
        get = service.handle("/fleet/query", QUERY_PARAMS)
        body = json.dumps({
            "op": "query",
            "group_by": ["platform", "algorithm"],
            "aggs": ["count", "sum", "mean", "min", "max", "p95", "top2"],
        }).encode("utf-8")
        post = service.handle(
            "/fleet/query", method="POST", body=body,
            headers={"Content-Type": "application/json"},
        )
        assert post.status == 200
        assert post.json() == get.json()

    def test_samples_param_attaches_group_samples(self, service):
        plain = service.handle(
            "/fleet/query", {"group_by": "platform", "agg": "mean"}
        ).json()
        sampled = service.handle(
            "/fleet/query",
            {"group_by": "platform", "agg": "mean", "samples": "1"},
        ).json()
        assert all("samples" not in g for g in plain["groups"])
        assert all(
            g["samples"] == sorted(g["samples"]) and g["samples"]
            for g in sampled["groups"]
        )

    def test_client_errors_are_400(self, service):
        assert service.handle(
            "/fleet/query", {"agg": "bogus"}
        ).status == 400
        assert service.handle(
            "/fleet/query", {"nonsense": "1"}
        ).status == 400
        assert service.handle(
            "/fleet/regressions", {"k": "-1"}
        ).status == 400
        bad_json = service.handle(
            "/fleet/query", method="POST", body=b"{not json",
        )
        assert bad_json.status == 400
        bad_field = service.handle(
            "/fleet/query", method="POST",
            body=json.dumps({"op": "query", "surprise": 1}).encode(),
        )
        assert bad_field.status == 400

    def test_fleet_requests_record_their_own_labels(self, service):
        service.handle("/fleet/query", {"agg": "count"})
        service.handle("/fleet/series",
                       {"group_by": "platform", "agg": "sum"})
        service.handle("/fleet/regressions", {})
        service.handle("/fleet/query", method="POST",
                       body=b'{"op": "query"}')
        counts = service.metrics.snapshot({})["requests_by_endpoint"]
        assert counts["/fleet/query"] == 1
        assert counts["/fleet/series"] == 1
        assert counts["/fleet/regressions"] == 1
        assert counts["POST /fleet/query"] == 1
        assert "other" not in counts


class TestClosedEndpointLabelSet:
    """Satellite guard: the metrics label set stays closed."""

    # One probe per route the service understands, plus hostile paths
    # that must all collapse into "other".
    PROBES = [
        ("GET", "/healthz"),
        ("GET", "/metrics"),
        ("GET", "/jobs"),
        ("GET", "/jobs/alpha"),
        ("GET", "/jobs/alpha/query"),
        ("GET", "/jobs/alpha/report"),
        ("POST", "/jobs"),
        ("PUT", "/jobs"),
        ("GET", "/ingest/some-id"),
        ("GET", "/fleet/query"),
        ("GET", "/fleet/series"),
        ("GET", "/fleet/regressions"),
        ("POST", "/fleet/query"),
        ("DELETE", "/fleet/query"),
        ("GET", "/wp-admin"),
        ("GET", "/fleet/unknown"),
        ("POST", "/fleet/series"),
        ("PATCH", "/metrics"),
    ]

    def test_every_routable_label_is_known(self, service):
        for method, path in self.PROBES:
            label, _ = service._route(path, method)
            assert label in KNOWN_ENDPOINTS, (method, path, label)

    def test_fleet_labels_are_registered(self):
        assert {"/fleet/query", "/fleet/series", "/fleet/regressions",
                "POST /fleet/query"} <= KNOWN_ENDPOINTS

    def test_unknown_labels_collapse_to_other(self):
        metrics = ServiceMetrics()
        metrics.observe("/fleet/made-up", 404, 0.001)
        metrics.observe("/fleet/query", 200, 0.001)
        counts = metrics.snapshot({})["requests_by_endpoint"]
        assert counts == {"other": 1, "/fleet/query": 1}


FLEET_JOBS = [
    ("job-a", "Giraph", "bfs", 3),
    ("job-b", "Giraph", "bfs", 5),
    ("job-c", "Giraph", "pr", 4),
    ("job-d", "PowerGraph", "bfs", 3),
    ("job-e", "PowerGraph", "pr", 6),
    ("job-f", "PowerGraph", "pr", 2),
    ("job-g", "Hadoop", "wcc", 4),
]

FLEET_PLANS = [
    ("query", {"group_by": "platform,algorithm",
               "agg": "count,sum,mean,min,max,p95,top2"}),
    ("query", {"group_by": "meta:dataset", "agg": "mean,p50",
               "metric": "BytesRead"}),
    ("series", {"group_by": "platform", "agg": "sum",
                "mission": "Superstep"}),
    ("regressions", {"group_by": "platform", "k": "1.0"}),
]


@pytest.fixture()
def fleet_cluster(tmp_path):
    """A 3-shard router plus a single service over the union store."""
    supervisor = FakeSupervisor(3)
    ring = ConsistentHashRing(3)
    services = {}
    for index in range(3):
        store = ArchiveStore(tmp_path / f"shard-{index}")
        services[f"fake://shard-{index}"] = ArchiveService(store)
    union = ArchiveService(ArchiveStore(tmp_path / "union"))
    for job_id, platform, algorithm, supersteps in FLEET_JOBS:
        archive = make_archive(job_id, platform=platform,
                               algorithm=algorithm,
                               supersteps=supersteps)
        owner = ring.shard_for(job_id)
        services[f"fake://shard-{owner}"].store.save(archive)
        union.store.save(archive)

    calls = []

    def transport(base, path, params, headers, method, body, timeout):
        calls.append((base, path, method))
        return services[base].handle(
            path, params, headers, method=method, body=body
        )

    cluster = ClusterService(supervisor, transport=transport)
    cluster.test_calls = calls
    cluster.test_supervisor = supervisor
    cluster.test_union = union
    return cluster


class TestRoutedFleet:
    def test_fanout_merge_matches_union_store(self, fleet_cluster):
        """The router's merged answer is the single-store answer."""
        for op, params in FLEET_PLANS:
            routed = fleet_cluster.handle(f"/fleet/{op}", params)
            local = fleet_cluster.test_union.handle(f"/fleet/{op}", params)
            assert routed.status == local.status == 200, (op, params)
            merged = routed.json()
            assert merged.pop("degraded_shards") == []
            assert merged == local.json(), (op, params)

    def test_post_plan_fans_out_identically(self, fleet_cluster):
        body = json.dumps({
            "op": "query",
            "group_by": ["platform"],
            "aggs": ["count", "mean", "p90"],
        }).encode("utf-8")
        routed = fleet_cluster.handle(
            "/fleet/query", method="POST", body=body
        )
        local = fleet_cluster.test_union.handle(
            "/fleet/query", method="POST", body=body
        )
        merged = routed.json()
        assert merged.pop("degraded_shards") == []
        assert merged == local.json()

    def test_router_etag_and_304(self, fleet_cluster):
        params = dict(FLEET_PLANS[0][1])
        first = fleet_cluster.handle("/fleet/query", params)
        etag = first.headers["ETag"]
        again = fleet_cluster.handle(
            "/fleet/query", params, {"If-None-Match": etag}
        )
        assert again.status == 304
        assert again.headers["ETag"] == etag

    def test_dead_shard_degrades_the_answer(self, fleet_cluster):
        fleet_cluster.test_supervisor.states[1] = "dead"
        response = fleet_cluster.handle(
            "/fleet/query", {"group_by": "platform", "agg": "count"}
        )
        assert response.status == 200
        document = response.json()
        assert document["degraded_shards"] == [1]
        # Shards 0 and 2 still answered: their jobs are all counted.
        ring = fleet_cluster.ring
        surviving = sum(
            1 for job_id, *_ in FLEET_JOBS
            if ring.shard_for(job_id) != 1
        )
        assert document["jobs_scanned"] == surviving

    def test_bad_plan_rejected_before_fanout(self, fleet_cluster):
        del fleet_cluster.test_calls[:]
        response = fleet_cluster.handle("/fleet/query", {"agg": "p999"})
        assert response.status == 400
        assert fleet_cluster.test_calls == []
