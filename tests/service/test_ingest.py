"""Write path: durable ingestion, shedding, degraded modes, recovery."""

from __future__ import annotations

import json
import time

import pytest

from repro.core.archive.serialize import archive_to_json
from repro.errors import IngestError, StoreBusyError
from repro.logformat import format_line
from repro.service.app import ArchiveService
from repro.service.chaos import (
    ChaosController,
    ChaosPlan,
    DiskFull,
    WorkerCrash,
)
from repro.service.ingest import IngestPipeline

from tests.service.conftest import make_archive


def make_pipeline(store, **kwargs):
    kwargs.setdefault("backoff_base", 0.005)
    kwargs.setdefault("lock_timeout", 0.2)
    return IngestPipeline(store.directory, **kwargs)


def wait_state(pipeline, tracking_id, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        document = pipeline.status(tracking_id)
        if document is not None and document["state"] != "pending":
            return document
        time.sleep(0.01)
    raise AssertionError(
        f"ingest {tracking_id} still pending after {timeout}s: "
        f"{pipeline.status(tracking_id)}"
    )


def post_archive(service, archive, **params):
    return service.handle(
        "/jobs",
        params=params,
        method="POST",
        body=archive_to_json(archive).encode("utf-8"),
    )


@pytest.fixture()
def pipeline(store):
    pipeline = make_pipeline(store)
    pipeline.start()
    yield pipeline
    pipeline.drain_and_stop(timeout=10.0)


@pytest.fixture()
def wservice(store, pipeline) -> ArchiveService:
    return ArchiveService(store, cache_size=8, ingest=pipeline)


class TestSubmitArchive:
    def test_post_archive_lands_in_store(self, wservice, pipeline):
        response = post_archive(wservice, make_archive("delta"))
        assert response.status == 202
        document = response.json()
        assert document["state"] == "pending"
        tracking_id = document["tracking_id"]
        assert document["status_url"] == f"/ingest/{tracking_id}"

        final = wait_state(pipeline, tracking_id)
        assert final["state"] == "ingested"
        assert final["job_id"] == "delta"
        assert wservice.handle("/jobs/delta").status == 200

        status = wservice.handle(f"/ingest/{tracking_id}")
        assert status.status == 200
        assert status.json()["state"] == "ingested"

    def test_post_raw_log_is_salvaged(self, wservice, pipeline):
        lines = [
            format_line({"ts": "0.0", "job": "rawlog", "event": "start",
                         "uid": "u0", "parent": "-", "mission": "Job",
                         "actor": "Client"}),
            format_line({"ts": "1.0", "job": "rawlog", "event": "start",
                         "uid": "u1", "parent": "u0",
                         "mission": "LoadGraph", "actor": "Master"}),
            format_line({"ts": "2.0", "job": "rawlog", "event": "info",
                         "uid": "u1", "name": "BytesRead",
                         "value": "512"}),
            format_line({"ts": "3.0", "job": "rawlog", "event": "end",
                         "uid": "u1"}),
            format_line({"ts": "4.0", "job": "rawlog", "event": "end",
                         "uid": "u0"}),
        ]
        response = wservice.handle(
            "/jobs",
            headers={"Content-Type": "text/plain"},
            method="POST",
            body="\n".join(lines).encode("utf-8"),
        )
        assert response.status == 202
        final = wait_state(pipeline, response.json()["tracking_id"])
        assert final["state"] == "ingested"
        assert final["job_id"] == "rawlog"
        summary = wservice.handle("/jobs/rawlog").json()
        assert summary["job_id"] == "rawlog"

    def test_empty_body_is_400(self, wservice):
        assert wservice.handle("/jobs", method="POST").status == 400

    def test_unknown_kind_is_400(self, wservice):
        response = wservice.handle(
            "/jobs", params={"kind": "carrier-pigeon"},
            method="POST", body=b"x",
        )
        assert response.status == 400

    def test_unknown_tracking_id_is_404(self, wservice):
        assert wservice.handle("/ingest/deadbeef").status == 404


class TestPoisonAndConflicts:
    def test_poison_body_dead_letters(self, wservice, pipeline):
        response = wservice.handle(
            "/jobs", method="POST", body=b"this is not an archive",
        )
        assert response.status == 202
        tracking_id = response.json()["tracking_id"]
        final = wait_state(pipeline, tracking_id)
        assert final["state"] == "failed"
        assert "materialize" in final["detail"]
        dead = pipeline.dead_letter_dir / f"{tracking_id}.json"
        assert dead.exists()
        assert json.loads(dead.read_text())["tracking_id"] == tracking_id
        assert pipeline.stats()["counters"]["dead_letters"] == 1
        # The WAL must not keep replaying poison.
        assert pipeline.wal.lag() == 0

    def test_duplicate_identical_content_is_idempotent(
        self, wservice, pipeline,
    ):
        archive = make_archive("dup")
        first = wait_state(
            pipeline, post_archive(wservice, archive).json()["tracking_id"]
        )
        second = wait_state(
            pipeline, post_archive(wservice, archive).json()["tracking_id"]
        )
        assert first["state"] == "ingested"
        assert second["state"] == "ingested"
        assert pipeline.stats()["counters"]["dead_letters"] == 0

    def test_conflicting_content_without_overwrite_fails(
        self, wservice, pipeline,
    ):
        post_archive(wservice, make_archive("clash"))
        response = post_archive(
            wservice, make_archive("clash", supersteps=5)
        )
        final = wait_state(pipeline, response.json()["tracking_id"])
        assert final["state"] == "failed"
        assert "different content" in final["detail"]
        # The original archive is untouched.
        query = wservice.handle(
            "/jobs/clash/query",
            params={"mission": "Superstep", "agg": "count"},
        )
        assert query.json()["result"] == 3

    def test_overwrite_replaces_archive(self, wservice, pipeline):
        post_archive(wservice, make_archive("repl"))
        response = post_archive(
            wservice, make_archive("repl", supersteps=5), overwrite="true",
        )
        final = wait_state(pipeline, response.json()["tracking_id"])
        assert final["state"] == "ingested"
        query = wservice.handle(
            "/jobs/repl/query",
            params={"mission": "Superstep", "agg": "count"},
        )
        assert query.json()["result"] == 5

    def test_failed_status_survives_restart_via_deadletter(
        self, store, pipeline, wservice,
    ):
        response = wservice.handle(
            "/jobs", method="POST", body=b"{broken",
        )
        tracking_id = response.json()["tracking_id"]
        wait_state(pipeline, tracking_id)
        # Simulate the restart: a fresh pipeline has an empty status map
        # but the dead-letter directory persists.
        pipeline.drain_and_stop(timeout=10.0)
        fresh = make_pipeline(store)
        try:
            document = fresh.status(tracking_id)
            assert document is not None
            assert document["state"] == "failed"
        finally:
            fresh.wal.close()


class TestLoadShedding:
    def test_saturated_queue_sheds_with_retry_after(self, store):
        # Worker deliberately not started: the queue can only fill.
        pipeline = make_pipeline(store, capacity=2)
        wservice = ArchiveService(store, cache_size=8, ingest=pipeline)
        try:
            accepted = [
                post_archive(wservice, make_archive(f"shed-{i}"))
                for i in range(2)
            ]
            assert [r.status for r in accepted] == [202, 202]

            shed = post_archive(wservice, make_archive("shed-over"))
            assert shed.status == 429
            retry_after = int(shed.headers["Retry-After"])
            assert 1 <= retry_after <= 120

            # Reads must keep answering while writes shed.
            latencies = []
            for _ in range(20):
                started = time.perf_counter()
                assert wservice.handle("/jobs").status == 200
                latencies.append(time.perf_counter() - started)
            latencies.sort()
            assert latencies[-1] < 1.0  # generous p99 bound

            health = wservice.handle("/healthz").json()
            assert health["status"] == "degraded"
            assert health["writes"]["queue_depth"] == 2

            metrics = wservice.handle("/metrics").json()
            ingest = metrics["ingest"]
            assert ingest["counters"]["shed"] == 1
            assert ingest["health"]["queue_depth"] == 2
            assert ingest["retry_after_s"] >= 1.0
        finally:
            pipeline.wal.close()


class TestChaosDegradedMode:
    def test_wal_disk_full_degrades_then_recovers(self, store):
        chaos = ChaosController(
            ChaosPlan(events=(DiskFull(after=0, count=1),))
        )
        pipeline = make_pipeline(store, chaos=chaos, recover_after=0.2)
        pipeline.start()
        wservice = ArchiveService(store, cache_size=8, ingest=pipeline)
        try:
            rejected = post_archive(wservice, make_archive("degraded"))
            assert rejected.status == 503
            assert int(rejected.headers["Retry-After"]) >= 1
            assert "degraded" in wservice.handle("/healthz").json()["status"]
            # Reads keep working while writes are off.
            assert wservice.handle("/jobs/alpha").status == 200
            # Writes stay rejected while the circuit is open.
            assert post_archive(
                wservice, make_archive("degraded")
            ).status == 503

            time.sleep(0.25)  # Past recover_after: next write probes.
            accepted = post_archive(wservice, make_archive("recovered"))
            assert accepted.status == 202
            final = wait_state(pipeline, accepted.json()["tracking_id"])
            assert final["state"] == "ingested"
            assert wservice.handle("/healthz").json()["status"] == "ok"
            assert pipeline.stats()["counters"]["wal_errors"] == 1
        finally:
            pipeline.drain_and_stop(timeout=10.0)

    def test_worker_crash_replays_exactly_once(self, store):
        chaos = ChaosController(
            ChaosPlan(events=(WorkerCrash(after=0),))
        )
        pipeline = make_pipeline(store, chaos=chaos)
        pipeline.start()
        wservice = ArchiveService(store, cache_size=8, ingest=pipeline)
        try:
            response = post_archive(wservice, make_archive("phoenix"))
            assert response.status == 202
            # The first worker dies after save but before ack; the
            # supervisor replays the WAL and the duplicate resolves
            # idempotently.
            final = wait_state(pipeline, response.json()["tracking_id"])
            assert final["state"] == "ingested"
            counters = pipeline.stats()["counters"]
            assert counters["worker_restarts"] == 1
            assert counters["dead_letters"] == 0
            store.refresh()
            assert store.list().count("phoenix") == 1
            assert pipeline.wal.lag() == 0
        finally:
            pipeline.drain_and_stop(timeout=10.0)


class TestCircuitHalfOpenProbe:
    def test_failed_probe_reopens_with_escalated_backoff(self, store):
        # Two injected disk-fulls: the initial trip, then one more to
        # fail the half-open probe.  The circuit must allow exactly one
        # probe write per window, re-open with a doubled window when it
        # fails, and keep reads at 200 the whole time.
        chaos = ChaosController(
            ChaosPlan(events=(DiskFull(after=0, count=2),))
        )
        recover_after = 0.15
        pipeline = make_pipeline(store, chaos=chaos,
                                 recover_after=recover_after)
        pipeline.start()
        wservice = ArchiveService(store, cache_size=8, ingest=pipeline)
        try:
            # Trip: first append hits disk-full #1.
            assert post_archive(wservice, make_archive("p0")).status == 503
            assert chaos.stats()["injected"]["disk_full"] == 1
            assert pipeline.wal.stats()["appended_total"] == 0
            assert wservice.handle("/jobs/alpha").status == 200

            # Open: rejected without touching the WAL (no new fault).
            assert post_archive(wservice, make_archive("p1")).status == 503
            assert chaos.stats()["injected"]["disk_full"] == 1

            # Half-open: exactly one probe write reaches the WAL and
            # hits disk-full #2 — which re-opens the circuit.
            time.sleep(recover_after + 0.05)
            assert pipeline._circuit.state() == "half-open"
            assert post_archive(wservice, make_archive("p2")).status == 503
            assert chaos.stats()["injected"]["disk_full"] == 2
            assert pipeline.wal.stats()["appended_total"] == 0
            assert wservice.handle("/jobs/alpha").status == 200

            # The failed probe escalated the window: one recover_after
            # later the circuit is still open and no probe is spent.
            time.sleep(recover_after + 0.02)
            assert pipeline._circuit.state() == "open"
            assert post_archive(wservice, make_archive("p3")).status == 503
            assert chaos.stats()["injected"]["disk_full"] == 2

            # Past the doubled window the next probe succeeds: 202,
            # the job lands, and health returns to ok.
            time.sleep(recover_after + 0.05)
            assert pipeline._circuit.state() == "half-open"
            accepted = post_archive(wservice, make_archive("p4"))
            assert accepted.status == 202
            assert pipeline.wal.stats()["appended_total"] == 1
            final = wait_state(pipeline, accepted.json()["tracking_id"])
            assert final["state"] == "ingested"
            assert pipeline._circuit.state() == "closed"
            assert wservice.handle("/healthz").json()["status"] == "ok"
        finally:
            pipeline.drain_and_stop(timeout=10.0)

    def test_probe_write_is_durable_when_it_succeeds(self, store):
        # A successful half-open probe is a real write, not a synthetic
        # ping: the submission that closed the circuit must itself be
        # ingested exactly once.
        chaos = ChaosController(
            ChaosPlan(events=(DiskFull(after=0, count=1),))
        )
        pipeline = make_pipeline(store, chaos=chaos, recover_after=0.1)
        pipeline.start()
        wservice = ArchiveService(store, cache_size=8, ingest=pipeline)
        try:
            assert post_archive(
                wservice, make_archive("probe-job")
            ).status == 503
            time.sleep(0.15)
            accepted = post_archive(wservice, make_archive("probe-job"))
            assert accepted.status == 202
            final = wait_state(pipeline, accepted.json()["tracking_id"])
            assert final["state"] == "ingested"
            store.refresh()
            assert store.list().count("probe-job") == 1
        finally:
            pipeline.drain_and_stop(timeout=10.0)


class TestRetries:
    def test_store_busy_is_retried_with_backoff(self, store, monkeypatch):
        pipeline = make_pipeline(store)
        failures = {"left": 2}
        real_save = pipeline.store.save

        def flaky_save(archive, **kwargs):
            if failures["left"] > 0:
                failures["left"] -= 1
                raise StoreBusyError("injected: index lock busy")
            return real_save(archive, **kwargs)

        monkeypatch.setattr(pipeline.store, "save", flaky_save)
        pipeline.start()
        try:
            document = pipeline.submit(
                archive_to_json(make_archive("contended")).encode("utf-8")
            )
            final = wait_state(pipeline, document["tracking_id"])
            assert final["state"] == "ingested"
            assert final["attempts"] == 3
            assert pipeline.stats()["counters"]["retries"] == 2
        finally:
            pipeline.drain_and_stop(timeout=10.0)

    def test_store_busy_exhaustion_dead_letters(self, store, monkeypatch):
        pipeline = make_pipeline(store, max_attempts=2)

        def always_busy(archive, **kwargs):
            raise StoreBusyError("injected: index lock busy")

        monkeypatch.setattr(pipeline.store, "save", always_busy)
        pipeline.start()
        try:
            document = pipeline.submit(
                archive_to_json(make_archive("wedged")).encode("utf-8")
            )
            final = wait_state(pipeline, document["tracking_id"])
            assert final["state"] == "failed"
            assert "busy after 2 attempts" in final["detail"]
        finally:
            pipeline.drain_and_stop(timeout=10.0)


class TestLifecycle:
    def test_draining_rejects_new_writes(self, store, wservice, pipeline):
        pipeline.begin_drain()
        response = post_archive(wservice, make_archive("late"))
        assert response.status == 503
        assert "draining" in response.json()["error"]
        assert wservice.handle("/healthz").json()["status"] == "draining"

    def test_submit_validates_before_wal(self, pipeline):
        with pytest.raises(IngestError):
            pipeline.submit(b"", kind="archive")
        with pytest.raises(IngestError):
            pipeline.submit(b"x", kind="nope")
        assert pipeline.wal.stats()["appended_total"] == 0

    def test_restart_replays_unacked_records(self, store):
        # Fill a WAL with a worker that never ran, then "restart".
        stalled = make_pipeline(store)
        for i in range(3):
            stalled.submit(
                archive_to_json(make_archive(f"replay-{i}")).encode("utf-8")
            )
        stalled.wal.close()

        fresh = make_pipeline(store)
        try:
            assert fresh.start() == 3
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and fresh.wal.lag():
                time.sleep(0.01)
            assert fresh.wal.lag() == 0
            store.refresh()
            for i in range(3):
                assert f"replay-{i}" in store.list()
            assert fresh.stats()["counters"]["replayed"] == 3
        finally:
            fresh.drain_and_stop(timeout=10.0)
