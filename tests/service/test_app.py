"""Unit tests for the transport-independent service layer."""

from repro.core.archive.store import ArchiveStore
from repro.service.app import ArchiveService

from tests.service.conftest import make_archive


class TestRouting:
    def test_healthz(self, service):
        response = service.handle("/healthz")
        assert response.status == 200
        document = response.json()
        assert document["status"] == "ok"
        assert document["jobs"] == 3

    def test_unknown_route(self, service):
        assert service.handle("/nope").status == 404
        assert service.handle("/jobs/alpha/nope").status == 404

    def test_write_methods_rejected(self, service):
        for method in ("POST", "PUT", "DELETE"):
            assert service.handle("/jobs", method=method).status == 405


class TestJobsListing:
    def test_lists_all_jobs(self, service):
        document = service.handle("/jobs").json()
        assert document["total"] == 3
        assert [job["job_id"] for job in document["jobs"]] == [
            "alpha", "beta", "gamma"]
        assert document["jobs"][0]["platform"] == "Giraph"

    def test_filters(self, service):
        document = service.handle(
            "/jobs", {"platform": "Giraph"}).json()
        assert [j["job_id"] for j in document["jobs"]] == ["alpha", "gamma"]
        document = service.handle(
            "/jobs", {"platform": "Giraph", "algorithm": "wcc"}).json()
        assert [j["job_id"] for j in document["jobs"]] == ["gamma"]
        assert service.handle(
            "/jobs", {"dataset": "none"}).json()["jobs"] == []

    def test_pagination(self, service):
        document = service.handle(
            "/jobs", {"offset": "1", "limit": "1"}).json()
        assert document["total"] == 3
        assert [j["job_id"] for j in document["jobs"]] == ["beta"]
        assert service.handle(
            "/jobs", {"offset": "5"}).json()["jobs"] == []

    def test_bad_pagination_is_400(self, service):
        assert service.handle("/jobs", {"offset": "x"}).status == 400
        assert service.handle("/jobs", {"limit": "0"}).status == 400
        assert service.handle("/jobs", {"offset": "-1"}).status == 400

    def test_etag_revalidation(self, service):
        first = service.handle("/jobs")
        etag = first.headers["ETag"]
        again = service.handle("/jobs", headers={"If-None-Match": etag})
        assert again.status == 304
        assert again.body == b""
        assert again.headers["ETag"] == etag

    def test_etag_changes_when_store_changes(self, service):
        etag = service.handle("/jobs").headers["ETag"]
        service.store.save(make_archive("delta"))
        fresh = service.handle("/jobs", headers={"If-None-Match": etag})
        assert fresh.status == 200
        assert fresh.json()["total"] == 4

    def test_listing_sees_external_writers(self, tmp_path, service):
        # A second process (simulated by a second store object) saves a
        # new archive; the serving store picks it up via refresh().
        other = ArchiveStore(service.store.directory)
        other.save(make_archive("external"))
        document = service.handle("/jobs").json()
        assert "external" in [j["job_id"] for j in document["jobs"]]


class TestJobSummary:
    def test_summary(self, service):
        document = service.handle("/jobs/alpha").json()
        assert document["job_id"] == "alpha"
        assert document["platform"] == "Giraph"
        assert document["operations"] == 8
        assert len(document["checksum"]) == 64

    def test_missing_job_is_404(self, service):
        assert service.handle("/jobs/ghost").status == 404

    def test_unsafe_job_id_is_400(self, service):
        # Encoded traversal must be a client error, not a 500.
        response = service.handle("/jobs/..%2Fescape".replace("%2F", "/"))
        assert response.status in (400, 404)
        assert service.handle("/jobs/..").status == 400
        assert service.handle("/jobs/.hidden").status == 400

    def test_conditional_get(self, service):
        first = service.handle("/jobs/alpha")
        etag = first.headers["ETag"]
        assert service.handle(
            "/jobs/alpha", headers={"If-None-Match": etag}
        ).status == 304
        assert service.handle(
            "/jobs/alpha", headers={"If-None-Match": '"other"'}
        ).status == 200
        assert service.handle(
            "/jobs/alpha", headers={"If-None-Match": f'W/{etag}, "x"'}
        ).status == 304


class TestJobQuery:
    def test_default_total_duration(self, service):
        document = service.handle(
            "/jobs/alpha/query", {"mission": "Superstep"}).json()
        assert document["agg"] == "total"
        assert document["metric"] == "Duration"
        assert document["selection"] == 3
        assert document["result"] == 6.0

    def test_path_glob_segment_semantics(self, service):
        document = service.handle(
            "/jobs/alpha/query", {"path": "Job/*", "agg": "count"}).json()
        assert document["result"] == 2  # LoadGraph + ProcessGraph only
        document = service.handle(
            "/jobs/alpha/query",
            {"path": "Job/**/Superstep-*", "agg": "count"}).json()
        assert document["result"] == 3

    def test_mean_and_values(self, service):
        assert service.handle(
            "/jobs/alpha/query",
            {"mission": "Superstep", "agg": "mean"}).json()["result"] == 2.0
        assert service.handle(
            "/jobs/alpha/query",
            {"mission": "LocalLoad", "agg": "values",
             "metric": "BytesRead"}).json()["result"] == [100, 200]

    def test_top(self, service):
        document = service.handle(
            "/jobs/alpha/query",
            {"mission": "LocalLoad", "agg": "top",
             "metric": "BytesRead", "n": "1"}).json()
        assert len(document["result"]) == 1
        assert document["result"][0]["value"] == 200
        assert document["result"][0]["actor"] == "Worker-2"

    def test_operations_listing(self, service):
        document = service.handle(
            "/jobs/alpha/query",
            {"actor": "Worker", "agg": "operations"}).json()
        assert [op["path"] for op in document["result"]] == [
            "Job/LoadGraph/LocalLoad", "Job/LoadGraph/LocalLoad"]

    def test_iteration_filter(self, service):
        document = service.handle(
            "/jobs/alpha/query",
            {"iteration": "1", "agg": "operations"}).json()
        assert [op["mission"] for op in document["result"]] == [
            "Superstep-1"]

    def test_query_errors_are_400(self, service):
        assert service.handle(
            "/jobs/alpha/query", {"agg": "nope"}).status == 400
        assert service.handle(
            "/jobs/alpha/query", {"path": "a**b"}).status == 400
        assert service.handle(
            "/jobs/alpha/query",
            {"agg": "mean", "metric": "Ghost"}).status == 400
        assert service.handle(
            "/jobs/alpha/query", {"agg": "top", "n": "0"}).status == 400
        assert service.handle(
            "/jobs/alpha/query", {"iteration": "x"}).status == 400

    def test_non_numeric_metric_is_400(self, service, store):
        archive = make_archive("strings")
        archive.root.infos["Status"] = "SUCCEEDED"
        store.save(archive)
        response = service.handle(
            "/jobs/strings/query", {"agg": "total", "metric": "Status"})
        assert response.status == 400
        assert "not numeric" in response.json()["error"]

    def test_conditional_get_skips_work(self, service):
        etag = service.handle(
            "/jobs/alpha/query", {"agg": "count"}).headers["ETag"]
        response = service.handle(
            "/jobs/alpha/query", {"agg": "count"},
            headers={"If-None-Match": etag})
        assert response.status == 304

    def test_cache_reuses_materialized_archive(self, service):
        # Queries share one cached columnar view (first query misses,
        # second hits); only the report materializes the archive tree.
        assert service.cache.stats()["hits"] == 0
        service.handle("/jobs/alpha/query", {"agg": "count"})
        service.handle("/jobs/alpha/query", {"agg": "total"})
        service.handle("/jobs/alpha/report")
        stats = service.cache.stats()
        assert stats["misses"] == 2
        assert stats["hits"] == 1
        assert any(key.startswith("gcol:") for key in service.cache._entries)

    def test_rewritten_archive_invalidates_cache(self, service, store):
        service.handle("/jobs/alpha/query", {"agg": "count"})
        store.save(make_archive("alpha", supersteps=5), overwrite=True)
        document = service.handle(
            "/jobs/alpha/query",
            {"mission": "Superstep", "agg": "count"}).json()
        assert document["result"] == 5
        assert service.cache.stats()["misses"] == 2


class TestJobReport:
    def test_text_report(self, service):
        response = service.handle("/jobs/alpha/report")
        assert response.status == 200
        assert response.content_type.startswith("text/plain")
        assert "Job" in response.text
        assert "TOTAL" in response.text

    def test_html_report(self, service):
        response = service.handle(
            "/jobs/alpha/report", {"format": "html"})
        assert response.status == 200
        assert response.content_type.startswith("text/html")
        assert "<svg" in response.text

    def test_bad_format_is_400(self, service):
        assert service.handle(
            "/jobs/alpha/report", {"format": "pdf"}).status == 400

    def test_conditional_get(self, service):
        etag = service.handle("/jobs/alpha/report").headers["ETag"]
        assert service.handle(
            "/jobs/alpha/report",
            headers={"If-None-Match": etag}).status == 304


class TestMetricsEndpoint:
    def test_metrics_accumulate(self, service):
        service.handle("/jobs")
        service.handle("/jobs/alpha")
        service.handle("/jobs/ghost")
        etag = service.handle("/jobs/alpha").headers["ETag"]
        service.handle("/jobs/alpha", headers={"If-None-Match": etag})
        document = service.handle("/metrics").json()
        assert document["requests_total"] == 5
        # The ghost 404 shares the route's stable label — raw paths
        # never become metric labels (cardinality leak).
        assert document["requests_by_endpoint"]["/jobs/{id}"] == 4
        assert document["responses_by_status"]["404"] == 1
        assert document["not_modified_total"] == 1
        assert "p50_ms" in document["latency_ms"]["/jobs/{id}"]
        assert document["cache"]["capacity"] == 8
