"""Unit tests for the checksum-keyed LRU archive cache."""

import threading

import pytest

from repro.service.cache import ArchiveCache


class TestArchiveCache:
    def test_hit_and_miss_counters(self):
        cache = ArchiveCache(capacity=2)
        assert cache.get("a") is None
        cache.put("a", "A")
        assert cache.get("a") == "A"
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_lru_eviction_order(self):
        cache = ArchiveCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a: b becomes least recent
        cache.put("c", 3)
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.stats()["evictions"] == 1

    def test_zero_capacity_disables_caching(self):
        cache = ArchiveCache(capacity=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ArchiveCache(capacity=-1)

    def test_clear_keeps_counters(self):
        cache = ArchiveCache(capacity=4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 1

    def test_thread_safety_smoke(self):
        cache = ArchiveCache(capacity=16)
        errors = []

        def worker(seed: int) -> None:
            try:
                for i in range(500):
                    key = f"k{(seed * 7 + i) % 32}"
                    cache.put(key, i)
                    cache.get(key)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert len(cache) <= 16
