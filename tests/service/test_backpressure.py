"""The shared Retry-After clamp every shedding surface derives from."""

from __future__ import annotations

from repro.service.backpressure import (
    RETRY_AFTER_CEILING,
    RETRY_AFTER_FLOOR,
    clamp_retry_after,
    retry_after_seconds,
)


class TestClamp:
    def test_within_bounds_passes_through(self):
        assert clamp_retry_after(7.5) == 7.5

    def test_floor(self):
        assert clamp_retry_after(0.0) == RETRY_AFTER_FLOOR
        assert clamp_retry_after(-3.0) == RETRY_AFTER_FLOOR
        assert clamp_retry_after(0.2) == RETRY_AFTER_FLOOR

    def test_ceiling(self):
        assert clamp_retry_after(10_000.0) == RETRY_AFTER_CEILING
        assert clamp_retry_after(120.0001) == RETRY_AFTER_CEILING

    def test_bounds_are_the_documented_contract(self):
        # Clients sleep on these values: the band must stay [1, 120]s.
        assert RETRY_AFTER_FLOOR == 1.0
        assert RETRY_AFTER_CEILING == 120.0


class TestRetryAfterSeconds:
    def test_backlog_over_drain_rate(self):
        assert retry_after_seconds(20, 10.0) == 2.0

    def test_zero_drain_rate_does_not_divide_by_zero(self):
        # A cold (or stalled) worker has no measured rate yet; the
        # estimate falls back to the minimum rate, then the ceiling
        # keeps the hint sane.
        assert retry_after_seconds(500, 0.0) == RETRY_AFTER_CEILING
        assert retry_after_seconds(5, 0.0) == 50.0

    def test_empty_backlog_still_hints_at_least_the_floor(self):
        # A rejected write with an empty queue (e.g. degraded mode)
        # must not tell the client to retry in zero seconds.
        assert retry_after_seconds(0, 100.0) == RETRY_AFTER_FLOOR

    def test_huge_backlog_clamps_to_ceiling(self):
        assert retry_after_seconds(10**9, 1.0) == RETRY_AFTER_CEILING

    def test_negative_inputs_are_sanitized(self):
        # Negative backlog counts as one record, a negative rate as the
        # minimum rate: 1 / 0.1 = 10 s, safely inside the band.
        assert retry_after_seconds(-5, -1.0) == 10.0
