"""Cluster acceptance: SIGKILL a shard mid-burst, lose nothing acked.

These are the tentpole guarantees of the sharded tier, proven against
real forked workers over real loopback HTTP:

- every job the router 202-acknowledged is in exactly one shard store
  after the killed worker restarts and replays its WAL;
- reads on healthy shards keep answering fast while one shard is down;
- each shard's ``index.json`` is byte-identical to a from-scratch
  ``rebuild_index()`` — supervised restarts leave no index drift;
- the aggregated ``/healthz`` converges back to ``ok``.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.archive.serialize import archive_to_json
from repro.core.archive.store import ArchiveStore
from repro.service.chaos import ChaosPlan, WorkerKill
from repro.service.cluster import create_cluster
from repro.service.metrics import percentile
from tests.service.conftest import make_archive


def start_cluster(dirs, **kwargs):
    kwargs.setdefault("probe_interval", 0.1)
    server = create_cluster(dirs, port=0, **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server


def stop_cluster(server):
    server.shutdown()
    server.server_close()
    server.supervisor.stop()


def fetch(url, headers=None):
    request = urllib.request.Request(url, headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def post_job(base, payload, attempts=40):
    """POST one archive, honouring Retry-After on 429/503 (capped so
    the test converges quickly); returns the tracking document."""
    for _ in range(attempts):
        request = urllib.request.Request(
            f"{base}/jobs", data=payload, method="POST",
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=10) as response:
                assert response.status == 202
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            assert exc.code in (429, 503), exc.read()
            retry_after = float(exc.headers.get("Retry-After", "1"))
            assert retry_after >= 1.0
            time.sleep(min(retry_after, 0.4))
    raise AssertionError(f"job never accepted in {attempts} attempts")


def wait_ok(base, timeout=30.0):
    deadline = time.monotonic() + timeout
    document = {}
    while time.monotonic() < deadline:
        status, _headers, body = fetch(f"{base}/healthz")
        if status == 200:
            document = json.loads(body)
            if document.get("status") == "ok":
                return document
        time.sleep(0.1)
    raise AssertionError(f"cluster never converged: {document}")


def wait_drained(base, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _status, _headers, body = fetch(f"{base}/healthz")
        document = json.loads(body)
        lags = [shard.get("health", {}).get("writes", {}).get("wal_lag")
                for shard in document.get("shards", [])]
        if document.get("status") == "ok" and \
                all(lag == 0 for lag in lags):
            return
        time.sleep(0.1)
    raise AssertionError("shard WALs never drained")


@pytest.mark.slow
class TestShardFailover:
    def test_sigkill_mid_burst_loses_no_acked_job(self, tmp_path):
        dirs = [tmp_path / "s0", tmp_path / "s1"]
        server = start_cluster(dirs)
        try:
            base = server.url
            ring = server.service.ring
            wait_ok(base)

            jobs = [f"burst-{i:03d}" for i in range(10)]
            payloads = {
                job_id: archive_to_json(make_archive(job_id)).encode()
                for job_id in jobs
            }
            # Kill the shard that owns the most of the burst, right
            # after its first few acks — the classic worst case: acked
            # to the client, possibly not yet drained to the store.
            owners = {j: ring.shard_for(j) for j in jobs}
            victim = max(set(owners.values()),
                         key=lambda s: sum(1 for o in owners.values()
                                           if o == s))
            acked = {}
            killed = False
            victim_acks = 0
            for job_id in jobs:
                acked[job_id] = post_job(base, payloads[job_id])
                if owners[job_id] == victim:
                    victim_acks += 1
                if not killed and victim_acks >= 2:
                    server.supervisor.kill_worker(victim)
                    killed = True
            assert killed
            assert len(acked) == len(jobs)

            health = wait_ok(base)
            assert [s["state"] for s in health["shards"]] == \
                ["live", "live"]
            wait_drained(base)

            status, _headers, body = fetch(f"{base}/jobs?limit=100")
            assert status == 200
            listing = json.loads(body)
            assert listing["degraded_shards"] == []
            listed = [job["job_id"] for job in listing["jobs"]]
            for job_id in jobs:
                assert listed.count(job_id) == 1, (job_id, listed)

            # Every job sits in exactly the shard store the ring says.
            restart_count = server.supervisor.stats()["counters"][
                "restarts_total"]
            assert restart_count >= 1
        finally:
            stop_cluster(server)

        # After a full stop (workers drained), each shard's on-disk
        # index must be byte-identical to a from-scratch rebuild: the
        # kill/replay cycle may not leave index drift behind.
        for index, directory in enumerate(dirs):
            index_path = directory / "index.json"
            before = index_path.read_bytes()
            ArchiveStore(directory).rebuild_index()
            assert index_path.read_bytes() == before, (
                f"shard {index} index drifted from its archives"
            )
            stored = set(ArchiveStore(directory).list())
            expected = {j for j, owner in
                        {j: server.service.ring.shard_for(j)
                         for j in [f"burst-{i:03d}" for i in range(10)]
                         }.items() if owner == index}
            assert stored == expected

    def test_healthy_shard_reads_stay_fast_during_outage(self, tmp_path):
        dirs = [tmp_path / "s0", tmp_path / "s1"]
        server = start_cluster(dirs)
        try:
            base = server.url
            ring = server.service.ring
            wait_ok(base)
            jobs = [f"read-{i:02d}" for i in range(8)]
            for job_id in jobs:
                post_job(
                    base, archive_to_json(make_archive(job_id)).encode()
                )
            wait_drained(base)

            victim = ring.shard_for(jobs[0])
            healthy_jobs = [j for j in jobs
                            if ring.shard_for(j) != victim]
            assert healthy_jobs
            # Slow the restart down so the outage window is real.
            server.supervisor.restart_backoff_base = 1.5
            server.supervisor.kill_worker(victim)

            latencies = []
            statuses = set()
            for _ in range(60):
                job_id = healthy_jobs[len(latencies) % len(healthy_jobs)]
                started = time.perf_counter()
                status, _headers, _body = fetch(f"{base}/jobs/{job_id}")
                latencies.append(time.perf_counter() - started)
                statuses.add(status)
            assert statuses == {200}
            p99 = percentile(latencies, 0.99)
            assert p99 < 1.0, f"healthy-shard p99 {p99:.3f}s"

            server.supervisor.restart_backoff_base = 0.05
            wait_ok(base)
        finally:
            stop_cluster(server)


@pytest.mark.slow
class TestClusterHttpContract:
    def test_routed_write_read_and_304_over_live_http(self, tmp_path):
        dirs = [tmp_path / "s0", tmp_path / "s1", tmp_path / "s2"]
        server = start_cluster(dirs)
        try:
            base = server.url
            wait_ok(base)
            payload = archive_to_json(make_archive("alpha")).encode()
            document = post_job(base, payload)
            assert document["tracking_id"]

            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                status, headers, body = fetch(f"{base}/jobs/alpha")
                if status == 200:
                    break
                time.sleep(0.1)
            assert status == 200
            assert json.loads(body)["job_id"] == "alpha"
            etag = headers["ETag"]
            status, headers, body = fetch(
                f"{base}/jobs/alpha", headers={"If-None-Match": etag}
            )
            assert status == 304
            assert not body

            status, _headers, body = fetch(f"{base}/metrics")
            assert status == 200
            metrics = json.loads(body)
            assert metrics["router"]["requests_total"] >= 2
            assert len(metrics["shards"]) == 3

            # A raw-log submission with no job id cannot be routed.
            request = urllib.request.Request(
                f"{base}/jobs?kind=log", data=b"GRANULA x",
                method="POST",
                headers={"Content-Type": "text/plain"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 400
        finally:
            stop_cluster(server)


@pytest.mark.slow
class TestRouterChaos:
    def test_worker_kill_event_fires_and_cluster_recovers(self, tmp_path):
        plan = ChaosPlan(events=(WorkerKill(shard=0, after=3),))
        dirs = [tmp_path / "s0", tmp_path / "s1"]
        server = start_cluster(dirs, chaos=plan)
        try:
            base = server.url
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                stats = server.supervisor.stats()
                if stats["counters"]["restarts_total"] >= 1:
                    break
                time.sleep(0.1)
            assert server.supervisor.stats()["counters"][
                "restarts_total"] >= 1, "worker_kill never fired"
            wait_ok(base)
            injected = server.supervisor.chaos.stats()["injected"]
            assert injected.get("worker_kill") == 1
        finally:
            stop_cluster(server)
