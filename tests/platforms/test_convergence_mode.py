"""PageRank convergence mode (tolerance) across all three engines.

The three platform implementations and the single-node reference must
agree not only on values but on the *round count* convergence triggers —
all four compute the same L1 delta and stop at the same iteration.
"""

import pytest

from repro.errors import PlatformError
from repro.graph.algorithms import pagerank
from repro.graph.partition.vertexcut import greedy_vertex_cut
from repro.graph.validate import compare_numeric
from repro.platforms.base import JobRequest
from repro.platforms.gas.algorithms import make_gas_program
from repro.platforms.gas.sync_engine import SyncGasEngine
from repro.platforms.pregel.engine import GiraphPlatform
from repro.platforms.mapreduce.engine import HadoopPlatform

from tests.conftest import make_giraph_cluster
from tests.platforms.test_mapreduce import make_hadoop_cluster

TOLERANCE = 1e-4
MAX_ITERATIONS = 60


def reference_rounds(graph, tolerance):
    """How many iterations the reference needs to converge."""
    previous = pagerank(graph, iterations=0)
    for rounds in range(1, MAX_ITERATIONS + 1):
        current = pagerank(graph, iterations=rounds)
        delta = sum(abs(current[v] - previous[v]) for v in graph.vertices())
        if delta < tolerance:
            return rounds
        previous = current
    raise AssertionError("reference did not converge")


class TestConvergenceMode:
    @pytest.fixture(scope="class")
    def expected(self, tiny_graph):
        rounds = reference_rounds(tiny_graph, TOLERANCE)
        ranks = pagerank(tiny_graph, iterations=rounds)
        return rounds, ranks

    def test_reference_converges_early(self, expected):
        rounds, _ranks = expected
        assert rounds < MAX_ITERATIONS

    def test_giraph_converges_matching_reference(self, tiny_graph, expected):
        rounds, ranks = expected
        platform = GiraphPlatform(make_giraph_cluster())
        platform.deploy_dataset("tiny", tiny_graph)
        result = platform.run_job(JobRequest(
            "pagerank", "tiny", 8,
            params={"iterations": MAX_ITERATIONS, "tolerance": TOLERANCE},
        ))
        assert compare_numeric(ranks, result.output,
                               rel_tol=1e-9, abs_tol=1e-12).ok
        # Superstep count: iterations + the halt-detection superstep(s).
        assert result.stats["supersteps"] <= rounds + 2
        assert result.stats["supersteps"] < MAX_ITERATIONS

    def test_gas_converges_matching_reference(self, tiny_graph, expected):
        rounds, ranks = expected
        program = make_gas_program(
            "pagerank",
            {"iterations": MAX_ITERATIONS, "tolerance": TOLERANCE},
            tiny_graph,
        )
        engine = SyncGasEngine(tiny_graph,
                               greedy_vertex_cut(tiny_graph, 4), program)
        history = engine.run()
        assert compare_numeric(ranks, engine.output(),
                               rel_tol=1e-9, abs_tol=1e-12).ok
        assert len(history) == rounds

    def test_hadoop_converges_matching_reference(self, tiny_graph, expected):
        rounds, ranks = expected
        platform = HadoopPlatform(make_hadoop_cluster())
        platform.deploy_dataset("tiny", tiny_graph)
        result = platform.run_job(JobRequest(
            "pagerank", "tiny", 8,
            params={"iterations": MAX_ITERATIONS, "tolerance": TOLERANCE},
        ))
        assert compare_numeric(ranks, result.output,
                               rel_tol=1e-9, abs_tol=1e-12).ok
        assert result.stats["rounds"] == rounds

    def test_zero_tolerance_runs_all_iterations(self, tiny_graph):
        program = make_gas_program("pagerank", {"iterations": 5},
                                   tiny_graph)
        engine = SyncGasEngine(tiny_graph,
                               greedy_vertex_cut(tiny_graph, 2), program)
        assert len(engine.run()) == 5

    def test_negative_tolerance_rejected(self, tiny_graph):
        from repro.platforms.pregel.algorithms import make_pregel_program
        from repro.platforms.mapreduce.algorithms import make_mapreduce_round

        with pytest.raises(PlatformError):
            make_pregel_program("pagerank", {"tolerance": -1.0}, tiny_graph)
        with pytest.raises(PlatformError):
            make_gas_program("pagerank", {"tolerance": -1.0}, tiny_graph)
        with pytest.raises(PlatformError):
            make_mapreduce_round("pagerank", {"tolerance": -1.0},
                                 tiny_graph)
