"""Unit tests for the Granula log writer."""

import pytest

from repro.cluster.clock import SimClock
from repro.errors import PlatformError
from repro.platforms.logging_util import GranulaLogWriter


@pytest.fixture()
def writer():
    return GranulaLogWriter("job-1", SimClock())


class TestGranulaLogWriter:
    def test_requires_job_id(self):
        with pytest.raises(PlatformError):
            GranulaLogWriter("", SimClock())

    def test_start_emits_line(self, writer):
        op = writer.start("LoadGraph", "Master")
        assert len(writer.lines) == 1
        assert "mission=LoadGraph" in writer.lines[0]
        assert "actor=Master" in writer.lines[0]
        assert op.parent_uid == "-"

    def test_uids_unique_and_sequential(self, writer):
        a = writer.start("A", "x")
        b = writer.start("B", "x")
        assert a.uid != b.uid

    def test_end_uses_clock(self, writer):
        op = writer.start("A", "x")
        writer.clock.advance(2.0)
        writer.end(op)
        assert "ts=2.000000" in writer.lines[-1]
        assert op.closed

    def test_double_end_rejected(self, writer):
        op = writer.start("A", "x")
        writer.end(op)
        with pytest.raises(PlatformError):
            writer.end(op)

    def test_end_before_start_rejected(self, writer):
        writer.clock.advance(5.0)
        op = writer.start("A", "x")
        with pytest.raises(PlatformError):
            writer.end(op, ts=4.0)

    def test_explicit_timestamps(self, writer):
        op = writer.start("A", "x", ts=1.5)
        writer.end(op, ts=2.5)
        assert op.started_at == 1.5
        assert "ts=2.500000" in writer.lines[-1]

    def test_parent_link(self, writer):
        parent = writer.start("Job", "Client")
        child = writer.start("Phase", "Master", parent)
        assert child.parent_uid == parent.uid
        assert f"parent={parent.uid}" in writer.lines[-1]

    def test_info_line(self, writer):
        op = writer.start("A", "x")
        writer.info(op, "Bytes", 1024)
        assert "name=Bytes" in writer.lines[-1]
        assert "value=1024" in writer.lines[-1]

    def test_span_emits_pair(self, writer):
        op = writer.span("A", "x", None, 1.0, 2.0)
        assert op.closed
        assert len(writer.lines) == 2

    def test_open_operations_tracked(self, writer):
        a = writer.start("A", "x")
        writer.start("B", "x")
        writer.end(a)
        assert [op.mission for op in writer.open_operations] == ["B"]

    def test_assert_all_closed(self, writer):
        op = writer.start("A", "x")
        with pytest.raises(PlatformError):
            writer.assert_all_closed()
        writer.end(op)
        writer.assert_all_closed()
