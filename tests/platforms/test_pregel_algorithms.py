"""Validation of every Pregel algorithm against the references."""

import pytest

from repro.graph.algorithms import (
    bfs_levels,
    label_propagation,
    local_clustering_coefficient,
    pagerank,
    sssp_distances,
    weakly_connected_components,
)
from repro.graph.generators import grid_graph, powerlaw_graph, uniform_random_graph
from repro.graph.graph import Graph
from repro.graph.validate import compare_exact, compare_numeric
from repro.platforms.base import JobRequest
from repro.platforms.pregel.algorithms import make_pregel_program
from repro.platforms.pregel.engine import GiraphPlatform
from repro.errors import PlatformError

from tests.conftest import make_giraph_cluster


def run(graph, algorithm, params, workers=8):
    platform = GiraphPlatform(make_giraph_cluster())
    platform.deploy_dataset("g", graph)
    return platform.run_job(
        JobRequest(algorithm, "g", workers, params=params)
    ).output


GRAPHS = {
    "datagen": "tiny_graph",
    "powerlaw": powerlaw_graph(400, 2400, seed=8),
    "uniform": uniform_random_graph(400, 2000, seed=8),
    "grid": grid_graph(12, 12),
    "disconnected": Graph(50, [(i, i + 1) for i in range(20)]),
}


def graph_by_name(name, request):
    g = GRAPHS[name]
    if isinstance(g, str):
        return request.getfixturevalue(g)
    return g


@pytest.mark.parametrize("name", list(GRAPHS))
class TestAgainstReference:
    def test_bfs(self, name, request):
        g = graph_by_name(name, request)
        out = run(g, "bfs", {"source": 0})
        assert compare_exact(bfs_levels(g, 0), out).ok

    def test_pagerank(self, name, request):
        g = graph_by_name(name, request)
        out = run(g, "pagerank", {"iterations": 8})
        ref = pagerank(g, iterations=8)
        assert compare_numeric(ref, out, rel_tol=1e-9, abs_tol=1e-12).ok

    def test_wcc(self, name, request):
        g = graph_by_name(name, request)
        out = run(g, "wcc", {})
        assert compare_exact(weakly_connected_components(g), out).ok

    def test_sssp(self, name, request):
        g = graph_by_name(name, request)
        out = run(g, "sssp", {"source": 0})
        assert compare_numeric(sssp_distances(g, 0), out).ok

    def test_cdlp(self, name, request):
        g = graph_by_name(name, request)
        out = run(g, "cdlp", {"iterations": 4})
        assert compare_exact(label_propagation(g, 4), out).ok

    def test_lcc(self, name, request):
        g = graph_by_name(name, request)
        out = run(g, "lcc", {})
        ref = local_clustering_coefficient(g)
        assert compare_numeric(ref, out, rel_tol=1e-9, abs_tol=1e-12).ok


class TestAlgorithmSpecifics:
    def test_bfs_from_nonzero_source(self, tiny_graph):
        out = run(tiny_graph, "bfs", {"source": 37})
        assert compare_exact(bfs_levels(tiny_graph, 37), out).ok

    def test_pagerank_damping_param(self, tiny_graph):
        out = run(tiny_graph, "pagerank", {"iterations": 5, "damping": 0.5})
        ref = pagerank(tiny_graph, damping=0.5, iterations=5)
        assert compare_numeric(ref, out, rel_tol=1e-9).ok

    def test_worker_count_does_not_change_results(self, tiny_graph):
        a = run(tiny_graph, "pagerank", {"iterations": 5}, workers=2)
        b = run(tiny_graph, "pagerank", {"iterations": 5}, workers=8)
        assert compare_numeric(a, b, rel_tol=1e-9).ok

    def test_factory_rejects_unknown(self, tiny_graph):
        with pytest.raises(PlatformError):
            make_pregel_program("nope", {}, tiny_graph)

    def test_factory_validates_sources(self, tiny_graph):
        with pytest.raises(PlatformError):
            make_pregel_program("bfs", {"source": 10**6}, tiny_graph)
        with pytest.raises(PlatformError):
            make_pregel_program("sssp", {"source": -5}, tiny_graph)

    def test_factory_validates_iterations(self, tiny_graph):
        with pytest.raises(PlatformError):
            make_pregel_program("pagerank", {"iterations": -1}, tiny_graph)
        with pytest.raises(PlatformError):
            make_pregel_program("cdlp", {"iterations": -1}, tiny_graph)
        with pytest.raises(PlatformError):
            make_pregel_program("pagerank", {"damping": 2.0}, tiny_graph)
