"""Validation of every GAS algorithm against the references, plus unit
tests for the synchronous GAS engine itself."""

import pytest

from repro.errors import PlatformError
from repro.graph.algorithms import (
    bfs_levels,
    label_propagation,
    local_clustering_coefficient,
    pagerank,
    sssp_distances,
    weakly_connected_components,
)
from repro.graph.generators import grid_graph, powerlaw_graph, uniform_random_graph
from repro.graph.graph import Graph
from repro.graph.partition.vertexcut import greedy_vertex_cut, random_vertex_cut
from repro.graph.validate import compare_exact, compare_numeric
from repro.platforms.gas.algorithms import BfsGas, make_gas_program
from repro.platforms.gas.sync_engine import SyncGasEngine


def run_gas(graph, algorithm, params, ranks=4):
    program = make_gas_program(algorithm, params, graph)
    cut = greedy_vertex_cut(graph, ranks)
    engine = SyncGasEngine(graph, cut, program)
    engine.run()
    return engine.output()


GRAPHS = {
    "datagen": "tiny_graph",
    "powerlaw": powerlaw_graph(400, 2400, seed=8),
    "uniform": uniform_random_graph(400, 2000, seed=8),
    "grid": grid_graph(12, 12),
    "disconnected": Graph(50, [(i, i + 1) for i in range(20)]),
}


def graph_by_name(name, request):
    g = GRAPHS[name]
    if isinstance(g, str):
        return request.getfixturevalue(g)
    return g


@pytest.mark.parametrize("name", list(GRAPHS))
class TestAgainstReference:
    def test_bfs(self, name, request):
        g = graph_by_name(name, request)
        out = run_gas(g, "bfs", {"source": 0})
        assert compare_exact(bfs_levels(g, 0), out).ok

    def test_pagerank(self, name, request):
        g = graph_by_name(name, request)
        out = run_gas(g, "pagerank", {"iterations": 8})
        ref = pagerank(g, iterations=8)
        assert compare_numeric(ref, out, rel_tol=1e-9, abs_tol=1e-12).ok

    def test_wcc(self, name, request):
        g = graph_by_name(name, request)
        out = run_gas(g, "wcc", {})
        assert compare_exact(weakly_connected_components(g), out).ok

    def test_sssp(self, name, request):
        g = graph_by_name(name, request)
        out = run_gas(g, "sssp", {"source": 0})
        assert compare_numeric(sssp_distances(g, 0), out).ok

    def test_cdlp(self, name, request):
        g = graph_by_name(name, request)
        out = run_gas(g, "cdlp", {"iterations": 4})
        assert compare_exact(label_propagation(g, 4), out).ok

    def test_lcc(self, name, request):
        g = graph_by_name(name, request)
        out = run_gas(g, "lcc", {})
        ref = local_clustering_coefficient(g)
        assert compare_numeric(ref, out, rel_tol=1e-9, abs_tol=1e-12).ok


class TestSyncEngine:
    def test_partitioning_invariance(self, tiny_graph):
        """Results are identical regardless of the vertex cut used."""
        a = run_gas(tiny_graph, "bfs", {"source": 0}, ranks=2)
        b = run_gas(tiny_graph, "bfs", {"source": 0}, ranks=8)
        program = make_gas_program("bfs", {"source": 0}, tiny_graph)
        engine = SyncGasEngine(
            tiny_graph, random_vertex_cut(tiny_graph, 4), program)
        engine.run()
        c = engine.output()
        assert a == b == c

    def test_work_history_shape(self, tiny_graph):
        program = BfsGas(0)
        cut = greedy_vertex_cut(tiny_graph, 4)
        engine = SyncGasEngine(tiny_graph, cut, program)
        history = engine.run()
        assert engine.finished
        assert history[0].active == 1  # only the source
        assert all(len(w.gather_edges) == 4 for w in history)
        total_scatter = sum(sum(w.scatter_edges) for w in history)
        assert total_scatter > 0

    def test_step_after_finish_rejected(self, tiny_graph):
        engine = SyncGasEngine(
            tiny_graph, greedy_vertex_cut(tiny_graph, 2), BfsGas(0))
        engine.run()
        with pytest.raises(PlatformError):
            engine.step()

    def test_fixed_iteration_program_respects_bound(self, tiny_graph):
        program = make_gas_program("pagerank", {"iterations": 3}, tiny_graph)
        engine = SyncGasEngine(
            tiny_graph, greedy_vertex_cut(tiny_graph, 2), program)
        history = engine.run()
        assert len(history) == 3

    def test_master_of_isolated_vertex(self):
        g = Graph(5, [(0, 1)])
        engine = SyncGasEngine(g, greedy_vertex_cut(g, 2), BfsGas(0))
        assert 0 <= engine.master_of(4) < 2
        assert engine.replica_count(4) == 1

    def test_replica_syncs_counted(self, tiny_graph):
        program = make_gas_program("wcc", {}, tiny_graph)
        engine = SyncGasEngine(
            tiny_graph, greedy_vertex_cut(tiny_graph, 8), program)
        history = engine.run()
        assert sum(sum(w.replica_syncs) for w in history) > 0

    def test_factory_rejects_unknown(self, tiny_graph):
        with pytest.raises(PlatformError):
            make_gas_program("nope", {}, tiny_graph)

    def test_factory_validates_params(self, tiny_graph):
        with pytest.raises(PlatformError):
            make_gas_program("bfs", {"source": 10**7}, tiny_graph)
        with pytest.raises(PlatformError):
            make_gas_program("pagerank", {"iterations": -1}, tiny_graph)
        with pytest.raises(PlatformError):
            make_gas_program("pagerank", {"damping": 0.0}, tiny_graph)
        with pytest.raises(PlatformError):
            make_gas_program("cdlp", {"iterations": -3}, tiny_graph)
        with pytest.raises(PlatformError):
            make_gas_program("sssp", {"source": -1}, tiny_graph)
