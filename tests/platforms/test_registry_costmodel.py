"""Unit tests for the platform registry and cost models."""

import dataclasses

import pytest

from repro.errors import PlatformError
from repro.platforms.costmodel import (
    GiraphCostModel,
    PowerGraphCostModel,
    execution_jitter,
)
from repro.platforms.registry import (
    PLATFORM_TABLE,
    TABLE_COLUMNS,
    platform_info,
    table_rows,
)


class TestRegistry:
    def test_seven_platforms(self):
        assert len(PLATFORM_TABLE) == 7

    def test_lookup_case_insensitive(self):
        assert platform_info("giraph").name == "Giraph"
        assert platform_info("POWERGRAPH").name == "PowerGraph"

    def test_unknown_platform(self):
        with pytest.raises(PlatformError):
            platform_info("Spark")

    def test_evaluated_flags(self):
        evaluated = [p.name for p in PLATFORM_TABLE if p.evaluated]
        assert evaluated == ["Giraph", "PowerGraph"]

    def test_rows_align_with_columns(self):
        for row in table_rows():
            assert len(row) == len(TABLE_COLUMNS)

    def test_row_order_matches_paper(self):
        names = [row[0] for row in table_rows()]
        assert names == ["Giraph", "PowerGraph", "GraphMat", "PGX.D",
                         "OpenG", "TOTEM", "Hadoop"]

    def test_single_node_platforms(self):
        single = {p.name for p in PLATFORM_TABLE if not p.distributed}
        assert single == {"OpenG", "TOTEM"}


class TestCostModels:
    def test_defaults_valid(self):
        GiraphCostModel()
        PowerGraphCostModel()

    def test_giraph_rejects_nonpositive(self):
        with pytest.raises(PlatformError):
            GiraphCostModel(parse_byte_s=0.0)
        with pytest.raises(PlatformError):
            GiraphCostModel(message_byte=0)

    def test_powergraph_rejects_nonpositive(self):
        with pytest.raises(PlatformError):
            PowerGraphCostModel(parse_edge_s=-1.0)

    def test_frozen(self):
        model = GiraphCostModel()
        with pytest.raises(dataclasses.FrozenInstanceError):
            model.parse_byte_s = 1.0

    def test_powergraph_loader_dominates_design(self):
        """The structural property behind Figure 7: per-edge parse cost
        far exceeds per-edge processing cost."""
        cost = PowerGraphCostModel()
        assert cost.parse_edge_s > 5 * cost.gather_edge_s


class TestExecutionJitter:
    def test_deterministic(self):
        assert execution_jitter(1, 2, 0.1) == execution_jitter(1, 2, 0.1)

    def test_bounded_without_spikes(self):
        for worker in range(8):
            for step in range(20):
                factor = execution_jitter(worker, step, 0.1, gc_spike=0.0)
                assert 0.9 <= factor <= 1.1

    def test_zero_jitter_is_identity(self):
        assert execution_jitter(3, 4, 0.0) == 1.0

    def test_spikes_occur_somewhere(self):
        spiked = [
            execution_jitter(w, s, 0.0, gc_spike=0.5)
            for w in range(8) for s in range(30)
        ]
        assert max(spiked) == pytest.approx(1.5, abs=0.01)
        assert min(spiked) == 1.0

    def test_varies_across_workers(self):
        values = {execution_jitter(w, 0, 0.1) for w in range(8)}
        assert len(values) > 1

    def test_rejects_negative(self):
        with pytest.raises(PlatformError):
            execution_jitter(0, 0, -0.1)
