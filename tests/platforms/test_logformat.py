"""Unit tests for the GRANULA log line format."""

import pytest

from repro import logformat


class TestFormatLine:
    def test_canonical_field_order(self):
        line = logformat.format_line({
            "mission": "LoadGraph", "ts": "1.5", "uid": "op1",
            "event": "start", "job": "j1", "actor": "Master",
        })
        assert line.startswith("GRANULA ts=1.5 job=j1 event=start uid=op1")
        # Tail fields sorted alphabetically.
        assert line.endswith("actor=Master mission=LoadGraph")

    def test_values_quoted(self):
        line = logformat.format_line({"ts": "0", "value": "a b=c"})
        assert "a b=c" not in line
        parsed = logformat.parse_line(line)
        assert parsed["value"] == "a b=c"

    def test_deterministic(self):
        fields = {"ts": "1", "job": "x", "zeta": "1", "alpha": "2"}
        assert logformat.format_line(fields) == logformat.format_line(fields)


class TestParseLine:
    def test_roundtrip(self):
        fields = {"ts": "2.25", "job": "j", "event": "info",
                  "uid": "op9", "name": "Bytes", "value": "100"}
        assert logformat.parse_line(logformat.format_line(fields)) == fields

    def test_rejects_foreign_line(self):
        with pytest.raises(ValueError):
            logformat.parse_line("INFO something happened")

    def test_rejects_malformed_pair(self):
        with pytest.raises(ValueError):
            logformat.parse_line("GRANULA ts=1 garbage")

    def test_rejects_empty_key(self):
        with pytest.raises(ValueError):
            logformat.parse_line("GRANULA =value")

    def test_tolerates_extra_spaces(self):
        parsed = logformat.parse_line("GRANULA  ts=1  job=j ")
        assert parsed == {"ts": "1", "job": "j"}

    def test_strips_whitespace(self):
        parsed = logformat.parse_line("  GRANULA ts=1\n")
        assert parsed["ts"] == "1"


class TestIsGranulaLine:
    def test_positive(self):
        assert logformat.is_granula_line("GRANULA ts=1")
        assert logformat.is_granula_line("   GRANULA ts=1")

    def test_negative(self):
        assert not logformat.is_granula_line("GRANULARITY ts=1")
        assert not logformat.is_granula_line("2017-01-01 INFO start")
        assert not logformat.is_granula_line("")
