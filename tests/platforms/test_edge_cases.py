"""Engine edge cases: degenerate graphs and worker configurations."""

import pytest

from repro.graph.algorithms import bfs_levels, pagerank, weakly_connected_components
from repro.graph.graph import Graph
from repro.graph.validate import compare_exact, compare_numeric
from repro.platforms.base import JobRequest
from repro.platforms.gas.engine import PowerGraphPlatform
from repro.platforms.mapreduce.engine import HadoopPlatform
from repro.platforms.pregel.engine import GiraphPlatform

from tests.conftest import make_giraph_cluster, make_powergraph_cluster
from tests.platforms.test_mapreduce import make_hadoop_cluster

SINGLE = Graph(1, [])
EDGELESS = Graph(6, [])
SELF_LOOPS = Graph(4, [(0, 0), (0, 1), (1, 1), (1, 2), (3, 3)])
TWO_CLIQUES = Graph(
    6,
    [(i, j) for i in range(3) for j in range(3) if i != j]
    + [(i, j) for i in range(3, 6) for j in range(3, 6) if i != j],
)

CASES = {
    "single": SINGLE,
    "edgeless": EDGELESS,
    "self_loops": SELF_LOOPS,
    "two_cliques": TWO_CLIQUES,
}


def platforms_for(graph):
    giraph = GiraphPlatform(make_giraph_cluster())
    giraph.deploy_dataset("g", graph)
    powergraph = PowerGraphPlatform(make_powergraph_cluster())
    powergraph.deploy_dataset("g", graph)
    hadoop = HadoopPlatform(make_hadoop_cluster())
    hadoop.deploy_dataset("g", graph)
    return giraph, powergraph, hadoop


@pytest.mark.parametrize("name", list(CASES))
class TestDegenerateGraphs:
    def test_bfs_everywhere(self, name):
        graph = CASES[name]
        expected = bfs_levels(graph, 0)
        for platform in platforms_for(graph):
            result = platform.run_job(JobRequest(
                "bfs", "g", min(4, graph.num_vertices),
                params={"source": 0}))
            report = compare_exact(expected, result.output)
            assert report.ok, f"{platform.name}: {report.summary()}"

    def test_wcc_everywhere(self, name):
        graph = CASES[name]
        expected = weakly_connected_components(graph)
        for platform in platforms_for(graph):
            result = platform.run_job(JobRequest(
                "wcc", "g", min(4, graph.num_vertices)))
            report = compare_exact(expected, result.output)
            assert report.ok, f"{platform.name}: {report.summary()}"

    def test_pagerank_everywhere(self, name):
        graph = CASES[name]
        expected = pagerank(graph, iterations=5)
        for platform in platforms_for(graph):
            result = platform.run_job(JobRequest(
                "pagerank", "g", min(4, graph.num_vertices),
                params={"iterations": 5}))
            report = compare_numeric(expected, result.output,
                                     rel_tol=1e-9, abs_tol=1e-12)
            assert report.ok, f"{platform.name}: {report.summary()}"


class TestWorkerConfigurations:
    def test_more_workers_than_vertices(self):
        graph = Graph(3, [(0, 1), (1, 2)])
        platform = GiraphPlatform(make_giraph_cluster())
        platform.deploy_dataset("g", graph)
        result = platform.run_job(JobRequest(
            "bfs", "g", 8, params={"source": 0}))
        assert compare_exact(bfs_levels(graph, 0), result.output).ok

    def test_powergraph_more_ranks_than_edges(self):
        graph = Graph(3, [(0, 1)])
        platform = PowerGraphPlatform(make_powergraph_cluster())
        platform.deploy_dataset("g", graph)
        result = platform.run_job(JobRequest(
            "bfs", "g", 8, params={"source": 0}))
        assert compare_exact(bfs_levels(graph, 0), result.output).ok

    def test_archives_build_for_degenerate_runs(self):
        from repro.core.archive.builder import build_archive
        from repro.core.model.giraph_model import giraph_model
        from repro.core.monitor.session import MonitoringSession

        platform = GiraphPlatform(make_giraph_cluster())
        platform.deploy_dataset("g", EDGELESS)
        run = MonitoringSession(platform).run(JobRequest(
            "bfs", "g", 4, params={"source": 0}))
        archive, report = build_archive(run, giraph_model())
        assert report.unmodeled == []
        assert archive.makespan > 0
