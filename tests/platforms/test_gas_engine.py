"""Integration tests for the PowerGraph-like engine."""

import pytest

from repro.errors import PlatformError
from repro.graph.algorithms import bfs_levels
from repro.graph.validate import compare_exact
from repro.platforms.base import JobRequest
from repro.platforms.gas.engine import PowerGraphPlatform

from tests.conftest import make_powergraph_cluster


@pytest.fixture(scope="module")
def platform(tiny_graph):
    p = PowerGraphPlatform(make_powergraph_cluster())
    p.deploy_dataset("tiny", tiny_graph)
    return p


class TestDeployment:
    def test_dataset_on_shared_fs(self, platform):
        assert platform.cluster.shared_fs.exists("/data/tiny.el")

    def test_empty_name_rejected(self, platform, tiny_graph):
        with pytest.raises(PlatformError):
            platform.deploy_dataset("", tiny_graph)

    def test_unknown_dataset_rejected(self, platform):
        with pytest.raises(PlatformError):
            platform.run_job(JobRequest("bfs", "nope", 4))


class TestJobExecution:
    def test_bfs_output_correct(self, platform, tiny_graph):
        result = platform.run_job(JobRequest(
            "bfs", "tiny", 8, params={"source": 0}))
        assert compare_exact(bfs_levels(tiny_graph, 0), result.output).ok

    def test_deterministic_reruns(self, platform):
        a = platform.run_job(JobRequest("bfs", "tiny", 8,
                                        params={"source": 0},
                                        job_id="fixed"))
        b = platform.run_job(JobRequest("bfs", "tiny", 8,
                                        params={"source": 0},
                                        job_id="fixed"))
        assert a.makespan == b.makespan
        assert a.log_lines == b.log_lines

    def test_stats_populated(self, platform):
        result = platform.run_job(JobRequest(
            "bfs", "tiny", 8, params={"source": 0}))
        assert result.stats["iterations"] > 1
        assert result.stats["edges_parsed"] > 0
        assert result.stats["replication_factor"] >= 1.0
        assert result.stats["gather_edges"] > 0

    def test_worker_count_validated(self, platform):
        with pytest.raises(PlatformError):
            platform.run_job(JobRequest("bfs", "tiny", 0))
        with pytest.raises(PlatformError):
            platform.run_job(JobRequest("bfs", "tiny", 9))

    def test_single_rank(self, platform, tiny_graph):
        result = platform.run_job(JobRequest(
            "bfs", "tiny", 1, params={"source": 0}))
        assert compare_exact(bfs_levels(tiny_graph, 0), result.output).ok


class TestEmittedLog:
    @pytest.fixture(scope="class")
    def log(self, platform):
        return platform.run_job(JobRequest(
            "bfs", "tiny", 8, params={"source": 0})).log_lines

    def test_workflow_missions_present(self, log):
        text = "\n".join(log)
        for mission in ("PowerGraphJob", "Startup", "MpiStartup",
                        "LoadGraph", "StreamEdges", "FinalizeGraph",
                        "LocalFinalize", "ProcessGraph", "Iteration-0",
                        "Gather-0", "Apply-0", "Scatter-0",
                        "BarrierSync-0", "OffloadGraph", "WriteResults",
                        "Cleanup", "MpiFinalize"):
            assert f"mission={mission}" in text, mission

    def test_stream_is_rank0_only(self, log):
        stream_lines = [l for l in log if "mission=StreamEdges" in l]
        assert all("actor=Rank-0" in l for l in stream_lines)

    def test_per_rank_actors_present(self, log):
        text = "\n".join(log)
        for rank in range(8):
            assert f"actor=Rank-{rank}" in text

    def test_balanced_start_end(self, log):
        starts = sum("event=start" in l for l in log)
        ends = sum("event=end" in l for l in log)
        assert starts == ends > 0


class TestSequentialLoadBehaviour:
    def test_only_loader_busy_during_stream(self, platform):
        result = platform.run_job(JobRequest(
            "bfs", "tiny", 8, params={"source": 0}))
        nodes = platform.cluster.nodes
        # Find the StreamEdges window from the trace-free approach: the
        # loader node's stream tag.
        loader_cpu = nodes[0].cpu.by_tag().get("powergraph:stream", 0.0)
        assert loader_cpu > 0
        for node in nodes[1:]:
            assert "powergraph:stream" not in node.cpu.by_tag()
            assert node.cpu.by_tag().get("powergraph:idlewait", 0.0) > 0

    def test_all_ranks_finalize(self, platform):
        platform.run_job(JobRequest("bfs", "tiny", 8, params={"source": 0}))
        for node in platform.cluster.nodes:
            assert node.cpu.by_tag().get("powergraph:finalize", 0.0) > 0

    def test_load_slower_than_processing(self, platform):
        """Even at tiny scale the sequential load outweighs processing
        (the full Figure 5 dominance is asserted at experiment scale)."""
        result = platform.run_job(JobRequest(
            "bfs", "tiny", 8, params={"source": 0}))
        from repro.core.monitor.logparser import parse_log
        records, _ = parse_log(result.log_lines)

        def duration_of(mission):
            start = next(r for r in records
                         if r.is_start and r.mission == mission)
            end = next(r for r in records
                       if r.is_end and r.uid == start.uid)
            return end.timestamp - start.timestamp

        assert duration_of("LoadGraph") > duration_of("ProcessGraph")
        assert duration_of("StreamEdges") > 0
