"""Tests for the Hadoop-like MapReduce engine."""

import pytest

from repro.errors import PlatformError
from repro.graph.algorithms import bfs_levels, pagerank, weakly_connected_components
from repro.graph.generators import grid_graph, powerlaw_graph
from repro.graph.graph import Graph
from repro.graph.validate import compare_exact, compare_numeric
from repro.platforms.base import JobRequest
from repro.platforms.mapreduce.algorithms import make_mapreduce_round
from repro.platforms.mapreduce.api import Record
from repro.platforms.mapreduce.engine import HadoopPlatform
from repro.platforms.pregel.engine import GiraphPlatform

from tests.conftest import make_giraph_cluster
from repro.cluster.cluster import Cluster
from repro.cluster.node import das5_node


def make_hadoop_cluster():
    return Cluster([das5_node(f"node{320 + i}") for i in range(8)],
                   hdfs_block_size=1 << 16)


@pytest.fixture(scope="module")
def platform(tiny_graph):
    p = HadoopPlatform(make_hadoop_cluster())
    p.deploy_dataset("tiny", tiny_graph)
    return p


class TestRecord:
    def test_encoded_size_grows_with_state(self):
        assert Record(1, 123456).encoded_size() > Record(1, 0).encoded_size()


class TestAlgorithmsAgainstReference:
    GRAPHS = {
        "tiny": "tiny_graph",
        "powerlaw": powerlaw_graph(300, 1800, seed=8),
        "grid": grid_graph(10, 10),
        "disconnected": Graph(40, [(i, i + 1) for i in range(15)]),
    }

    def run_mr(self, graph, algorithm, params):
        platform = HadoopPlatform(make_hadoop_cluster())
        platform.deploy_dataset("g", graph)
        return platform.run_job(
            JobRequest(algorithm, "g", 8, params=params)).output

    def graph_by_name(self, name, request):
        g = self.GRAPHS[name]
        return request.getfixturevalue(g) if isinstance(g, str) else g

    @pytest.mark.parametrize("name", list(GRAPHS))
    def test_bfs(self, name, request):
        g = self.graph_by_name(name, request)
        out = self.run_mr(g, "bfs", {"source": 0})
        assert compare_exact(bfs_levels(g, 0), out).ok

    @pytest.mark.parametrize("name", list(GRAPHS))
    def test_pagerank(self, name, request):
        g = self.graph_by_name(name, request)
        out = self.run_mr(g, "pagerank", {"iterations": 6})
        ref = pagerank(g, iterations=6)
        assert compare_numeric(ref, out, rel_tol=1e-9, abs_tol=1e-12).ok

    @pytest.mark.parametrize("name", list(GRAPHS))
    def test_wcc(self, name, request):
        g = self.graph_by_name(name, request)
        out = self.run_mr(g, "wcc", {})
        assert compare_exact(weakly_connected_components(g), out).ok


class TestEngine:
    def test_deterministic(self, platform):
        a = platform.run_job(JobRequest("bfs", "tiny", 8,
                                        params={"source": 0}, job_id="x"))
        b = platform.run_job(JobRequest("bfs", "tiny", 8,
                                        params={"source": 0}, job_id="x"))
        assert a.makespan == b.makespan
        assert a.log_lines == b.log_lines

    def test_stats(self, platform):
        result = platform.run_job(JobRequest("bfs", "tiny", 8,
                                             params={"source": 0}))
        assert result.stats["rounds"] > 1
        assert result.stats["emissions"] > 0

    def test_log_missions(self, platform):
        result = platform.run_job(JobRequest("bfs", "tiny", 8,
                                             params={"source": 0}))
        text = "\n".join(result.log_lines)
        for mission in ("HadoopJob", "Startup", "LaunchContainers",
                        "MaterializeInput", "LocalMaterialize",
                        "MapReduceRound-0", "RoundSetup-0", "MapPhase-0",
                        "ShufflePhase-0", "ReducePhase-0",
                        "MaterializeState-0", "CollectOutput",
                        "ReleaseContainers"):
            assert f"mission={mission}" in text, mission

    def test_archive_with_model(self, platform):
        from repro.core.archive.builder import build_archive
        from repro.core.model.hadoop_model import hadoop_model
        from repro.core.monitor.session import MonitoringSession

        session = MonitoringSession(platform)
        run = session.run(JobRequest("bfs", "tiny", 8,
                                     params={"source": 0}))
        archive, report = build_archive(run, hadoop_model())
        assert report.unmodeled == []
        assert archive.platform == "Hadoop"

    def test_unknown_algorithm(self, platform, tiny_graph):
        with pytest.raises(PlatformError):
            platform.run_job(JobRequest("lcc", "tiny", 8))
        with pytest.raises(PlatformError):
            make_mapreduce_round("sssp", {}, tiny_graph)

    def test_bad_source(self, platform):
        with pytest.raises(PlatformError):
            platform.run_job(JobRequest("bfs", "tiny", 8,
                                        params={"source": -1}))

    def test_bad_pagerank_params(self, tiny_graph):
        with pytest.raises(PlatformError):
            make_mapreduce_round("pagerank", {"iterations": -1}, tiny_graph)
        with pytest.raises(PlatformError):
            make_mapreduce_round("pagerank", {"damping": 1.5}, tiny_graph)


class TestPenalty:
    def test_slower_than_giraph_on_same_workload(self, tiny_graph):
        """The intro's claim, at test scale: Hadoop pays a clear penalty."""
        hadoop = HadoopPlatform(make_hadoop_cluster())
        hadoop.deploy_dataset("g", tiny_graph)
        giraph = GiraphPlatform(make_giraph_cluster())
        giraph.deploy_dataset("g", tiny_graph)
        h = hadoop.run_job(JobRequest("bfs", "g", 8, params={"source": 0}))
        g = giraph.run_job(JobRequest("bfs", "g", 8, params={"source": 0}))
        assert h.makespan > 1.5 * g.makespan

    def test_full_scan_amplification(self, platform, tiny_graph):
        """Every round scans all vertices (no frontier)."""
        result = platform.run_job(JobRequest("bfs", "tiny", 8,
                                             params={"source": 0}))
        from repro.core.monitor.logparser import parse_log
        records, _ = parse_log(result.log_lines)
        scanned = sum(
            int(r.info_value) for r in records
            if r.is_info and r.info_name == "RecordsScanned"
        )
        rounds = result.stats["rounds"]
        assert scanned == rounds * tiny_graph.num_vertices
