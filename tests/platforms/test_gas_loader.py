"""Unit tests for the PowerGraph sequential-load planner."""

import pytest

from repro.cluster.filesystem import SharedFileSystem, StorageModel
from repro.cluster.network import das5_network
from repro.errors import FileSystemError
from repro.graph.edgelist import EdgeList
from repro.graph.generators import powerlaw_graph
from repro.graph.partition.vertexcut import greedy_vertex_cut
from repro.platforms.costmodel import PowerGraphCostModel
from repro.platforms.gas.loader import plan_sequential_load


@pytest.fixture(scope="module")
def setup():
    graph = powerlaw_graph(600, 3600, seed=4)
    edge_list = EdgeList.from_graph(graph)
    shared = SharedFileSystem(StorageModel(read_bps=1e8, seek_s=0.001))
    shared.put("/g.el", edge_list.text_size_bytes(), payload=edge_list)
    cut = greedy_vertex_cut(graph, 4)
    return shared, edge_list, cut


class TestPlanSequentialLoad:
    def test_stream_time_has_read_and_parse(self, setup):
        shared, edge_list, cut = setup
        cost = PowerGraphCostModel()
        plan = plan_sequential_load(shared, "/g.el", edge_list, cut,
                                    das5_network(), cost)
        parse_only = edge_list.num_edges * cost.parse_edge_s
        assert plan.stream_s > parse_only
        assert plan.bytes_read == edge_list.text_size_bytes()
        assert plan.edges_parsed == edge_list.num_edges

    def test_finalize_per_rank(self, setup):
        shared, edge_list, cut = setup
        plan = plan_sequential_load(shared, "/g.el", edge_list, cut,
                                    das5_network(), PowerGraphCostModel())
        assert len(plan.finalize_s) == cut.parts
        assert all(f >= 0 for f in plan.finalize_s)

    def test_finalize_tracks_edge_counts(self, setup):
        shared, edge_list, cut = setup
        plan = plan_sequential_load(shared, "/g.el", edge_list, cut,
                                    das5_network(), PowerGraphCostModel())
        counts = cut.edge_counts()
        # Ranks with more edges finalize no faster than emptier ranks.
        pairs = sorted(zip(counts, plan.finalize_s))
        durations = [d for _c, d in pairs]
        # Tolerate the rank-0 local-transfer discount.
        assert durations[-1] >= durations[0]

    def test_stream_scales_with_parse_cost(self, setup):
        shared, edge_list, cut = setup
        cheap = plan_sequential_load(
            shared, "/g.el", edge_list, cut, das5_network(),
            PowerGraphCostModel(parse_edge_s=1e-5))
        expensive = plan_sequential_load(
            shared, "/g.el", edge_list, cut, das5_network(),
            PowerGraphCostModel(parse_edge_s=1e-3))
        assert expensive.stream_s > 10 * cheap.stream_s

    def test_missing_file_raises(self, setup):
        shared, edge_list, cut = setup
        with pytest.raises(FileSystemError):
            plan_sequential_load(shared, "/missing.el", edge_list, cut,
                                 das5_network(), PowerGraphCostModel())
