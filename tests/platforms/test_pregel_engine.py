"""Integration tests for the Giraph-like engine."""

import pytest

from repro.errors import PlatformError
from repro.graph.algorithms import bfs_levels
from repro.graph.validate import compare_exact
from repro.platforms.base import JobRequest
from repro.platforms.pregel.engine import GiraphPlatform

from tests.conftest import make_giraph_cluster


@pytest.fixture(scope="module")
def platform(tiny_graph):
    p = GiraphPlatform(make_giraph_cluster())
    p.deploy_dataset("tiny", tiny_graph)
    return p


class TestDeployment:
    def test_dataset_staged_in_hdfs(self, platform):
        assert platform.cluster.hdfs.exists("/giraph/input/tiny.vs")
        assert platform.has_dataset("tiny")

    def test_empty_name_rejected(self, platform, tiny_graph):
        with pytest.raises(PlatformError):
            platform.deploy_dataset("", tiny_graph)

    def test_unknown_dataset_rejected(self, platform):
        with pytest.raises(PlatformError):
            platform.run_job(JobRequest("bfs", "nope", 4))


class TestJobExecution:
    def test_bfs_output_correct(self, platform, tiny_graph):
        result = platform.run_job(JobRequest(
            "bfs", "tiny", 8, params={"source": 0}))
        assert compare_exact(bfs_levels(tiny_graph, 0), result.output).ok

    def test_makespan_positive(self, platform):
        result = platform.run_job(JobRequest(
            "bfs", "tiny", 8, params={"source": 0}))
        assert result.makespan > 0
        assert result.finished_at > result.started_at

    def test_deterministic_reruns(self, platform):
        a = platform.run_job(JobRequest("bfs", "tiny", 8,
                                        params={"source": 0},
                                        job_id="fixed"))
        b = platform.run_job(JobRequest("bfs", "tiny", 8,
                                        params={"source": 0},
                                        job_id="fixed"))
        assert a.makespan == b.makespan
        assert a.log_lines == b.log_lines
        assert a.output == b.output

    def test_job_ids_unique(self, platform):
        a = platform.run_job(JobRequest("bfs", "tiny", 4,
                                        params={"source": 0}))
        b = platform.run_job(JobRequest("bfs", "tiny", 4,
                                        params={"source": 0}))
        assert a.job_id != b.job_id

    def test_explicit_job_id_respected(self, platform):
        result = platform.run_job(JobRequest(
            "bfs", "tiny", 4, params={"source": 0}, job_id="my-job"))
        assert result.job_id == "my-job"
        assert all("job=my-job" in l for l in result.log_lines)

    def test_stats_populated(self, platform):
        result = platform.run_job(JobRequest(
            "bfs", "tiny", 8, params={"source": 0}))
        assert result.stats["supersteps"] > 1
        assert result.stats["messages"] > 0
        assert result.stats["bytes_read"] > 0
        assert result.stats["offload_bytes"] > 0

    def test_worker_count_validated(self, platform):
        with pytest.raises(PlatformError):
            platform.run_job(JobRequest("bfs", "tiny", 0))
        with pytest.raises(PlatformError):
            platform.run_job(JobRequest("bfs", "tiny", 99))

    def test_unknown_algorithm_rejected(self, platform):
        with pytest.raises(PlatformError):
            platform.run_job(JobRequest("quicksort", "tiny", 4))

    def test_bad_source_rejected(self, platform):
        with pytest.raises(PlatformError):
            platform.run_job(JobRequest("bfs", "tiny", 4,
                                        params={"source": -1}))

    def test_fewer_workers_than_nodes(self, platform, tiny_graph):
        result = platform.run_job(JobRequest(
            "bfs", "tiny", 3, params={"source": 0}))
        assert compare_exact(bfs_levels(tiny_graph, 0), result.output).ok

    def test_single_worker(self, platform, tiny_graph):
        result = platform.run_job(JobRequest(
            "bfs", "tiny", 1, params={"source": 0}))
        assert compare_exact(bfs_levels(tiny_graph, 0), result.output).ok


class TestEmittedLog:
    @pytest.fixture(scope="class")
    def log(self, platform):
        result = platform.run_job(JobRequest(
            "bfs", "tiny", 8, params={"source": 0}))
        return result.log_lines

    def test_all_lines_granula(self, log):
        assert all(line.startswith("GRANULA ") for line in log)

    def test_balanced_start_end(self, log):
        starts = sum("event=start" in l for l in log)
        ends = sum("event=end" in l for l in log)
        assert starts == ends > 0

    def test_workflow_missions_present(self, log):
        text = "\n".join(log)
        for mission in ("GiraphJob", "Startup", "JobStartup",
                        "LaunchWorkers", "LocalStartup", "LoadGraph",
                        "LoadHdfsData", "LocalLoad", "ProcessGraph",
                        "Superstep-0", "LocalSuperstep-0", "PreStep-0",
                        "Compute-0", "Message-0", "PostStep-0",
                        "SyncZookeeper-0", "OffloadGraph",
                        "OffloadHdfsData", "LocalOffload", "Cleanup",
                        "JobCleanup", "AbortWorkers", "ClientCleanup",
                        "ServerCleanup", "ZkCleanup"):
            assert f"mission={mission}" in text, mission

    def test_per_worker_actors_present(self, log):
        text = "\n".join(log)
        for wid in range(1, 9):
            assert f"actor=Worker-{wid}" in text

    def test_info_records_present(self, log):
        text = "\n".join(log)
        for name in ("ActiveVertices", "MessagesReceived", "MessagesSent",
                     "BytesRead", "TotalBytes", "BytesWritten"):
            assert f"name={name}" in text, name

    def test_timestamps_monotone_per_operation(self, log):
        from repro.core.monitor.logparser import parse_log
        records, _bad = parse_log(log)
        starts = {r.uid: r.timestamp for r in records if r.is_start}
        for record in records:
            if record.is_end:
                assert record.timestamp >= starts[record.uid]


class TestResourceUsage:
    def test_cpu_charged_to_nodes(self, platform):
        result = platform.run_job(JobRequest(
            "bfs", "tiny", 8, params={"source": 0}))
        for node in platform.cluster.nodes:
            cpu = node.cpu.cpu_seconds_between(
                result.started_at, result.finished_at)
            assert cpu > 0

    def test_memory_released_after_job(self, platform):
        platform.run_job(JobRequest("bfs", "tiny", 8, params={"source": 0}))
        assert all(n.memory_used == 0 for n in platform.cluster.nodes)

    def test_phase_cpu_tags_recorded(self, platform):
        """Every workflow phase charges CPU under its own tag; the
        load-is-heaviest property is scale-dependent and asserted at
        experiment scale by the Figure 6 driver."""
        platform.run_job(JobRequest("bfs", "tiny", 8, params={"source": 0}))
        tags = {}
        for node in platform.cluster.nodes:
            for tag, cpu in node.cpu.by_tag().items():
                tags[tag] = tags.get(tag, 0.0) + cpu
        for tag in ("giraph:load", "giraph:compute", "giraph:localstartup",
                    "giraph:barrier", "giraph:offload", "giraph:cleanup"):
            assert tags.get(tag, 0.0) > 0.0, tag
        # Load runs at a far higher utilization level than the
        # latency-bound submit phase.
        assert tags["giraph:load"] > tags["giraph:submit"]
