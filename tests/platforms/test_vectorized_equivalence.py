"""Scalar-vs-vectorized equivalence for the simulated execution backends.

The vectorized CSR backends must be *observationally invisible*: for
every supported program, a run in ``vectorized`` mode must produce the
same outputs, the same per-worker/per-rank work counts (hence the same
simulated timestamps and log lines), and byte-identical archives as the
scalar reference path.  These tests pin that contract with
property-based random graphs, fault-plan runs, and full-pipeline
archive comparisons, plus unit coverage for the shared numpy fold
primitives and the partitioner fast paths.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.archive.serialize import archive_to_json
from repro.errors import PlatformError, ReproError
from repro.graph.graph import Graph
from repro.graph.partition.hash_partition import vertex_hash
from repro.graph.partition.vertexcut import (
    _greedy_vertex_cut_reference,
    greedy_vertex_cut,
    random_vertex_cut,
)
from repro.platforms.base import JobRequest, resolve_engine_mode
from repro.platforms.faults import FaultPlan
from repro.platforms.gas.algorithms import BfsGas, make_gas_program
from repro.platforms.gas.engine import PowerGraphPlatform
from repro.platforms.gas.vectorized import gas_kernel_class
from repro.platforms.pregel.algorithms import BfsProgram, make_pregel_program
from repro.platforms.pregel.engine import GiraphPlatform
from repro.platforms.pregel.vectorized import pregel_kernel_class
from repro.platforms.vecops import (
    FOLD_CHUNK,
    expand_positions,
    fold_add,
    group_sizes,
    group_starts,
    segmented_fold_add,
)
from repro.workloads.runner import WorkloadRunner
from repro.workloads.spec import WorkloadSpec

from tests.conftest import make_giraph_cluster, make_powergraph_cluster

_PLATFORMS = {
    "Giraph": (GiraphPlatform, make_giraph_cluster),
    "PowerGraph": (PowerGraphPlatform, make_powergraph_cluster),
}

#: Every program with a vectorized kernel, with non-trivial parameters.
_CASES = [
    ("bfs", {"source": 0}),
    ("pagerank", {"iterations": 6}),
    ("pagerank", {"iterations": 40, "tolerance": 1e-3}),
    ("wcc", {}),
    ("sssp", {"source": 0}),
    ("cdlp", {"iterations": 4}),
]


@st.composite
def small_graphs(draw):
    """Random small directed graphs (self-loops and duplicates allowed)."""
    n = draw(st.integers(2, 24))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=3 * n,
        )
    )
    return Graph(n, edges)


def _fingerprint(platform_name, mode, graph, algo, params,
                 workers=4, faults=None):
    """Everything observable about one run, in comparable form."""
    platform_cls, make_cluster = _PLATFORMS[platform_name]
    platform = platform_cls(make_cluster(), engine_mode=mode)
    platform.deploy_dataset("g", graph)
    platform.inject_faults(faults)
    try:
        result = platform.run_job(
            JobRequest(algo, "g", workers, params=params, job_id="eq")
        )
    finally:
        platform.inject_faults(None)
    assert platform.last_engine_path == mode
    return (
        result.log_lines,
        sorted((k, repr(v)) for k, v in result.stats.items()),
        {k: repr(v) for k, v in result.output.items()},
        repr(result.started_at),
        repr(result.finished_at),
    )


class TestEngineEquivalence:
    """Both engines, all five kernels, random graphs and worker counts."""

    @given(graph=small_graphs(), case=st.sampled_from(_CASES),
           workers=st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_giraph_runs_identically(self, graph, case, workers):
        algo, params = case
        assert (
            _fingerprint("Giraph", "scalar", graph, algo, params, workers)
            == _fingerprint("Giraph", "vectorized", graph, algo, params,
                            workers)
        )

    @given(graph=small_graphs(), case=st.sampled_from(_CASES),
           workers=st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_powergraph_runs_identically(self, graph, case, workers):
        algo, params = case
        assert (
            _fingerprint("PowerGraph", "scalar", graph, algo, params,
                         workers)
            == _fingerprint("PowerGraph", "vectorized", graph, algo, params,
                            workers)
        )

    def test_zero_iteration_jobs_identical(self, line_graph):
        for platform_name in _PLATFORMS:
            for algo in ("pagerank", "cdlp"):
                params = {"iterations": 0}
                assert (
                    _fingerprint(platform_name, "scalar", line_graph, algo,
                                 params)
                    == _fingerprint(platform_name, "vectorized", line_graph,
                                    algo, params)
                )


class TestFaultEquivalence:
    """Fault hooks observe identical work counts on both paths."""

    _PLANS = [
        FaultPlan(crash_worker=1, crash_superstep=2),
        FaultPlan(crash_worker=2, crash_superstep=3, checkpoint_interval=2),
    ]

    @pytest.mark.parametrize("platform_name,algo,params", [
        ("Giraph", "bfs", {"source": 0}),
        ("Giraph", "pagerank", {}),
        ("PowerGraph", "bfs", {"source": 0}),
        ("PowerGraph", "pagerank", {}),
    ])
    def test_identical_under_faults(self, tiny_graph, platform_name, algo,
                                    params):
        for plan in self._PLANS:
            assert (
                _fingerprint(platform_name, "scalar", tiny_graph, algo,
                             params, workers=5, faults=plan)
                == _fingerprint(platform_name, "vectorized", tiny_graph,
                                algo, params, workers=5, faults=plan)
            )

    def test_identical_under_slow_node(self, tiny_graph):
        for platform_name in _PLATFORMS:
            platform_cls, make_cluster = _PLATFORMS[platform_name]
            node = sorted(make_cluster().node_names)[1]
            plan = FaultPlan(slow_nodes={node: 2.5})
            assert (
                _fingerprint(platform_name, "scalar", tiny_graph, "bfs",
                             {"source": 0}, workers=5, faults=plan)
                == _fingerprint(platform_name, "vectorized", tiny_graph,
                                "bfs", {"source": 0}, workers=5, faults=plan)
            )


class TestArchiveEquivalence:
    """Full pipeline: serialized archives are byte-identical."""

    @pytest.mark.parametrize("platform_name", ["Giraph", "PowerGraph"])
    @pytest.mark.parametrize(
        "algo", ["bfs", "pagerank", "wcc", "sssp", "cdlp"])
    def test_archive_bytes_identical(self, platform_name, algo):
        blobs = {}
        for mode in ("scalar", "vectorized"):
            runner = WorkloadRunner(n_nodes=8, engine_mode=mode)
            spec = WorkloadSpec(platform_name, algo, "dg-tiny", workers=4)
            iteration = runner.run(spec)
            assert runner.platform(platform_name).last_engine_path == mode
            blobs[mode] = archive_to_json(iteration.archive)
        assert blobs["scalar"] == blobs["vectorized"]


class TestDispatch:
    """Mode selection: auto falls back, forced vectorized demands a kernel."""

    def test_lcc_has_no_kernel(self, line_graph):
        assert pregel_kernel_class(
            make_pregel_program("lcc", {}, line_graph)) is None
        assert gas_kernel_class(
            make_gas_program("lcc", {}, line_graph)) is None

    def test_subclasses_stay_scalar(self):
        class TracingBfsProgram(BfsProgram):
            pass

        class TracingBfsGas(BfsGas):
            pass

        assert pregel_kernel_class(TracingBfsProgram(0)) is None
        assert gas_kernel_class(TracingBfsGas(0)) is None

    def test_custom_weight_stays_scalar(self, line_graph):
        params = {"source": 0, "weight": lambda u, v: 1.0}
        assert pregel_kernel_class(
            make_pregel_program("sssp", params, line_graph)) is None
        assert gas_kernel_class(
            make_gas_program("sssp", params, line_graph)) is None

    def test_disabled_combiner_stays_scalar(self, line_graph):
        program = make_pregel_program(
            "bfs", {"source": 0, "combiner": False}, line_graph)
        assert pregel_kernel_class(program) is None

    @pytest.mark.parametrize("platform_name", ["Giraph", "PowerGraph"])
    def test_forced_vectorized_rejects_lcc(self, platform_name, line_graph):
        platform_cls, make_cluster = _PLATFORMS[platform_name]
        platform = platform_cls(make_cluster(), engine_mode="vectorized")
        platform.deploy_dataset("g", line_graph)
        with pytest.raises(PlatformError, match="no vectorized kernel"):
            platform.run_job(JobRequest("lcc", "g", 4))

    def test_auto_falls_back_for_lcc(self, line_graph):
        platform = GiraphPlatform(make_giraph_cluster(), engine_mode="auto")
        platform.deploy_dataset("g", line_graph)
        platform.run_job(JobRequest("lcc", "g", 4))
        assert platform.last_engine_path == "scalar"

    def test_resolve_rejects_unknown_mode(self):
        with pytest.raises(PlatformError):
            resolve_engine_mode("turbo", True, "Giraph", "bfs")

    def test_runner_rejects_unknown_mode(self):
        with pytest.raises(ReproError):
            WorkloadRunner(engine_mode="turbo")


class TestVecops:
    """The shared numpy primitives reproduce Python left folds exactly."""

    @given(st.lists(st.floats(allow_nan=False, width=64), max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_fold_add_matches_left_fold(self, xs):
        acc = 0.0
        for x in xs:
            acc += x
        # repr-compare so inf - inf = nan counts as equal on both paths.
        assert repr(fold_add(np.asarray(xs, dtype=np.float64))) == repr(acc)

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_segmented_fold_matches_per_segment_fold(self, data):
        # Segment lengths straddle FOLD_CHUNK so both the lockstep and
        # the per-hub cumsum paths are exercised.
        lens = data.draw(st.lists(
            st.integers(0, FOLD_CHUNK + 8), min_size=1, max_size=10))
        values = data.draw(st.lists(
            st.floats(allow_nan=False, allow_infinity=False,
                      min_value=-1e6, max_value=1e6, width=64),
            min_size=sum(lens), max_size=sum(lens)))
        arr = np.asarray(values, dtype=np.float64)
        starts = np.concatenate(
            ([0], np.cumsum(lens)[:-1])).astype(np.int64)
        out = segmented_fold_add(arr, starts)
        offset = 0
        for i, length in enumerate(lens):
            acc = 0.0
            for x in values[offset:offset + length]:
                acc += x
            assert out[i] == acc
            offset += length

    def test_group_starts_and_sizes(self):
        keys = np.array([3, 3, 5, 9, 9, 9], dtype=np.int64)
        starts = group_starts(keys)
        assert starts.tolist() == [0, 2, 3]
        assert group_sizes(starts, len(keys)).tolist() == [2, 1, 3]
        assert group_starts(np.empty(0, dtype=np.int64)).tolist() == []

    def test_expand_positions_enumerates_slots(self):
        deg = np.array([2, 0, 3, 1], dtype=np.int64)
        indptr = np.array([0, 2, 2, 5, 6], dtype=np.int64)
        sel = np.array([2, 0, 1], dtype=np.int64)
        pos, seg_starts, nz = expand_positions(indptr, deg, sel)
        assert pos.tolist() == [2, 3, 4, 0, 1]
        assert seg_starts.tolist() == [0, 3]
        assert nz.tolist() == [True, True, False]

    def test_expand_positions_empty_selection(self):
        deg = np.array([1], dtype=np.int64)
        indptr = np.array([0, 1], dtype=np.int64)
        pos, seg_starts, nz = expand_positions(
            indptr, deg, np.empty(0, dtype=np.int64))
        assert len(pos) == 0 and len(seg_starts) == 0 and len(nz) == 0


class TestPartitionerFastPaths:
    """The rewritten vertex-cut builders match their scalar oracles."""

    @given(graph=small_graphs(), parts=st.integers(1, 6),
           slack=st.sampled_from([0.0, 0.1, 0.5]))
    @settings(max_examples=30, deadline=None)
    def test_greedy_bitmask_matches_reference(self, graph, parts, slack):
        fast = greedy_vertex_cut(graph, parts, balance_slack=slack)
        ref = _greedy_vertex_cut_reference(graph, parts, balance_slack=slack)
        assert fast.edge_assignment == ref.edge_assignment
        assert fast.replicas == ref.replicas
        assert fast.masters == ref.masters

    @given(graph=small_graphs(), parts=st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_random_cut_matches_scalar_hash(self, graph, parts):
        cut = random_vertex_cut(graph, parts)
        for (src, dst), part in zip(cut.edges, cut.edge_assignment):
            expected = (
                vertex_hash(src) ^ vertex_hash(dst + 0x9E3779B9)
            ) % parts
            assert part == expected

    @given(graph=small_graphs(), parts=st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_edge_counts_agree_with_assignment(self, graph, parts):
        cut = random_vertex_cut(graph, parts)
        counts = [0] * parts
        for p in cut.edge_assignment:
            counts[p] += 1
        assert cut.edge_counts() == counts
