"""Tests for the asynchronous GAS engine and the ingress option."""

import pytest

from repro.errors import PlatformError
from repro.graph.algorithms import (
    bfs_levels,
    sssp_distances,
    weakly_connected_components,
)
from repro.graph.generators import powerlaw_graph
from repro.graph.partition.vertexcut import greedy_vertex_cut
from repro.graph.validate import compare_exact, compare_numeric
from repro.platforms.base import JobRequest
from repro.platforms.gas.algorithms import make_gas_program
from repro.platforms.gas.async_engine import AsyncGasEngine
from repro.platforms.gas.engine import PowerGraphPlatform
from repro.platforms.gas.sync_engine import SyncGasEngine

from tests.conftest import make_powergraph_cluster


def run_async(graph, algorithm, params, ranks=4):
    program = make_gas_program(algorithm, params, graph)
    engine = AsyncGasEngine(graph, greedy_vertex_cut(graph, ranks), program)
    stats = engine.run()
    return engine.output(), stats


class TestAsyncCorrectness:
    def test_bfs(self, tiny_graph):
        out, _stats = run_async(tiny_graph, "bfs", {"source": 0})
        assert compare_exact(bfs_levels(tiny_graph, 0), out).ok

    def test_sssp(self, tiny_graph):
        out, _stats = run_async(tiny_graph, "sssp", {"source": 0})
        assert compare_numeric(sssp_distances(tiny_graph, 0), out).ok

    def test_wcc(self, tiny_graph):
        out, _stats = run_async(tiny_graph, "wcc", {})
        assert compare_exact(weakly_connected_components(tiny_graph), out).ok

    def test_powerlaw_graph(self):
        g = powerlaw_graph(400, 2400, seed=9)
        out, _stats = run_async(g, "sssp", {"source": 0})
        assert compare_numeric(sssp_distances(g, 0), out).ok

    def test_agrees_with_sync_engine(self, tiny_graph):
        async_out, _ = run_async(tiny_graph, "bfs", {"source": 0})
        program = make_gas_program("bfs", {"source": 0}, tiny_graph)
        sync = SyncGasEngine(tiny_graph,
                             greedy_vertex_cut(tiny_graph, 4), program)
        sync.run()
        assert async_out == sync.output()


class TestAsyncEngineBehaviour:
    def test_fixed_round_programs_rejected(self, tiny_graph):
        program = make_gas_program("pagerank", {"iterations": 5}, tiny_graph)
        with pytest.raises(PlatformError):
            AsyncGasEngine(tiny_graph,
                           greedy_vertex_cut(tiny_graph, 2), program)

    def test_stats_populated(self, tiny_graph):
        _out, stats = run_async(tiny_graph, "bfs", {"source": 0})
        assert stats.applies > 0
        assert stats.gather_edges > 0
        assert stats.scatter_edges > 0
        assert stats.activations >= stats.applies
        assert stats.locks >= stats.applies

    def test_deterministic(self, tiny_graph):
        a_out, a_stats = run_async(tiny_graph, "sssp", {"source": 0})
        b_out, b_stats = run_async(tiny_graph, "sssp", {"source": 0})
        assert a_out == b_out
        assert a_stats == b_stats

    def test_apply_bound_enforced(self, tiny_graph):
        program = make_gas_program("bfs", {"source": 0}, tiny_graph)
        engine = AsyncGasEngine(tiny_graph,
                                greedy_vertex_cut(tiny_graph, 2), program)
        with pytest.raises(PlatformError):
            engine.run(max_applies=3)

    def test_fewer_applies_than_sync_for_sssp(self, small_graph):
        """The PowerGraph claim: async converges with less redundant
        work on convergence-driven algorithms."""
        _out, async_stats = run_async(small_graph, "sssp", {"source": 0},
                                      ranks=8)
        program = make_gas_program("sssp", {"source": 0}, small_graph)
        sync = SyncGasEngine(small_graph,
                             greedy_vertex_cut(small_graph, 8), program)
        history = sync.run()
        sync_applies = sum(sum(w.apply_vertices) for w in history)
        assert async_stats.applies < sync_applies


class TestIngressOption:
    def test_random_ingress_runs_correctly(self, tiny_graph):
        platform = PowerGraphPlatform(make_powergraph_cluster(),
                                      ingress="random")
        platform.deploy_dataset("tiny", tiny_graph)
        result = platform.run_job(JobRequest("bfs", "tiny", 8,
                                             params={"source": 0}))
        assert compare_exact(bfs_levels(tiny_graph, 0), result.output).ok

    def test_random_ingress_higher_replication(self, tiny_graph):
        greedy = PowerGraphPlatform(make_powergraph_cluster(),
                                    ingress="greedy")
        greedy.deploy_dataset("tiny", tiny_graph)
        rand = PowerGraphPlatform(make_powergraph_cluster(),
                                  ingress="random")
        rand.deploy_dataset("tiny", tiny_graph)
        request = JobRequest("bfs", "tiny", 8, params={"source": 0})
        g_rf = greedy.run_job(request).stats["replication_factor"]
        r_rf = rand.run_job(request).stats["replication_factor"]
        assert r_rf > g_rf

    def test_unknown_ingress_rejected(self):
        with pytest.raises(PlatformError):
            PowerGraphPlatform(make_powergraph_cluster(), ingress="magic")


class TestCombinerToggle:
    def test_no_combiner_increases_wire_messages(self, tiny_graph):
        from repro.platforms.pregel.engine import GiraphPlatform
        from tests.conftest import make_giraph_cluster

        platform = GiraphPlatform(make_giraph_cluster())
        platform.deploy_dataset("tiny", tiny_graph)
        with_combiner = platform.run_job(JobRequest(
            "bfs", "tiny", 8, params={"source": 0}))
        without = platform.run_job(JobRequest(
            "bfs", "tiny", 8, params={"source": 0, "combiner": False}))
        # Same answer, same logical messages, but longer runtime without
        # sender-side combining (more bytes hit the wire).
        assert with_combiner.output == without.output
        assert without.makespan >= with_combiner.makespan
