"""Tests for fault injection in the Giraph engine."""

import pytest

from repro.errors import PlatformError
from repro.graph.algorithms import bfs_levels
from repro.graph.validate import compare_exact
from repro.platforms.base import JobRequest
from repro.platforms.faults import FaultPlan
from repro.platforms.pregel.engine import GiraphPlatform

from tests.conftest import make_giraph_cluster


@pytest.fixture()
def platform(tiny_graph):
    p = GiraphPlatform(make_giraph_cluster())
    p.deploy_dataset("tiny", tiny_graph)
    return p


REQUEST = JobRequest("bfs", "tiny", 8, params={"source": 0}, job_id="f")


class TestFaultPlan:
    def test_valid_plans(self):
        FaultPlan()
        FaultPlan(slow_nodes={"n1": 2.0})
        FaultPlan(crash_worker=1, crash_superstep=2)

    def test_slow_factor_lookup(self):
        plan = FaultPlan(slow_nodes={"n1": 3.0})
        assert plan.slow_factor("n1") == 3.0
        assert plan.slow_factor("other") == 1.0

    def test_crashes_at(self):
        plan = FaultPlan(crash_worker=1, crash_superstep=2)
        assert plan.crashes_at(1, 2)
        assert not plan.crashes_at(1, 3)
        assert not plan.crashes_at(0, 2)

    def test_rejects_non_slowing_factor(self):
        with pytest.raises(PlatformError):
            FaultPlan(slow_nodes={"n1": 1.0})
        with pytest.raises(PlatformError):
            FaultPlan(slow_nodes={"n1": 0.5})

    def test_rejects_partial_crash_spec(self):
        with pytest.raises(PlatformError):
            FaultPlan(crash_worker=1)
        with pytest.raises(PlatformError):
            FaultPlan(crash_superstep=2)

    def test_rejects_negative_indices(self):
        with pytest.raises(PlatformError):
            FaultPlan(crash_worker=-1, crash_superstep=0)
        with pytest.raises(PlatformError):
            FaultPlan(crash_worker=0, crash_superstep=-1)

    def test_rejects_bad_recovery(self):
        with pytest.raises(PlatformError):
            FaultPlan(crash_worker=0, crash_superstep=0, recovery_s=0.0)


class TestSlowNode:
    def test_slow_node_extends_makespan(self, platform):
        healthy = platform.run_job(REQUEST)
        slow_node = platform.cluster.node_names[0]
        platform.inject_faults(FaultPlan(slow_nodes={slow_node: 3.0}))
        degraded = platform.run_job(REQUEST)
        assert degraded.makespan > healthy.makespan

    def test_output_unchanged(self, platform, tiny_graph):
        platform.inject_faults(FaultPlan(
            slow_nodes={platform.cluster.node_names[1]: 2.5}))
        result = platform.run_job(REQUEST)
        assert compare_exact(bfs_levels(tiny_graph, 0), result.output).ok

    def test_only_target_node_slowed(self, platform):
        """The slow node's compute CPU time rises; others stay put."""
        healthy = platform.run_job(REQUEST)
        healthy_cpu = {
            n.name: n.cpu.by_tag().get("giraph:compute", 0.0)
            for n in platform.cluster.nodes
        }
        slow_node = platform.cluster.node_names[2]
        platform.inject_faults(FaultPlan(slow_nodes={slow_node: 3.0}))
        platform.run_job(REQUEST)
        degraded_cpu = {
            n.name: n.cpu.by_tag().get("giraph:compute", 0.0)
            for n in platform.cluster.nodes
        }
        assert degraded_cpu[slow_node] > 2.5 * healthy_cpu[slow_node]
        for name in healthy_cpu:
            if name != slow_node:
                assert degraded_cpu[name] == pytest.approx(
                    healthy_cpu[name], rel=1e-9)

    def test_disarm(self, platform):
        healthy = platform.run_job(REQUEST)
        platform.inject_faults(FaultPlan(
            slow_nodes={platform.cluster.node_names[0]: 3.0}))
        platform.inject_faults(None)
        again = platform.run_job(REQUEST)
        assert again.makespan == pytest.approx(healthy.makespan)


class TestCrashRecovery:
    def test_recovery_operation_emitted(self, platform):
        platform.inject_faults(FaultPlan(crash_worker=3, crash_superstep=2))
        result = platform.run_job(REQUEST)
        text = "\n".join(result.log_lines)
        assert "mission=RecoverWorker-2" in text
        assert "value=Worker-4" in text

    def test_recovery_extends_superstep(self, platform):
        healthy = platform.run_job(REQUEST)
        platform.inject_faults(FaultPlan(crash_worker=0, crash_superstep=1,
                                         recovery_s=9.0))
        crashed = platform.run_job(REQUEST)
        assert crashed.makespan > healthy.makespan + 8.0

    def test_output_survives_crash(self, platform, tiny_graph):
        platform.inject_faults(FaultPlan(crash_worker=5, crash_superstep=3))
        result = platform.run_job(REQUEST)
        assert compare_exact(bfs_levels(tiny_graph, 0), result.output).ok

    def test_crash_archivable_with_model(self, platform):
        from repro.core.archive.builder import build_archive
        from repro.core.model.giraph_model import giraph_model
        from repro.core.monitor.session import MonitoringSession

        platform.inject_faults(FaultPlan(crash_worker=2, crash_superstep=2))
        run = MonitoringSession(platform).run(REQUEST)
        archive, report = build_archive(run, giraph_model())
        assert report.unmodeled == []
        recoveries = archive.find(mission_base="RecoverWorker")
        assert len(recoveries) == 1
        assert recoveries[0].iteration == 2

    def test_crash_beyond_supersteps_is_noop(self, platform):
        healthy = platform.run_job(REQUEST)
        platform.inject_faults(FaultPlan(crash_worker=0,
                                         crash_superstep=500))
        result = platform.run_job(REQUEST)
        assert result.makespan == pytest.approx(healthy.makespan)
