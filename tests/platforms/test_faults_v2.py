"""FaultPlan v2: typed events, serialization, and engine recovery."""

import pytest

from repro.cluster.retry import RetryPolicy
from repro.core.analysis.chokepoint import find_choke_points
from repro.core.analysis.diagnosis import diagnose, recovery_overhead
from repro.core.archive.builder import build_archive
from repro.core.model.giraph_model import giraph_model
from repro.core.model.powergraph_model import powergraph_model
from repro.core.monitor.session import MonitoringSession
from repro.errors import FileSystemError, PlatformError
from repro.graph.algorithms import bfs_levels
from repro.graph.validate import compare_exact
from repro.platforms.base import JobRequest
from repro.platforms.faults import (
    ContainerLaunchFailure,
    DegradedLink,
    FaultPlan,
    HdfsReadError,
    LoaderCrash,
    NodeFailure,
    SlowDisk,
    SlowNode,
    WorkerCrash,
)
from repro.platforms.gas.engine import PowerGraphPlatform
from repro.platforms.gas.sync_engine import SyncGasEngine
from repro.platforms.pregel.engine import GiraphPlatform
from tests.conftest import make_giraph_cluster, make_powergraph_cluster

REQUEST = JobRequest("bfs", "tiny", 8, {"source": 0})


@pytest.fixture()
def giraph(tiny_graph):
    platform = GiraphPlatform(make_giraph_cluster())
    platform.deploy_dataset("tiny", tiny_graph)
    return platform


@pytest.fixture()
def powergraph(tiny_graph):
    platform = PowerGraphPlatform(make_powergraph_cluster())
    platform.deploy_dataset("tiny", tiny_graph)
    return platform


class TestEventValidation:
    def test_slow_events_reject_non_slowing_factor(self):
        for cls in (SlowNode, SlowDisk, DegradedLink):
            with pytest.raises(PlatformError):
                cls("n0", 0.9)
            cls("n0", 1.5)

    def test_worker_crash_bounds(self):
        with pytest.raises(PlatformError):
            WorkerCrash(worker=-1, superstep=0)
        with pytest.raises(PlatformError):
            WorkerCrash(worker=0, superstep=-1)
        with pytest.raises(PlatformError):
            WorkerCrash(worker=0, superstep=0, recovery_s=0.0)

    def test_container_failure_count(self):
        with pytest.raises(PlatformError):
            ContainerLaunchFailure("n0", failures=0)

    def test_hdfs_error_block_count(self):
        with pytest.raises(PlatformError):
            HdfsReadError("n0", blocks=0)

    def test_loader_crash_fractions(self):
        with pytest.raises(PlatformError):
            LoaderCrash(at_fraction=0.0)
        with pytest.raises(PlatformError):
            LoaderCrash(at_fraction=1.0)
        with pytest.raises(PlatformError):
            LoaderCrash(replay_fraction=1.0)
        with pytest.raises(PlatformError):
            LoaderCrash(restarts=0)

    def test_duplicate_crashes_rejected(self):
        with pytest.raises(PlatformError):
            FaultPlan(events=(WorkerCrash(1, 2), WorkerCrash(1, 2)))

    def test_bad_checkpoint_config_rejected(self):
        with pytest.raises(PlatformError):
            FaultPlan(checkpoint_interval=0)
        with pytest.raises(PlatformError):
            FaultPlan(checkpoint_write_s=0.0)
        with pytest.raises(PlatformError):
            FaultPlan(redistribute_s=-1.0)


class TestPlanQueries:
    def test_factors_multiply(self):
        plan = FaultPlan(
            slow_nodes={"n0": 2.0},
            events=(SlowNode("n0", 1.5), SlowDisk("n1", 3.0),
                    DegradedLink("n2", 2.5)),
        )
        assert plan.slow_factor("n0") == pytest.approx(3.0)
        assert plan.slow_factor("n1") == pytest.approx(1.0)
        assert plan.disk_factor("n1") == pytest.approx(3.0)
        assert plan.link_factor("n2") == pytest.approx(2.5)

    def test_legacy_crash_folds_into_event(self):
        plan = FaultPlan(crash_worker=2, crash_superstep=3, recovery_s=5.0)
        crash = plan.worker_crash(2, 3)
        assert crash is not None
        assert crash.recovery_s == pytest.approx(5.0)
        assert plan.crashes_at(2, 3)
        assert not plan.crashes_at(2, 4)

    def test_crash_in_superstep_respects_worker_count(self):
        plan = FaultPlan(events=(WorkerCrash(6, 1),))
        assert plan.crash_in_superstep(1, 8) is not None
        assert plan.crash_in_superstep(1, 4) is None

    def test_node_failure_exhausts_retry(self):
        plan = FaultPlan(events=(NodeFailure("n3"),))
        assert plan.launch_failures("n3") == plan.retry.max_attempts
        assert plan.launch_failures("n0") == 0

    def test_hdfs_failures_accumulate(self):
        plan = FaultPlan(events=(HdfsReadError("n0", 2),
                                 HdfsReadError("n0", 1)))
        assert plan.hdfs_read_failures("n0") == 3

    def test_interval_defaults_to_one(self):
        assert FaultPlan().interval() == 1
        assert FaultPlan(checkpoint_interval=4).interval() == 4

    def test_has_faults(self):
        assert not FaultPlan().has_faults()
        assert FaultPlan(events=(NodeFailure("n0"),)).has_faults()

    def test_node_names_collects_targets(self):
        plan = FaultPlan(
            slow_nodes={"a": 2.0},
            events=(SlowDisk("b", 2.0), NodeFailure("a"),
                    WorkerCrash(1, 1), LoaderCrash()),
        )
        assert plan.node_names() == ("a", "b")

    def test_jitter_deterministic_and_seeded(self):
        a = FaultPlan(seed=1)
        b = FaultPlan(seed=1)
        c = FaultPlan(seed=2)
        assert a.jitter("x", 3) == b.jitter("x", 3)
        assert a.jitter("x", 3) != c.jitter("x", 3)
        assert 0.0 <= a.jitter("x", 3) < 1.0


class TestSerialization:
    def roundtrip(self, plan):
        return FaultPlan.from_json(plan.to_json())

    def test_json_roundtrip_all_event_types(self):
        plan = FaultPlan(
            slow_nodes={"n0": 2.0},
            crash_worker=1,
            crash_superstep=2,
            events=(
                SlowNode("a", 1.5), SlowDisk("b", 2.0),
                DegradedLink("c", 3.0), WorkerCrash(4, 5, 6.0),
                ContainerLaunchFailure("d", 2), NodeFailure("e"),
                HdfsReadError("f", 3), LoaderCrash(0.3, 2, 1.0, 0.1),
            ),
            seed=99,
            retry=RetryPolicy(max_attempts=5, base_backoff_s=0.5),
            checkpoint_interval=3,
        )
        again = self.roundtrip(plan)
        assert again == plan
        assert again.signature() == plan.signature()

    def test_signature_distinguishes_plans(self):
        assert FaultPlan(seed=1).signature() != FaultPlan(seed=2).signature()

    def test_rejects_unknown_fields(self):
        with pytest.raises(PlatformError):
            FaultPlan.from_dict({"bogus": 1})

    def test_rejects_unknown_event_type(self):
        with pytest.raises(PlatformError):
            FaultPlan.from_dict({"events": [{"type": "meteor_strike"}]})

    def test_rejects_invalid_json(self):
        with pytest.raises(PlatformError):
            FaultPlan.from_json("{not json")


class TestInjectionValidation:
    def test_unknown_node_rejected(self, giraph):
        with pytest.raises(PlatformError, match="node999"):
            giraph.inject_faults(FaultPlan(
                events=(NodeFailure("node999"),)))
        assert giraph.fault_plan is None

    def test_disarm_always_allowed(self, giraph):
        giraph.inject_faults(None)


class TestContainerRecovery:
    def test_retry_emits_operation(self, giraph):
        node = giraph.cluster.node_names[1]
        giraph.inject_faults(FaultPlan(
            events=(ContainerLaunchFailure(node, failures=1),)))
        run = MonitoringSession(giraph).run(REQUEST)
        archive, report = build_archive(run, giraph_model())
        assert report.unmodeled == []
        retries = archive.find(mission_base="RetryContainer")
        assert len(retries) == 1
        assert run.result.stats["container_retries"] == 1

    def test_dead_node_blacklisted_job_completes(self, giraph, tiny_graph):
        dead = giraph.cluster.node_names[3]
        giraph.inject_faults(FaultPlan(events=(NodeFailure(dead),)))
        run = MonitoringSession(giraph).run(REQUEST)
        archive, report = build_archive(run, giraph_model())
        assert report.unmodeled == []
        assert run.result.stats["blacklisted_nodes"] == [dead]
        assert compare_exact(bfs_levels(tiny_graph, 0),
                             run.result.output).ok
        redistributes = archive.find(mission_base="RedistributePartitions")
        assert len(redistributes) == 1


class TestHdfsFailover:
    def test_failover_read_costs_more_than_local(self):
        from tests.conftest import make_giraph_cluster
        hdfs = make_giraph_cluster().hdfs
        healthy = hdfs.read_time(1 << 16, local=True)
        failed = hdfs.read_with_failover(1 << 16, failures=1)
        assert failed.recovered
        assert failed.attempts == 2
        assert failed.duration_s > healthy
        assert 0 < failed.wasted_s < failed.duration_s

    def test_all_replicas_failing_not_recovered(self):
        hdfs = make_giraph_cluster().hdfs
        dead = hdfs.read_with_failover(1 << 16, failures=99)
        assert not dead.recovered

    def test_rejects_bad_inputs(self):
        hdfs = make_giraph_cluster().hdfs
        with pytest.raises(FileSystemError):
            hdfs.read_with_failover(-1, 0)
        with pytest.raises(FileSystemError):
            hdfs.read_with_failover(1, -1)
        with pytest.raises(FileSystemError):
            hdfs.read_with_failover(1, 0, fail_fraction=0.0)

    def test_failover_operation_emitted(self, giraph):
        # The tiny dataset fits one block, held by the first datanode.
        node = giraph.cluster.node_names[0]
        giraph.inject_faults(FaultPlan(events=(HdfsReadError(node),)))
        run = MonitoringSession(giraph).run(REQUEST)
        archive, report = build_archive(run, giraph_model())
        assert report.unmodeled == []
        assert len(archive.find(mission_base="ReplicaFailover")) == 1
        assert run.result.stats["hdfs_failovers"] == 1


class TestCheckpointInterval:
    def test_checkpoints_emitted_at_interval(self, giraph):
        giraph.inject_faults(FaultPlan(checkpoint_interval=2))
        run = MonitoringSession(giraph).run(REQUEST)
        archive, report = build_archive(run, giraph_model())
        assert report.unmodeled == []
        checkpoints = archive.find(mission_base="Checkpoint")
        supersteps = run.result.stats["supersteps"]
        assert len(checkpoints) == (supersteps + 1) // 2
        assert sorted(c.iteration for c in checkpoints) == list(
            range(0, supersteps, 2))

    def test_no_checkpoints_by_default(self, giraph):
        giraph.inject_faults(FaultPlan(
            events=(SlowNode(giraph.cluster.node_names[0], 1.5),)))
        run = MonitoringSession(giraph).run(REQUEST)
        archive, _ = build_archive(run, giraph_model())
        assert archive.find(mission_base="Checkpoint") == []

    def test_wider_interval_means_longer_redo(self, giraph):
        def redo_cost(interval):
            giraph.inject_faults(FaultPlan(
                events=(WorkerCrash(worker=1, superstep=3),),
                checkpoint_interval=interval,
            ))
            run = MonitoringSession(giraph).run(REQUEST)
            archive, _ = build_archive(run, giraph_model())
            (recover,) = archive.find(mission_base="RecoverWorker")
            return recover.duration

        # Crash at superstep 3: interval 4 redoes supersteps 0-3,
        # interval 1 redoes only superstep 3.
        assert redo_cost(4) > redo_cost(1)

    def test_legacy_plan_matches_interval_one(self, giraph):
        giraph.inject_faults(FaultPlan(crash_worker=1, crash_superstep=2))
        legacy = giraph.run_job(REQUEST).makespan
        giraph.inject_faults(FaultPlan(
            events=(WorkerCrash(worker=1, superstep=2),)))
        event = giraph.run_job(REQUEST).makespan
        assert legacy == pytest.approx(event)


class TestGasCheckpointRestore:
    def test_restore_rolls_back_state(self, tiny_graph):
        from repro.graph.partition.vertexcut import greedy_vertex_cut
        from repro.platforms.gas.algorithms import make_gas_program

        cut = greedy_vertex_cut(tiny_graph, 4)
        program = make_gas_program("bfs", {"source": 0}, tiny_graph)
        engine = SyncGasEngine(tiny_graph, cut, program)
        engine.step()
        snapshot = engine.checkpoint()
        engine.step()
        assert engine.iteration == 2
        engine.restore(snapshot)
        assert engine.iteration == 1
        # Deterministic replay reaches the exact same state.
        replayed = engine.step()
        engine2 = SyncGasEngine(tiny_graph, cut, program)
        engine2.step()
        direct = engine2.step()
        assert replayed == direct
        assert engine.values == engine2.values

    def test_restore_rejects_garbage(self, tiny_graph):
        from repro.graph.partition.vertexcut import greedy_vertex_cut
        from repro.platforms.gas.algorithms import make_gas_program

        engine = SyncGasEngine(
            tiny_graph, greedy_vertex_cut(tiny_graph, 2),
            make_gas_program("bfs", {"source": 0}, tiny_graph))
        with pytest.raises(PlatformError):
            engine.restore({"values": {}})


class TestPowerGraphRecovery:
    def test_loader_crash_emits_restart(self, powergraph, tiny_graph):
        powergraph.inject_faults(FaultPlan(
            events=(LoaderCrash(at_fraction=0.5, restarts=2),)))
        run = MonitoringSession(powergraph).run(REQUEST)
        archive, report = build_archive(run, powergraph_model())
        assert report.unmodeled == []
        assert len(archive.find(mission_base="RestartLoad")) == 2
        assert run.result.stats["loader_restarts"] == 2
        assert compare_exact(bfs_levels(tiny_graph, 0),
                             run.result.output).ok

    def test_loader_crash_extends_makespan(self, powergraph):
        healthy = powergraph.run_job(REQUEST).makespan
        powergraph.inject_faults(FaultPlan(
            events=(LoaderCrash(at_fraction=0.5, restart_s=5.0),)))
        crashed = powergraph.run_job(REQUEST).makespan
        assert crashed > healthy + 4.0

    def test_rank_crash_recovers_from_checkpoint(self, powergraph,
                                                 tiny_graph):
        powergraph.inject_faults(FaultPlan(
            events=(WorkerCrash(worker=1, superstep=1),),
            checkpoint_interval=2,
        ))
        run = MonitoringSession(powergraph).run(REQUEST)
        archive, report = build_archive(run, powergraph_model())
        assert report.unmodeled == []
        assert len(archive.find(mission_base="RecoverWorker")) == 1
        assert len(archive.find(mission_base="Checkpoint")) >= 1
        assert run.result.stats["recoveries"] == 1
        assert compare_exact(bfs_levels(tiny_graph, 0),
                             run.result.output).ok


class TestDiagnosisIntegration:
    def test_recovery_findings_and_overhead(self, giraph):
        giraph.inject_faults(FaultPlan(
            events=(
                ContainerLaunchFailure(giraph.cluster.node_names[1]),
                HdfsReadError(giraph.cluster.node_names[0]),
                WorkerCrash(worker=2, superstep=1),
            ),
        ))
        run = MonitoringSession(giraph).run(REQUEST)
        archive, _ = build_archive(run, giraph_model())
        findings = diagnose(archive)
        kinds = {f.subject.split("-")[0] for f in findings
                 if f.kind == "recovery"}
        assert {"RetryContainer", "ReplicaFailover", "RecoverWorker"} <= kinds
        assert all("% of the makespan" in f.evidence
                   for f in findings if f.kind == "recovery")
        overhead = recovery_overhead(archive)
        assert overhead["total"] > 0
        assert 0 < overhead["share"] < 1
        assert set(overhead) >= {"RecoverWorker", "RetryContainer",
                                 "ReplicaFailover", "total", "share"}

    def test_healthy_overhead_is_zero(self, giraph):
        run = MonitoringSession(giraph).run(REQUEST)
        archive, _ = build_archive(run, giraph_model())
        assert recovery_overhead(archive) == {"total": 0.0, "share": 0.0}

    def test_chokepoint_labels_recovery(self, giraph):
        giraph.inject_faults(FaultPlan(
            events=(WorkerCrash(worker=0, superstep=1, recovery_s=60.0),)))
        run = MonitoringSession(giraph).run(REQUEST)
        archive, _ = build_archive(run, giraph_model())
        points = find_choke_points(archive, top_n=8, min_share=0.01)
        recover = [p for p in points if p.mission == "RecoverWorker"]
        assert recover and recover[0].bound == "recovery"
