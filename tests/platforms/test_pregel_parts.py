"""Unit tests for Pregel engine building blocks: messages, aggregators,
ZooKeeper, vertex context, worker state."""

import pytest

from repro.cluster.clock import SimClock
from repro.cluster.network import das5_network
from repro.errors import PlatformError
from repro.graph.graph import Graph
from repro.platforms.pregel.aggregators import AggregatorRegistry
from repro.platforms.pregel.api import VertexContext
from repro.platforms.pregel.algorithms import BfsProgram
from repro.platforms.pregel.messages import IncomingStore, OutgoingStore
from repro.platforms.pregel.worker import WorkerState
from repro.platforms.pregel.zookeeper import ZooKeeperService


class TestOutgoingStore:
    def test_send_without_combiner_keeps_all(self):
        store = OutgoingStore(2, owner_of=[0, 1], combiner=None)
        store.send(1, "a")
        store.send(1, "b")
        assert store.sent_count == 2
        assert store.wire_messages(1) == 2

    def test_combiner_merges_per_vertex(self):
        store = OutgoingStore(2, owner_of=[0, 1], combiner=min)
        store.send(1, 5)
        store.send(1, 3)
        store.send(1, 7)
        assert store.sent_count == 3
        assert store.combined_count == 2
        assert store.wire_messages(1) == 1
        flushed = store.flush()
        assert flushed[1] == {1: [3]}

    def test_bucketing_by_owner(self):
        store = OutgoingStore(2, owner_of=[0, 0, 1], combiner=None)
        store.send(0, "x")
        store.send(2, "y")
        assert store.wire_messages(0) == 1
        assert store.wire_messages(1) == 1

    def test_flush_resets(self):
        store = OutgoingStore(1, owner_of=[0], combiner=None)
        store.send(0, "x")
        store.flush()
        assert store.wire_messages(0) == 0


class TestIncomingStore:
    def test_deliver_and_take(self):
        store = IncomingStore()
        store.deliver({1: ["a"], 2: ["b", "c"]})
        assert store.received_count == 3
        assert store.pending == 3
        mailbox = store.take_all()
        assert mailbox == {1: ["a"], 2: ["b", "c"]}
        assert store.pending == 0

    def test_deliveries_merge(self):
        store = IncomingStore()
        store.deliver({1: ["a"]})
        store.deliver({1: ["b"]})
        assert store.take_all() == {1: ["a", "b"]}


class TestAggregatorRegistry:
    def test_register_contribute_barrier(self):
        reg = AggregatorRegistry()
        reg.register("sum", lambda a, b: a + b, 0.0)
        reg.contribute("sum", 2.0)
        reg.contribute("sum", 3.0)
        values = reg.barrier()
        assert values == {"sum": 5.0}
        assert reg.previous_values == {"sum": 5.0}

    def test_barrier_resets_current(self):
        reg = AggregatorRegistry()
        reg.register("sum", lambda a, b: a + b, 0.0)
        reg.contribute("sum", 1.0)
        reg.barrier()
        assert reg.barrier() == {"sum": 0.0}

    def test_duplicate_name_rejected(self):
        reg = AggregatorRegistry()
        reg.register("x", min, 0)
        with pytest.raises(PlatformError):
            reg.register("x", min, 0)

    def test_unknown_name_rejected(self):
        with pytest.raises(PlatformError):
            AggregatorRegistry().contribute("nope", 1)

    def test_names_sorted(self):
        reg = AggregatorRegistry()
        reg.register("b", min, 0)
        reg.register("a", min, 0)
        assert reg.names == ["a", "b"]


class TestZooKeeper:
    def test_sync_counts_rounds(self):
        zk = ZooKeeperService(SimClock(), das5_network())
        zk.barrier_sync_duration(8)
        zk.barrier_sync_duration(8)
        assert zk.sync_count == 2

    def test_sync_grows_with_participants(self):
        zk = ZooKeeperService(SimClock(), das5_network())
        assert zk.barrier_sync_duration(16) > zk.barrier_sync_duration(2)

    def test_cleanup_scales_with_znodes(self):
        zk = ZooKeeperService(SimClock(), das5_network())
        assert zk.cleanup_duration(1000) > zk.cleanup_duration(0)


class TestVertexContext:
    @pytest.fixture()
    def ctx(self):
        graph = Graph(4, [(0, 1), (0, 2), (1, 0), (3, 0)])
        return VertexContext(graph, num_workers=2)

    def test_topology_accessors(self, ctx):
        ctx._begin_vertex(0)
        assert list(ctx.out_neighbors()) == [1, 2]
        assert list(ctx.in_neighbors()) == [1, 3]
        assert set(ctx.neighbors_undirected()) == {1, 2, 3}
        assert ctx.out_degree() == 2
        assert ctx.num_vertices == 4
        assert ctx.vertex == 0

    def test_send_and_drain(self, ctx):
        ctx._begin_vertex(0)
        ctx.send_message(1, "a")
        ctx.send_message_to_out_neighbors("b")
        outbox, halted, aggs = ctx._drain()
        assert outbox == [(1, "a"), (1, "b"), (2, "b")]
        assert not halted
        assert aggs == []

    def test_send_to_unknown_vertex_rejected(self, ctx):
        ctx._begin_vertex(0)
        with pytest.raises(PlatformError):
            ctx.send_message(99, "x")

    def test_vote_to_halt(self, ctx):
        ctx._begin_vertex(0)
        ctx.vote_to_halt()
        _out, halted, _aggs = ctx._drain()
        assert halted

    def test_halt_reset_per_vertex(self, ctx):
        ctx._begin_vertex(0)
        ctx.vote_to_halt()
        ctx._drain()
        ctx._begin_vertex(1)
        _out, halted, _aggs = ctx._drain()
        assert not halted

    def test_aggregate_and_read(self, ctx):
        ctx._begin_vertex(0)
        ctx.aggregate("dangling", 0.5)
        _out, _halted, aggs = ctx._drain()
        assert aggs == [("dangling", 0.5)]
        ctx._aggregated_previous = {"dangling": 0.7}
        assert ctx.aggregated("dangling") == 0.7
        assert ctx.aggregated("missing", -1) == -1


class TestWorkerState:
    def make_worker(self, graph, vertices, owner_of, program=None):
        return WorkerState(
            worker_id=0, node_name="n0", vertices=vertices, graph=graph,
            num_workers=2, owner_of=owner_of,
            program=program or BfsProgram(0),
        )

    def test_load_partition_initializes(self):
        g = Graph(3, [(0, 1), (1, 2)])
        worker = self.make_worker(g, [0, 1], [0, 0, 1])
        worker.load_partition()
        assert worker.values == {0: -1, 1: -1}
        assert worker.halted == {0: False, 1: False}

    def test_partition_bytes_positive(self):
        g = Graph(3, [(0, 1), (1, 2)])
        worker = self.make_worker(g, [0, 1], [0, 0, 1])
        assert worker.partition_bytes() > 0

    def test_superstep_zero_computes_all(self):
        g = Graph(3, [(0, 1), (1, 2)])
        worker = self.make_worker(g, [0, 1], [0, 0, 1])
        worker.load_partition()
        worker.begin_superstep(0, {})
        out = OutgoingStore(2, [0, 0, 1], min)
        work = worker.compute_superstep(out, AggregatorRegistry())
        assert work.computed == 2
        # BFS source 0 sends to vertex 1 (local worker 0).
        assert work.messages_sent == 1
        assert work.wire_local == 1
        assert work.wire_remote == 0

    def test_halted_vertices_skip_compute(self):
        g = Graph(3, [(0, 1), (1, 2)])
        worker = self.make_worker(g, [0, 1], [0, 0, 1])
        worker.load_partition()
        worker.begin_superstep(0, {})
        worker.compute_superstep(OutgoingStore(2, [0, 0, 1], min),
                                 AggregatorRegistry())
        # Superstep 1 without messages: everyone halted, nothing computes.
        worker.begin_superstep(1, {})
        work = worker.compute_superstep(OutgoingStore(2, [0, 0, 1], min),
                                        AggregatorRegistry())
        assert work.computed == 0

    def test_message_reactivates(self):
        g = Graph(3, [(0, 1), (1, 2)])
        worker = self.make_worker(g, [0, 1], [0, 0, 1])
        worker.load_partition()
        worker.begin_superstep(0, {})
        worker.compute_superstep(OutgoingStore(2, [0, 0, 1], min),
                                 AggregatorRegistry())
        worker.incoming.deliver({1: [1]})
        assert worker.has_pending_messages()
        worker.begin_superstep(1, {})
        work = worker.compute_superstep(OutgoingStore(2, [0, 0, 1], min),
                                        AggregatorRegistry())
        assert work.computed == 1
        assert worker.values[1] == 1

    def test_all_halted(self):
        g = Graph(2, [(0, 1)])
        worker = self.make_worker(g, [0, 1], [0, 0])
        worker.load_partition()
        assert not worker.all_halted()
        worker.begin_superstep(0, {})
        worker.compute_superstep(OutgoingStore(2, [0, 0], min),
                                 AggregatorRegistry())
        assert worker.all_halted()

    def test_output_uses_program_mapping(self):
        g = Graph(2, [(0, 1)])
        worker = self.make_worker(g, [0], [0, 0])
        worker.load_partition()
        assert worker.output() == {0: -1}
