"""Seeded fault plans are deterministic: replay ⇒ identical archives."""

import pytest

from repro.core.archive.builder import build_archive
from repro.core.archive.serialize import archive_to_json
from repro.core.model.giraph_model import giraph_model
from repro.core.model.powergraph_model import powergraph_model
from repro.core.monitor.session import MonitoringSession
from repro.graph.algorithms import bfs_levels
from repro.graph.validate import compare_exact
from repro.platforms.base import JobRequest
from repro.platforms.faults import (
    ContainerLaunchFailure,
    DegradedLink,
    FaultPlan,
    HdfsReadError,
    LoaderCrash,
    NodeFailure,
    SlowDisk,
    SlowNode,
    WorkerCrash,
)
from repro.platforms.gas.engine import PowerGraphPlatform
from repro.platforms.pregel.engine import GiraphPlatform
from tests.conftest import make_giraph_cluster, make_powergraph_cluster

REQUEST = JobRequest("bfs", "tiny", 8, {"source": 0}, job_id="det-job")


def fresh_giraph(tiny_graph):
    platform = GiraphPlatform(make_giraph_cluster())
    platform.deploy_dataset("tiny", tiny_graph)
    return platform


def fresh_powergraph(tiny_graph):
    platform = PowerGraphPlatform(make_powergraph_cluster())
    platform.deploy_dataset("tiny", tiny_graph)
    return platform


def archive_json(platform, model, plan):
    platform.inject_faults(plan)
    run = MonitoringSession(platform).run(REQUEST)
    archive, report = build_archive(run, model)
    assert report.unmodeled == []
    return archive_to_json(archive), run.result.output


GIRAPH_NODES = make_giraph_cluster().node_names

GIRAPH_PLANS = [
    pytest.param(FaultPlan(
        events=(SlowNode(GIRAPH_NODES[1], 2.0),), seed=5), id="slow-node"),
    pytest.param(FaultPlan(
        events=(SlowDisk(GIRAPH_NODES[2], 3.0),), seed=5), id="slow-disk"),
    pytest.param(FaultPlan(
        events=(DegradedLink(GIRAPH_NODES[3], 2.5),), seed=5),
        id="degraded-link"),
    pytest.param(FaultPlan(
        events=(WorkerCrash(worker=1, superstep=2),),
        checkpoint_interval=2, seed=5), id="worker-crash"),
    pytest.param(FaultPlan(
        events=(ContainerLaunchFailure(GIRAPH_NODES[2], failures=2),),
        seed=5), id="container-failure"),
    pytest.param(FaultPlan(
        events=(NodeFailure(GIRAPH_NODES[4]),), seed=5), id="node-failure"),
    # The tiny dataset's single block lives on the first datanode.
    pytest.param(FaultPlan(
        events=(HdfsReadError(GIRAPH_NODES[0], blocks=1),), seed=5),
        id="hdfs-error"),
    pytest.param(FaultPlan(
        events=(
            ContainerLaunchFailure(GIRAPH_NODES[2]),
            HdfsReadError(GIRAPH_NODES[0]),
            WorkerCrash(worker=0, superstep=1),
            SlowNode(GIRAPH_NODES[5], 1.5),
        ),
        checkpoint_interval=2, seed=5), id="combined"),
]

POWERGRAPH_PLANS = [
    pytest.param(FaultPlan(
        events=(LoaderCrash(at_fraction=0.3, restarts=2),), seed=5),
        id="loader-crash"),
    pytest.param(FaultPlan(
        events=(WorkerCrash(worker=3, superstep=1),),
        checkpoint_interval=3, seed=5), id="rank-crash"),
    pytest.param(FaultPlan(
        events=(
            LoaderCrash(at_fraction=0.6),
            WorkerCrash(worker=1, superstep=2),
            SlowNode(make_powergraph_cluster().node_names[2], 2.0),
        ),
        checkpoint_interval=2, seed=5), id="combined"),
]


class TestGiraphDeterminism:
    @pytest.mark.parametrize("plan", GIRAPH_PLANS)
    def test_replay_identical_and_correct(self, tiny_graph, plan):
        first, out_a = archive_json(
            fresh_giraph(tiny_graph), giraph_model(), plan)
        second, out_b = archive_json(
            fresh_giraph(tiny_graph), giraph_model(), plan)
        assert first == second
        reference = bfs_levels(tiny_graph, 0)
        assert compare_exact(reference, out_a).ok
        assert compare_exact(reference, out_b).ok

    def test_different_seed_same_timeline(self, tiny_graph):
        # Seeds feed jitter only; today's events are fully scheduled, so
        # the seed must round-trip through serialization but not perturb
        # behavior behind the plan author's back.
        base = FaultPlan(events=(WorkerCrash(1, 1),), seed=1)
        other = FaultPlan(events=(WorkerCrash(1, 1),), seed=2)
        assert base.signature() != other.signature()
        a, _ = archive_json(fresh_giraph(tiny_graph), giraph_model(), base)
        b, _ = archive_json(fresh_giraph(tiny_graph), giraph_model(), other)
        assert a == b

    def test_healthy_unaffected_by_empty_plan(self, tiny_graph):
        healthy, _ = archive_json(
            fresh_giraph(tiny_graph), giraph_model(), None)
        empty, _ = archive_json(
            fresh_giraph(tiny_graph), giraph_model(), FaultPlan())
        assert healthy == empty


class TestPowerGraphDeterminism:
    @pytest.mark.parametrize("plan", POWERGRAPH_PLANS)
    def test_replay_identical_and_correct(self, tiny_graph, plan):
        first, out_a = archive_json(
            fresh_powergraph(tiny_graph), powergraph_model(), plan)
        second, out_b = archive_json(
            fresh_powergraph(tiny_graph), powergraph_model(), plan)
        assert first == second
        reference = bfs_levels(tiny_graph, 0)
        assert compare_exact(reference, out_a).ok
        assert compare_exact(reference, out_b).ok

    def test_json_roundtripped_plan_replays_identically(self, tiny_graph):
        plan = FaultPlan(
            events=(LoaderCrash(at_fraction=0.4),
                    WorkerCrash(worker=2, superstep=1)),
            checkpoint_interval=2, seed=9,
        )
        rehydrated = FaultPlan.from_json(plan.to_json())
        a, _ = archive_json(
            fresh_powergraph(tiny_graph), powergraph_model(), plan)
        b, _ = archive_json(
            fresh_powergraph(tiny_graph), powergraph_model(), rehydrated)
        assert a == b
