"""Tests for the PGX.D-like push-pull engine."""

import pytest

from repro.errors import PlatformError
from repro.graph.algorithms import (
    bfs_levels,
    pagerank,
    sssp_distances,
    weakly_connected_components,
)
from repro.graph.algorithms.bfs import frontier_sizes
from repro.graph.generators import grid_graph, powerlaw_graph
from repro.graph.graph import Graph
from repro.graph.partition.range_partition import range_partition
from repro.graph.validate import compare_exact, compare_numeric
from repro.platforms.base import JobRequest
from repro.platforms.pgxd.algorithms import (
    BfsPushPull,
    make_pushpull_program,
)
from repro.platforms.pgxd.engine import PgxdPlatform
from repro.workloads.runner import build_cluster


@pytest.fixture(scope="module")
def platform(tiny_graph):
    p = PgxdPlatform(build_cluster("PGX.D"))
    p.deploy_dataset("tiny", tiny_graph)
    return p


class TestAlgorithmsAgainstReference:
    GRAPHS = {
        "tiny": "tiny_graph",
        "powerlaw": powerlaw_graph(400, 2400, seed=8),
        "grid": grid_graph(10, 10),
        "disconnected": Graph(40, [(i, i + 1) for i in range(15)]),
    }

    def run_pgxd(self, graph, algorithm, params):
        platform = PgxdPlatform(build_cluster("PGX.D"))
        platform.deploy_dataset("g", graph)
        return platform.run_job(
            JobRequest(algorithm, "g", 8, params=params)).output

    def graph_by_name(self, name, request):
        g = self.GRAPHS[name]
        return request.getfixturevalue(g) if isinstance(g, str) else g

    @pytest.mark.parametrize("name", list(GRAPHS))
    def test_bfs(self, name, request):
        g = self.graph_by_name(name, request)
        out = self.run_pgxd(g, "bfs", {"source": 0})
        assert compare_exact(bfs_levels(g, 0), out).ok

    @pytest.mark.parametrize("name", list(GRAPHS))
    def test_sssp(self, name, request):
        g = self.graph_by_name(name, request)
        out = self.run_pgxd(g, "sssp", {"source": 0})
        assert compare_numeric(sssp_distances(g, 0), out).ok

    @pytest.mark.parametrize("name", list(GRAPHS))
    def test_wcc(self, name, request):
        g = self.graph_by_name(name, request)
        out = self.run_pgxd(g, "wcc", {})
        assert compare_exact(weakly_connected_components(g), out).ok

    @pytest.mark.parametrize("name", list(GRAPHS))
    def test_pagerank(self, name, request):
        g = self.graph_by_name(name, request)
        out = self.run_pgxd(g, "pagerank", {"iterations": 6})
        ref = pagerank(g, iterations=6)
        assert compare_numeric(ref, out, rel_tol=1e-9, abs_tol=1e-12).ok


class TestDirectionOptimization:
    def test_bfs_switches_to_pull_on_dense_frontier(self, tiny_graph):
        owner_of = range_partition(tiny_graph.num_vertices, 4)
        program = BfsPushPull(tiny_graph, owner_of, source=0)
        directions = []
        phase = 0
        while True:
            result = program.run_phase(phase)
            directions.append(result.direction)
            phase += 1
            if result.converged:
                break
        # Small-world social graph: sparse early frontiers push, the
        # dense middle pulls.
        assert directions[0] == "push"
        assert "pull" in directions

    def test_pull_saves_traversals_on_dense_frontier(self, tiny_graph):
        """At the frontier peak, pulling touches fewer edges than the
        frontier's own out-edges (it stops at the first parent)."""
        fs = frontier_sizes(tiny_graph, 0)
        peak = fs.index(max(fs))
        owner_of = range_partition(tiny_graph.num_vertices, 4)
        program = BfsPushPull(tiny_graph, owner_of, source=0)
        for phase in range(peak):
            program.run_phase(phase)
        frontier_out_edges = sum(
            tiny_graph.out_degree(v) for v in program.frontier
        )
        result = program.run_phase(peak)
        if result.direction == "pull":
            assert sum(result.edges_by_owner) < 2 * frontier_out_edges

    def test_engine_reports_directions(self, platform):
        result = platform.run_job(JobRequest("bfs", "tiny", 8,
                                             params={"source": 0}))
        directions = result.stats["directions"]
        assert directions[0] == "push"
        assert result.stats["phases"] == len(directions)


class TestEngine:
    def test_deterministic(self, platform):
        a = platform.run_job(JobRequest("bfs", "tiny", 8,
                                        params={"source": 0}, job_id="x"))
        b = platform.run_job(JobRequest("bfs", "tiny", 8,
                                        params={"source": 0}, job_id="x"))
        assert a.makespan == b.makespan
        assert a.log_lines == b.log_lines

    def test_log_missions_match_model(self, platform):
        from repro.core.archive.builder import build_archive
        from repro.core.model.other_models import pgxd_model
        from repro.core.monitor.session import MonitoringSession

        session = MonitoringSession(platform)
        run = session.run(JobRequest("bfs", "tiny", 8,
                                     params={"source": 0}))
        archive, report = build_archive(run, pgxd_model())
        assert report.unmodeled == []
        phases = archive.find(mission_base="ComputePhase")
        assert phases
        assert all("Direction" in op.infos for op in phases)

    def test_faster_than_giraph_and_powergraph(self, tiny_graph):
        """The Table 1 story: PGX.D is built for speed."""
        from repro.platforms.pregel.engine import GiraphPlatform
        from repro.platforms.gas.engine import PowerGraphPlatform
        from tests.conftest import (
            make_giraph_cluster,
            make_powergraph_cluster,
        )

        request = JobRequest("bfs", "g", 8, params={"source": 0})
        makespans = {}
        for name, factory in (
            ("pgxd", lambda: PgxdPlatform(build_cluster("PGX.D"))),
            ("giraph", lambda: GiraphPlatform(make_giraph_cluster())),
            ("powergraph",
             lambda: PowerGraphPlatform(make_powergraph_cluster())),
        ):
            platform = factory()
            platform.deploy_dataset("g", tiny_graph)
            makespans[name] = platform.run_job(request).makespan
        assert makespans["pgxd"] < makespans["giraph"]
        assert makespans["pgxd"] < makespans["powergraph"]

    def test_unknown_algorithm(self, platform, tiny_graph):
        with pytest.raises(PlatformError):
            platform.run_job(JobRequest("lcc", "tiny", 8))
        with pytest.raises(PlatformError):
            make_pushpull_program("cdlp", {}, tiny_graph, [0])

    def test_bad_source(self, tiny_graph):
        with pytest.raises(PlatformError):
            make_pushpull_program("bfs", {"source": -1}, tiny_graph, [0])
        with pytest.raises(PlatformError):
            make_pushpull_program("sssp", {"source": 10**7},
                                  tiny_graph, [0])

    def test_bad_pagerank_params(self, tiny_graph):
        owner_of = range_partition(tiny_graph.num_vertices, 2)
        with pytest.raises(PlatformError):
            make_pushpull_program("pagerank", {"iterations": -1},
                                  tiny_graph, owner_of)
        with pytest.raises(PlatformError):
            make_pushpull_program("pagerank", {"damping": 0.0},
                                  tiny_graph, owner_of)
