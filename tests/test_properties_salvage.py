"""Property-based tests (hypothesis) for the resilience pipeline.

Invariants under fuzzing:

- the log format round-trips through typed records;
- mangled lines (truncated mid-field, duplicated, reordered, binary
  garbage) always yield a typed error or a salvaged record — never a
  raw ``ValueError``/``KeyError``;
- JSON-prefix recovery never raises and never invents data;
- salvaged archives keep their structural invariants (end >= start,
  children inside parents' trees, consistent bookkeeping).
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import logformat
from repro.core.archive.integrity import load_salvaged, recover_json
from repro.core.monitor.logparser import parse_log_line, parse_log_report
from repro.core.monitor.records import LogRecord
from repro.core.monitor.salvage import salvage_archive
from repro.errors import IngestError, LogParseError, ReproError

# -- strategies -------------------------------------------------------------

uids = st.text(st.sampled_from("abcdefgh0123456789"), min_size=1,
               max_size=6)
names = st.text(st.sampled_from("ABCDEFGHabcdefgh-"), min_size=1,
                max_size=10)
timestamps = st.floats(min_value=0, max_value=1e6, allow_nan=False,
                       allow_infinity=False)


@st.composite
def start_lines(draw):
    fields = {
        "ts": repr(draw(timestamps)),
        "job": draw(uids),
        "event": "start",
        "uid": draw(uids),
        "parent": draw(st.one_of(st.just("-"), uids)),
        "mission": draw(names),
        "actor": draw(names),
    }
    return logformat.format_line(fields)


@st.composite
def tiny_logs(draw):
    """A structurally sensible log: nested starts, some ends."""
    job = draw(uids)
    count = draw(st.integers(min_value=1, max_value=8))
    lines, stack, ts = [], [], 0.0
    for index in range(count):
        ts += draw(st.floats(0.01, 5.0, allow_nan=False))
        uid = f"op{index}"
        parent = stack[-1] if stack else "-"
        lines.append(logformat.format_line({
            "ts": repr(ts), "job": job, "event": "start", "uid": uid,
            "parent": parent, "mission": draw(names),
            "actor": draw(names),
        }))
        stack.append(uid)
        if draw(st.booleans()) and stack:
            ts += draw(st.floats(0.01, 5.0, allow_nan=False))
            lines.append(logformat.format_line({
                "ts": repr(ts), "job": job, "event": "end",
                "uid": stack.pop(),
            }))
    return lines


def mangle_line(rng_choice, line, index):
    """One deterministic mangling of one line."""
    kind = rng_choice
    if kind == 0:   # truncate mid-field
        return line[: max(1, len(line) - 1 - index % max(1, len(line)))]
    if kind == 1:   # binary garbage prefix
        return "\x00\x7f\x1b" + line
    if kind == 2:   # corrupt a separator
        return line.replace("=", "", 1)
    return line     # unchanged


# -- line-level invariants ---------------------------------------------------

class TestLineParsing:
    @given(start_lines())
    @settings(max_examples=100, deadline=None)
    def test_valid_lines_round_trip(self, line):
        record = parse_log_line(line)
        assert isinstance(record, LogRecord)
        assert record.is_start
        assert logformat.is_granula_line(line)

    @given(st.text(max_size=120))
    @settings(max_examples=150, deadline=None)
    def test_arbitrary_text_never_raises_raw_errors(self, text):
        try:
            record = parse_log_line(text)
        except ReproError:
            return  # typed: LogParseError is fine
        assert isinstance(record, LogRecord)

    @given(start_lines(), st.integers(0, 3), st.integers(0, 50))
    @settings(max_examples=150, deadline=None)
    def test_mangled_lines_typed_or_salvaged(self, line, kind, index):
        mangled = mangle_line(kind, line, index)
        try:
            record = parse_log_line(mangled)
        except LogParseError:
            return
        assert isinstance(record, LogRecord)

    @given(st.lists(st.text(max_size=80), max_size=20))
    @settings(max_examples=100, deadline=None)
    def test_lenient_report_accounts_for_every_line(self, lines):
        records, report = parse_log_report(lines, strict=False)
        assert report.total_lines == len(lines)
        assert (report.foreign_lines + report.records
                + report.malformed) == len(lines)
        assert len(records) == report.records


# -- log-level invariants ----------------------------------------------------

class TestSalvageProperties:
    @given(tiny_logs())
    @settings(max_examples=60, deadline=None)
    def test_clean_logs_salvage_to_valid_trees(self, lines):
        archive, report = salvage_archive(lines)
        for operation in archive.walk():
            if (operation.start_time is not None
                    and operation.end_time is not None):
                assert operation.end_time >= operation.start_time
        assert report.records <= report.total_lines

    @given(tiny_logs(), st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_mangled_logs_typed_or_salvaged(self, lines, rng):
        mangled = []
        for index, line in enumerate(lines):
            mangled.append(mangle_line(rng.randint(0, 3), line, index))
            if rng.random() < 0.3:
                mangled.append(line)  # duplicate
        rng.shuffle(mangled)
        mangled = mangled[: max(1, int(len(mangled) * 0.8))]  # truncate
        try:
            archive, report = salvage_archive(mangled)
        except IngestError:
            return  # typed: nothing salvageable
        assert archive.root is not None
        for operation in archive.walk():
            if (operation.start_time is not None
                    and operation.end_time is not None):
                assert operation.end_time >= operation.start_time
        assert report.records > 0

    @given(tiny_logs())
    @settings(max_examples=30, deadline=None)
    def test_salvage_is_idempotent_on_its_own_report(self, lines):
        first, report_a = salvage_archive(lines)
        second, report_b = salvage_archive(lines)
        assert report_a.to_dict() == report_b.to_dict()
        assert [op.uid for op in first.walk()] == \
            [op.uid for op in second.walk()]


# -- JSON-recovery invariants ------------------------------------------------

json_values = st.recursive(
    st.one_of(st.none(), st.booleans(),
              st.floats(allow_nan=False, allow_infinity=False),
              st.text(max_size=12)),
    lambda inner: st.one_of(
        st.lists(inner, max_size=4),
        st.dictionaries(st.text(max_size=6), inner, max_size=4),
    ),
    max_leaves=12,
)


class TestRecoverJsonProperties:
    @given(json_values)
    @settings(max_examples=100, deadline=None)
    def test_intact_json_recovered_verbatim(self, value):
        text = json.dumps(value)
        doc, dropped = recover_json(text)
        assert doc == json.loads(text)
        assert dropped == 0

    @given(json_values, st.floats(0.1, 0.99))
    @settings(max_examples=100, deadline=None)
    def test_truncation_never_raises(self, value, fraction):
        text = json.dumps(value)
        cut = text[: max(1, int(len(text) * fraction))]
        doc, dropped = recover_json(cut)  # must not raise
        assert dropped >= 0
        if doc is not None:
            json.dumps(doc)  # recovered value is valid JSON

    @given(st.text(max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_arbitrary_text_never_raises(self, text):
        recover_json(text)
        archive, findings = load_salvaged(text)
        assert findings or archive is not None
