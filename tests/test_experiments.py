"""Tests reproducing every paper table/figure (the headline assertions).

These use the real experiment scale (dg1000-scaled), shared across the
module through the experiments' process-wide runner, so the whole module
costs two platform runs.
"""

import pytest

from repro.experiments import (
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_table1,
)
from repro.experiments.common import shared_runner
from repro.experiments.report import ALL_EXPERIMENTS, render_markdown, run_all


@pytest.fixture(scope="module")
def runner():
    return shared_runner()


class TestTable1:
    def test_all_checks_pass(self, runner):
        result = run_table1(runner)
        assert result.all_checks_pass, result.checks

    def test_rows_rendered(self, runner):
        text = run_table1(runner).text
        for name in ("Giraph", "PowerGraph", "GraphMat", "PGX.D",
                     "OpenG", "TOTEM", "Hadoop"):
            assert name in text


class TestFig3:
    def test_all_checks_pass(self, runner):
        assert run_fig3(runner).all_checks_pass


class TestFig4:
    def test_all_checks_pass(self, runner):
        result = run_fig4(runner)
        assert result.all_checks_pass, [c for c in result.checks if not c[1]]

    def test_tree_rendered(self, runner):
        text = run_fig4(runner).text
        assert "GiraphJob" in text
        assert "SyncZookeeper" in text


class TestFig5:
    def test_all_checks_pass(self, runner):
        result = run_fig5(runner)
        assert result.all_checks_pass, [c for c in result.checks if not c[1]]

    def test_giraph_shares_near_paper(self, runner):
        measured = run_fig5(runner).measured["giraph"]
        assert abs(measured["Setup"] - 30.9) < 6
        assert abs(measured["Input/output"] - 43.3) < 6
        assert abs(measured["Processing"] - 25.8) < 6

    def test_powergraph_io_dominates(self, runner):
        measured = run_fig5(runner).measured["powergraph"]
        assert measured["Input/output"] >= 90.0
        assert measured["Processing"] <= 5.0

    def test_runtime_ratio(self, runner):
        measured = run_fig5(runner).measured
        ratio = measured["powergraph"]["total_s"] / measured["giraph"]["total_s"]
        assert 3.0 <= ratio <= 7.0


class TestFig6:
    def test_all_checks_pass(self, runner):
        result = run_fig6(runner)
        assert result.all_checks_pass, [c for c in result.checks if not c[1]]

    def test_load_is_heaviest(self, runner):
        cores = run_fig6(runner).measured["mean_cpu_cores"]
        assert cores["LoadGraph"] == max(cores.values())


class TestFig7:
    def test_all_checks_pass(self, runner):
        result = run_fig7(runner)
        assert result.all_checks_pass, [c for c in result.checks if not c[1]]

    def test_single_loader(self, runner):
        measured = run_fig7(runner).measured
        assert measured["loader_mean_cores"] > 8.0
        assert measured["others_mean_cores_head"] < 1.0


class TestFig8:
    def test_all_checks_pass(self, runner):
        result = run_fig8(runner)
        assert result.all_checks_pass, [c for c in result.checks if not c[1]]

    def test_dominant_is_compute_4(self, runner):
        assert run_fig8(runner).measured["dominant_superstep"] == 4

    def test_worker_imbalance_visible(self, runner):
        assert run_fig8(runner).measured["worker_imbalance"] > 1.1


class TestExtHadoop:
    def test_all_checks_pass(self, runner):
        from repro.experiments import run_hadoop_baseline
        result = run_hadoop_baseline(runner)
        assert result.all_checks_pass, [c for c in result.checks if not c[1]]

    def test_penalty_severe(self, runner):
        from repro.experiments import run_hadoop_baseline
        measured = run_hadoop_baseline(runner).measured
        assert measured["penalty_ratio"] >= 3.0
        assert measured["scan_amplification"] >= 5.0


class TestExtChokepoints:
    def test_all_checks_pass(self, runner):
        from repro.experiments.ext_chokepoints import run_chokepoints
        result = run_chokepoints(runner)
        assert result.all_checks_pass, [c for c in result.checks if not c[1]]

    def test_single_node_signature_detected(self, runner):
        from repro.experiments.ext_chokepoints import run_chokepoints
        measured = run_chokepoints(runner).measured
        top = measured["powergraph_top"][0]
        assert top[0] == "StreamEdges"
        assert top[2] == "cpu-bound-single-node"


class TestExtCrossPlatform:
    def test_all_checks_pass(self, runner):
        from repro.experiments.ext_cross_platform import run_cross_platform
        result = run_cross_platform(runner)
        assert result.all_checks_pass, [c for c in result.checks if not c[1]]

    def test_ordering(self, runner):
        from repro.experiments.ext_cross_platform import run_cross_platform
        order = run_cross_platform(runner).measured["order_fastest_first"]
        assert order[0] == "PGX.D"
        assert order[-1] == "Hadoop"


class TestExtSalvage:
    def test_all_checks_pass(self, runner):
        from repro.experiments.ext_salvage import run_salvage
        result = run_salvage(runner)
        assert result.all_checks_pass, [c for c in result.checks if not c[1]]

    def test_degraded_analysis_quantified(self, runner):
        from repro.experiments.ext_salvage import run_salvage
        measured = run_salvage(runner).measured
        assert 0 < measured["completeness"] < 1
        assert measured["measurable_fraction"] >= 0.56
        assert measured["deterministic_replay"] is True


class TestReport:
    def test_run_all_covers_every_artifact(self, runner):
        results = run_all(runner)
        assert len(results) == len(ALL_EXPERIMENTS) == 12
        assert all(r.all_checks_pass for r in results)

    def test_markdown_structure(self, runner):
        text = render_markdown(run_all(runner))
        assert text.startswith("# Experiments")
        for name in ("Table 1", "Figure 3", "Figure 4", "Figure 5",
                     "Figure 6", "Figure 7", "Figure 8"):
            assert f"## {name}" in text
        assert "reproduced" in text
        assert "MISMATCH" not in text
