"""Tests for the content-addressed artifact cache and its CLI.

Covers the corruption contract end to end: a damaged cached ``.npy``
(bit-flipped or truncated) must be detected by its checksum, dropped,
and transparently regenerated with a graph identical to the cold
build — a damaged cache degrades to a cold one, never to bad data.
"""

import json

import numpy as np
import pytest

from repro.cache import ArtifactCache, CacheError, content_key, default_cache
from repro.cli import main
from repro.workloads.datasets import (
    build_dataset,
    clear_cache,
    dataset_spec,
    spec_content_key,
)

DATASET = "dg-tiny"


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """Redirect the artifact cache to a fresh directory for each test."""
    root = tmp_path / "cache"
    monkeypatch.setenv("GRANULA_CACHE_DIR", str(root))
    clear_cache()
    yield root
    clear_cache()


def _csr_arrays(graph):
    csr = graph.csr()
    return np.asarray(csr.indptr).copy(), np.asarray(csr.indices).copy()


def _entry_dir(cache_dir):
    key = spec_content_key(dataset_spec(DATASET))
    return cache_dir / key[:2] / key


class TestDatasetCaching:
    def test_cold_build_populates_cache(self, cache_dir):
        graph = build_dataset(DATASET)
        entry = _entry_dir(cache_dir)
        assert (entry / "meta.json").is_file()
        meta = json.loads((entry / "meta.json").read_text())
        assert meta["kind"] == "datagen-csr"
        assert set(meta["arrays"]) == {"indptr", "indices"}
        assert graph.content_key == spec_content_key(dataset_spec(DATASET))

    def test_warm_build_loads_identical_graph(self, cache_dir):
        cold = _csr_arrays(build_dataset(DATASET))
        clear_cache()  # new process: in-memory memo gone, files remain
        warm = _csr_arrays(build_dataset(DATASET))
        assert np.array_equal(cold[0], warm[0])
        assert np.array_equal(cold[1], warm[1])

    @pytest.mark.parametrize("damage", ["flip", "truncate", "empty"])
    def test_damaged_npy_is_detected_and_regenerated(self, cache_dir,
                                                     damage):
        cold = _csr_arrays(build_dataset(DATASET))
        entry = _entry_dir(cache_dir)
        victim = entry / "indices.npy"
        payload = bytearray(victim.read_bytes())
        if damage == "flip":
            payload[len(payload) // 2] ^= 0xFF
            victim.write_bytes(bytes(payload))
        elif damage == "truncate":
            victim.write_bytes(bytes(payload[: len(payload) // 2]))
        else:
            victim.write_bytes(b"")

        # The damaged entry reads as a miss and is deleted on sight.
        key = spec_content_key(dataset_spec(DATASET))
        assert default_cache().get(key) is None
        assert not entry.exists()

        # Regeneration yields the same graph and repopulates the cache.
        clear_cache()
        rebuilt = _csr_arrays(build_dataset(DATASET))
        assert np.array_equal(cold[0], rebuilt[0])
        assert np.array_equal(cold[1], rebuilt[1])
        assert (entry / "meta.json").is_file()

    def test_damaged_meta_is_detected_and_regenerated(self, cache_dir):
        cold = _csr_arrays(build_dataset(DATASET))
        entry = _entry_dir(cache_dir)
        (entry / "meta.json").write_text("{ not json")
        key = spec_content_key(dataset_spec(DATASET))
        assert default_cache().get(key) is None
        clear_cache()
        rebuilt = _csr_arrays(build_dataset(DATASET))
        assert np.array_equal(cold[0], rebuilt[0])
        assert np.array_equal(cold[1], rebuilt[1])


class TestArtifactCache:
    def test_roundtrip(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = content_key("test", {"x": 1})
        cache.put(key, {"a": np.arange(5)}, kind="test", params={"x": 1})
        assert key in cache
        out = cache.get(key)
        assert np.array_equal(out["a"], np.arange(5))

    def test_rejects_malformed_keys(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        for bad in ("", "ab", "a/b/c", "..", "a.npy"):
            with pytest.raises(CacheError):
                cache.get(bad)

    def test_rejects_empty_artifact(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        with pytest.raises(CacheError):
            cache.put(content_key("test", {}), {})

    def test_gc_evicts_down_to_budget(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        for i in range(4):
            cache.put(content_key("test", {"i": i}),
                      {"a": np.zeros(1024, dtype=np.int64)},
                      kind="test", params={"i": i})
        total = sum(e.nbytes for e in cache.ls())
        stats = cache.gc(max_bytes=total // 2)
        assert stats["removed"] >= 1
        assert stats["bytes"] <= total // 2
        assert stats["kept"] == len(cache.ls())

    def test_clear_removes_everything(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cache.put(content_key("test", {}), {"a": np.arange(3)}, kind="test")
        assert cache.clear() == 1
        assert cache.ls() == []


class TestCacheCli:
    def test_ls_empty(self, cache_dir, capsys):
        assert main(["cache", "ls"]) == 0
        out = capsys.readouterr().out
        assert "0 entries" in out
        assert str(cache_dir) in out

    def test_ls_lists_dataset_entry(self, cache_dir, capsys):
        build_dataset(DATASET)
        assert main(["cache", "ls"]) == 0
        out = capsys.readouterr().out
        assert "datagen-csr" in out
        assert "1 entry," in out

    def test_gc_removes_broken_entries(self, cache_dir, capsys):
        build_dataset(DATASET)
        (_entry_dir(cache_dir) / "indices.npy").write_bytes(b"junk")
        assert main(["cache", "gc"]) == 0
        out = capsys.readouterr().out
        assert "removed 1 entry" in out
        assert default_cache().ls() == []

    def test_gc_with_budget(self, cache_dir, capsys):
        build_dataset(DATASET)
        assert main(["cache", "gc", "--max-bytes", "1"]) == 0
        out = capsys.readouterr().out
        assert "removed 1 entry" in out
        assert "kept 0" in out

    def test_clear(self, cache_dir, capsys):
        build_dataset(DATASET)
        assert main(["cache", "clear"]) == 0
        out = capsys.readouterr().out
        assert "cleared 1 entry" in out
        assert not _entry_dir(cache_dir).exists()
        # Idempotent: a second clear finds nothing.
        assert main(["cache", "clear"]) == 0
        assert "cleared 0 entries" in capsys.readouterr().out
