"""The PageRank Pipeline Benchmark workload: kernels, archive, CLI."""

from __future__ import annotations

import json

import pytest

from repro.core.archive.query import ArchiveQuery
from repro.core.archive.serialize import archive_from_json, archive_to_json
from repro.core.archive.store import ArchiveStore
from repro.errors import ReproError
from repro.graph.generators.kronecker import rmat_edges, rmat_graph
from repro.workloads.prpb import (
    PRPB_KERNELS,
    PrpbSpec,
    render_prpb_text,
    run_prpb,
)

SMALL = PrpbSpec(platform="Giraph", scale=7, edge_factor=4,
                 iterations=3, seed=5)


@pytest.fixture(scope="module")
def result():
    return run_prpb(SMALL)


class TestRmatEdgeStream:
    def test_stream_length_is_nominal(self):
        assert len(rmat_edges(6, edge_factor=4, seed=7)) == 4 * 64

    def test_stream_is_deterministic(self):
        assert rmat_edges(6, seed=7) == rmat_edges(6, seed=7)

    def test_graph_built_from_stream_matches_rmat_graph(self):
        stream = rmat_edges(6, edge_factor=4, seed=7)
        deduped = sorted({pair for pair in stream
                          if pair[0] != pair[1]})
        from repro.graph.graph import Graph
        assert Graph(64, deduped) == rmat_graph(6, edge_factor=4, seed=7)


class TestRunPrpb:
    def test_all_kernels_run_in_order(self, result):
        assert tuple(s.kernel for s in result.stages) == PRPB_KERNELS

    def test_intervals_are_contiguous(self, result):
        ops = result.archive.root.children
        assert [op.mission for op in ops] == list(PRPB_KERNELS)
        for earlier, later in zip(ops, ops[1:]):
            assert earlier.end_time == later.start_time
        assert result.archive.root.start_time == ops[0].start_time
        assert result.archive.root.end_time == ops[-1].end_time

    def test_pipeline_output_matches_rmat_graph(self, result):
        expected = rmat_graph(SMALL.scale, SMALL.edge_factor,
                              seed=SMALL.seed)
        assert result.num_vertices == expected.num_vertices
        assert result.num_edges == expected.num_edges

    def test_stage_infos(self, result):
        generate = result.stage("Generate")
        assert generate.edges == SMALL.edge_factor * (1 << SMALL.scale)
        build = result.stage("ReadBuild")
        assert build.infos["Vertices"] == 1 << SMALL.scale
        kernel = result.stage("PageRank")
        assert kernel.infos["Iterations"] == SMALL.iterations
        assert kernel.edges == result.num_edges * SMALL.iterations

    def test_archive_round_trips_and_queries(self, result):
        restored = archive_from_json(archive_to_json(result.archive))
        assert restored.metadata["workload"] == "prpb"
        query = ArchiveQuery(restored).path("PrpbPipeline/*")
        assert len(query) == 4
        total = ArchiveQuery(restored).path("PrpbPipeline/*").total()
        assert total == pytest.approx(result.total_seconds)

    def test_cross_engine(self):
        spec = PrpbSpec(platform="PGX.D", scale=6, edge_factor=4,
                        iterations=2, seed=5)
        out = run_prpb(spec)
        assert out.archive.platform == "PGX.D"
        assert tuple(s.kernel for s in out.stages) == PRPB_KERNELS

    def test_store_gets_archive_and_sidecar(self, tmp_path):
        store = ArchiveStore(tmp_path)
        spec = PrpbSpec(platform="Hadoop", scale=6, edge_factor=4,
                        iterations=2, seed=5)
        run_prpb(spec, store=store)
        assert spec.label() in store
        assert store.sidecar_path(spec.label()).exists()

    def test_render_text(self, result):
        text = render_prpb_text(result)
        for kernel in PRPB_KERNELS:
            assert kernel in text
        assert "TOTAL" in text

    def test_spec_validation(self):
        with pytest.raises(ReproError):
            PrpbSpec(platform="Spark")
        with pytest.raises(ReproError):
            PrpbSpec(scale=-1)
        with pytest.raises(ReproError):
            PrpbSpec(edge_factor=0)
        with pytest.raises(ReproError):
            PrpbSpec(iterations=0)


class TestPrpbCli:
    def test_run_workload_prpb(self, capsys, tmp_path):
        from repro.cli import main
        assert main(["run", "Giraph", "--workload", "prpb",
                     "--scale", "6", "--edge-factor", "4",
                     "--iterations", "2",
                     "--out", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "PRPB prpb-giraph-s6-e4" in out
        assert "PageRank" in out
        stored = json.loads(
            (tmp_path / "store" / "prpb-giraph-s6-e4.json").read_text())
        assert stored["metadata"]["workload"] == "prpb"

    def test_prpb_rejects_positional_algorithm(self, capsys):
        from repro.cli import main
        assert main(["run", "Giraph", "pagerank", "--workload",
                     "prpb"]) == 2
        assert "generates its own" in capsys.readouterr().err

    def test_standard_run_still_requires_axes(self, capsys):
        from repro.cli import main
        assert main(["run", "Giraph"]) == 2
        assert "ALGORITHM and DATASET" in capsys.readouterr().err
