"""Determinism properties of the parallel run harness.

The contract from the issue: archives produced through the parallel
fan-out (``run_many(jobs=N)``) are byte-identical to a serial run, and
archives produced against a warm artifact cache are byte-identical to
a cold-cache run.  The test forces the process pool on via a CPU-count
override — on a one-CPU box the harness deliberately clamps to serial.
"""

from __future__ import annotations

import pytest

from repro.core.archive.serialize import archive_to_json
from repro.workloads import parallel
from repro.workloads.datasets import clear_cache
from repro.workloads.parallel import RunRequest, available_cpus, execute_parallel
from repro.workloads.runner import WorkloadRunner
from repro.workloads.spec import WorkloadSpec
from repro.platforms.faults import FaultPlan, WorkerCrash

#: The five Giraph programs from the acceptance criteria, plus one
#: faulted run (worker crash + checkpoint recovery) riding along.
PROGRAMS = ("bfs", "pagerank", "wcc", "sssp", "cdlp")

FAULTS = FaultPlan(
    events=(WorkerCrash(worker=1, superstep=2),),
    checkpoint_interval=2,
    seed=13,
)


def _requests():
    specs = [
        WorkloadSpec("Giraph", algorithm, "dg-tiny", workers=4)
        for algorithm in PROGRAMS
    ]
    return [RunRequest(spec) for spec in specs] + [
        RunRequest(WorkloadSpec("Giraph", "bfs", "dg-tiny", workers=4),
                   faults=FAULTS)
    ]


def _archives(runner, jobs=None):
    return [
        archive_to_json(iteration.archive)
        for iteration in runner.run_many(_requests(), jobs=jobs)
    ]


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("GRANULA_CACHE_DIR", str(tmp_path / "cache"))
    clear_cache()
    yield tmp_path / "cache"
    clear_cache()


class TestParallelDeterminism:
    def test_parallel_matches_serial_byte_for_byte(self, cache_dir,
                                                   monkeypatch):
        serial = _archives(WorkloadRunner())
        # Force the pool even on a one-CPU machine: determinism must
        # hold when the fan-out actually forks.
        monkeypatch.setattr(parallel, "available_cpus", lambda: 4)
        parallel_out = _archives(WorkloadRunner(), jobs=4)
        assert serial == parallel_out

    def test_jobs_on_one_cpu_falls_back_to_serial(self, cache_dir,
                                                  monkeypatch):
        monkeypatch.setattr(parallel, "available_cpus", lambda: 1)
        runner = WorkloadRunner()
        out = execute_parallel(
            _requests(), jobs=4, library=runner.library,
            n_nodes=runner.n_nodes, engine_mode=runner.engine_mode,
        )
        assert out is None
        # run_many still completes (serially) and stays deterministic.
        assert _archives(runner, jobs=4) == _archives(WorkloadRunner())

    def test_warm_cache_matches_cold_byte_for_byte(self, cache_dir):
        cold = _archives(WorkloadRunner())
        assert cache_dir.is_dir()  # the cold run populated the cache
        clear_cache()  # drop the in-process memo; disk cache stays warm
        warm = _archives(WorkloadRunner())
        assert cold == warm

    def test_run_many_dedupes_and_aligns(self, cache_dir):
        runner = WorkloadRunner()
        spec = WorkloadSpec("Giraph", "bfs", "dg-tiny", workers=4)
        requests = [RunRequest(spec), RunRequest(spec)]
        first, second = runner.run_many(requests)
        assert first is second  # memoized, not re-executed


class TestAvailableCpus:
    def test_reports_at_least_one(self):
        assert available_cpus() >= 1
