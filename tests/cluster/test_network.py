"""Unit tests for the network cost model."""

import pytest

from repro.cluster.network import NetworkModel, das5_network
from repro.errors import ClusterError


class TestNetworkModel:
    def test_transfer_time_includes_latency(self):
        net = NetworkModel(latency_s=1e-3, bandwidth_bps=1e6)
        assert net.transfer_time(1_000_000) == pytest.approx(1.001)

    def test_local_transfer_skips_latency(self):
        net = NetworkModel(latency_s=1.0, bandwidth_bps=1e6,
                           local_bandwidth_bps=1e7)
        assert net.transfer_time(1_000_000, local=True) == pytest.approx(0.1)

    def test_zero_bytes_costs_latency_only(self):
        net = NetworkModel(latency_s=0.5)
        assert net.transfer_time(0) == pytest.approx(0.5)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ClusterError):
            das5_network().transfer_time(-1)

    def test_negative_latency_rejected(self):
        with pytest.raises(ClusterError):
            NetworkModel(latency_s=-1.0)

    def test_nonpositive_bandwidth_rejected(self):
        with pytest.raises(ClusterError):
            NetworkModel(bandwidth_bps=0)

    def test_broadcast_zero_receivers_free(self):
        assert das5_network().broadcast_time(1000, 0) == 0.0

    def test_broadcast_scales_logarithmically(self):
        net = NetworkModel(latency_s=0.0, bandwidth_bps=1e6)
        one = net.broadcast_time(1_000_000, 1)
        seven = net.broadcast_time(1_000_000, 7)
        assert seven == pytest.approx(3 * one)

    def test_broadcast_negative_receivers_rejected(self):
        with pytest.raises(ClusterError):
            das5_network().broadcast_time(10, -1)

    def test_allreduce_single_participant_free(self):
        assert das5_network().allreduce_time(100, 1) == 0.0
        assert das5_network().allreduce_time(100, 0) == 0.0

    def test_allreduce_is_two_tree_waves(self):
        net = NetworkModel(latency_s=1e-3, bandwidth_bps=1e9)
        per_hop = net.transfer_time(64)
        assert net.allreduce_time(64, 8) == pytest.approx(2 * 3 * per_hop)

    def test_allreduce_negative_rejected(self):
        with pytest.raises(ClusterError):
            das5_network().allreduce_time(10, -2)

    def test_shuffle_single_participant_free(self):
        assert das5_network().shuffle_time(100, 1) == 0.0

    def test_shuffle_scales_with_peers(self):
        net = NetworkModel(latency_s=0.0, bandwidth_bps=1e6)
        assert net.shuffle_time(1_000_000, 5) == pytest.approx(4.0)

    def test_das5_profile(self):
        net = das5_network()
        assert net.latency_s == pytest.approx(50e-6)
        assert net.bandwidth_bps == pytest.approx(6.0e9)
