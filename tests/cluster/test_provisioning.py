"""Unit tests for Yarn/MPI/native provisioning."""

import pytest

from repro.cluster.clock import SimClock
from repro.cluster.node import Node
from repro.cluster.provisioning import MpiLauncher, NativeLauncher, YarnManager
from repro.errors import ProvisioningError


def make_nodes(n=4):
    return [Node(f"n{i}", cores=16) for i in range(n)]


class TestYarnManager:
    def test_requires_nodes(self):
        with pytest.raises(ProvisioningError):
            YarnManager([], SimClock())

    def test_allocate_advances_clock(self):
        clock = SimClock()
        yarn = YarnManager(make_nodes(), clock)
        yarn.allocate(4)
        expected = yarn.am_negotiation_s + yarn.container_launch_s
        assert clock.now() == pytest.approx(expected)

    def test_allocation_rounds(self):
        clock = SimClock()
        yarn = YarnManager(make_nodes(8), clock, containers_per_round=4)
        yarn.allocate(8)
        expected = yarn.am_negotiation_s + 2 * yarn.container_launch_s
        assert clock.now() == pytest.approx(expected)

    def test_allocation_charges_light_cpu(self):
        nodes = make_nodes()
        yarn = YarnManager(nodes, SimClock())
        yarn.allocate(4)
        for node in nodes:
            cpu = node.cpu.cpu_seconds_between(0.0, 100.0)
            assert 0.0 < cpu < 1.0  # bookkeeping only

    def test_allocate_too_many_rejected(self):
        yarn = YarnManager(make_nodes(2), SimClock())
        with pytest.raises(ProvisioningError):
            yarn.allocate(3)

    def test_allocate_nonpositive_rejected(self):
        yarn = YarnManager(make_nodes(), SimClock())
        with pytest.raises(ProvisioningError):
            yarn.allocate(0)

    def test_release_marks_inactive(self):
        clock = SimClock()
        yarn = YarnManager(make_nodes(), clock)
        alloc = yarn.allocate(2)
        before = clock.now()
        yarn.release(alloc)
        assert not alloc.active
        assert alloc.released_at > before
        assert yarn.active_allocations == []

    def test_double_release_rejected(self):
        yarn = YarnManager(make_nodes(), SimClock())
        alloc = yarn.allocate(2)
        yarn.release(alloc)
        with pytest.raises(ProvisioningError):
            yarn.release(alloc)

    def test_allocation_node_names(self):
        yarn = YarnManager(make_nodes(), SimClock())
        alloc = yarn.allocate(3)
        assert alloc.node_names == ["n0", "n1", "n2"]

    def test_trace_records_events(self):
        yarn = YarnManager(make_nodes(), SimClock())
        yarn.allocate(2)
        names = [e.name for e in yarn.trace.by_category("yarn")]
        assert "allocation_requested" in names
        assert "allocation_granted" in names
        assert names.count("container_started") == 2


class TestMpiLauncher:
    def test_launch_faster_than_yarn(self):
        clock_mpi, clock_yarn = SimClock(), SimClock()
        MpiLauncher(make_nodes(8), clock_mpi).launch(8)
        YarnManager(make_nodes(8), clock_yarn).allocate(8)
        assert clock_mpi.now() < clock_yarn.now()

    def test_launch_too_many_rejected(self):
        launcher = MpiLauncher(make_nodes(2), SimClock())
        with pytest.raises(ProvisioningError):
            launcher.launch(3)

    def test_finalize(self):
        clock = SimClock()
        launcher = MpiLauncher(make_nodes(), clock)
        alloc = launcher.launch(4)
        launcher.finalize(alloc)
        assert not alloc.active

    def test_double_finalize_rejected(self):
        launcher = MpiLauncher(make_nodes(), SimClock())
        alloc = launcher.launch(2)
        launcher.finalize(alloc)
        with pytest.raises(ProvisioningError):
            launcher.finalize(alloc)

    def test_requires_nodes(self):
        with pytest.raises(ProvisioningError):
            MpiLauncher([], SimClock())


class TestNativeLauncher:
    def test_launch_and_terminate(self):
        clock = SimClock()
        node = Node("solo")
        launcher = NativeLauncher(node, clock)
        alloc = launcher.launch()
        assert alloc.node_names == ["solo"]
        assert clock.now() == pytest.approx(launcher.fork_s)
        launcher.terminate(alloc)
        assert not alloc.active

    def test_double_terminate_rejected(self):
        launcher = NativeLauncher(Node("solo"), SimClock())
        alloc = launcher.launch()
        launcher.terminate(alloc)
        with pytest.raises(ProvisioningError):
            launcher.terminate(alloc)
