"""Unit tests for the deterministic retry policies."""

import pytest

from repro.cluster.clock import SimClock
from repro.cluster.node import Node
from repro.cluster.provisioning import YarnManager
from repro.cluster.retry import (
    CONTAINER_RETRY,
    HDFS_READ_RETRY,
    LOADER_RETRY,
    RetryPolicy,
)
from repro.errors import ClusterError, ProvisioningError


class TestRetryPolicyValidation:
    def test_defaults_valid(self):
        RetryPolicy()
        for policy in (CONTAINER_RETRY, HDFS_READ_RETRY, LOADER_RETRY):
            assert policy.max_attempts >= 1

    def test_rejects_zero_attempts(self):
        with pytest.raises(ClusterError):
            RetryPolicy(max_attempts=0)

    def test_rejects_negative_backoff(self):
        with pytest.raises(ClusterError):
            RetryPolicy(base_backoff_s=-1.0)

    def test_rejects_shrinking_backoff(self):
        with pytest.raises(ClusterError):
            RetryPolicy(backoff_factor=0.5)

    def test_rejects_cap_below_base(self):
        with pytest.raises(ClusterError):
            RetryPolicy(base_backoff_s=5.0, max_backoff_s=1.0)

    def test_rejects_bad_timeout(self):
        with pytest.raises(ClusterError):
            RetryPolicy(attempt_timeout_s=0.0)


class TestBackoff:
    def test_exponential_growth(self):
        policy = RetryPolicy(base_backoff_s=1.0, backoff_factor=2.0,
                             max_backoff_s=100.0)
        assert policy.backoff_s(1) == pytest.approx(1.0)
        assert policy.backoff_s(2) == pytest.approx(2.0)
        assert policy.backoff_s(3) == pytest.approx(4.0)

    def test_capped(self):
        policy = RetryPolicy(base_backoff_s=1.0, backoff_factor=10.0,
                             max_backoff_s=5.0)
        assert policy.backoff_s(3) == pytest.approx(5.0)

    def test_rejects_bad_index(self):
        with pytest.raises(ClusterError):
            RetryPolicy().backoff_s(0)

    def test_timeout_caps_attempt(self):
        policy = RetryPolicy(attempt_timeout_s=2.0)
        assert policy.attempt_duration(10.0) == pytest.approx(2.0)
        assert policy.attempt_duration(1.0) == pytest.approx(1.0)


class TestSchedule:
    def test_healthy_single_attempt(self):
        schedule = RetryPolicy().schedule(10.0, 3.0, failures=0)
        assert schedule.succeeded
        assert len(schedule.attempts) == 1
        assert schedule.attempts[0].ok
        assert schedule.end == pytest.approx(13.0)
        assert schedule.retries == []
        assert schedule.wasted_s == pytest.approx(0.0)

    def test_one_failure_then_success(self):
        policy = RetryPolicy(max_attempts=3, base_backoff_s=1.0,
                             backoff_factor=2.0, max_backoff_s=10.0)
        schedule = policy.schedule(0.0, 2.0, failures=1)
        assert schedule.succeeded
        assert [a.ok for a in schedule.attempts] == [False, True]
        # failed attempt [0,2), backoff 1s, retry [3,5)
        assert schedule.attempts[1].start == pytest.approx(3.0)
        assert schedule.end == pytest.approx(5.0)
        assert schedule.wasted_s == pytest.approx(2.0)
        assert len(schedule.retries) == 1

    def test_exhausted(self):
        policy = RetryPolicy(max_attempts=3, base_backoff_s=1.0,
                             backoff_factor=1.0, max_backoff_s=1.0)
        schedule = policy.schedule(0.0, 2.0, failures=3)
        assert not schedule.succeeded
        assert len(schedule.attempts) == 3
        assert all(not a.ok for a in schedule.attempts)
        assert schedule.wasted_s == pytest.approx(6.0)

    def test_no_backoff_after_final_failure(self):
        policy = RetryPolicy(max_attempts=2, base_backoff_s=5.0,
                             backoff_factor=1.0, max_backoff_s=5.0)
        schedule = policy.schedule(0.0, 1.0, failures=2)
        # attempt 1 [0,1), backoff 5, attempt 2 [6,7): no trailing backoff
        assert schedule.end == pytest.approx(7.0)

    def test_deterministic(self):
        policy = RetryPolicy(max_attempts=4, base_backoff_s=0.5)
        a = policy.schedule(3.0, 1.5, failures=2)
        b = policy.schedule(3.0, 1.5, failures=2)
        assert a == b

    def test_rejects_negative_inputs(self):
        with pytest.raises(ClusterError):
            RetryPolicy().schedule(0.0, -1.0, 0)
        with pytest.raises(ClusterError):
            RetryPolicy().schedule(0.0, 1.0, -1)


class TestYarnRetryIntegration:
    def make_yarn(self, n=4):
        nodes = [Node(f"n{i}", cores=16) for i in range(n)]
        return nodes, YarnManager(nodes, SimClock())

    def test_healthy_path_unchanged(self):
        _, yarn = self.make_yarn()
        alloc = yarn.allocate(4)
        assert alloc.retries == []
        assert alloc.blacklisted == []
        assert len(alloc.nodes) == 4

    def test_transient_failure_retried(self):
        nodes, yarn = self.make_yarn()
        healthy_end = (yarn.am_negotiation_s + yarn.container_launch_s)
        alloc = yarn.allocate(4, launch_failures={"n1": 1})
        assert len(alloc.nodes) == 4
        assert [r.node for r in alloc.retries] == ["n1"]
        assert alloc.retries[0].ok
        assert alloc.granted_at > healthy_end

    def test_exhausted_node_blacklisted(self):
        nodes, yarn = self.make_yarn()
        failures = {"n2": CONTAINER_RETRY.max_attempts}
        alloc = yarn.allocate(4, launch_failures=failures)
        assert alloc.blacklisted == ["n2"]
        assert len(alloc.nodes) == 3
        assert "n2" not in alloc.node_names

    def test_all_nodes_dead_raises(self):
        _, yarn = self.make_yarn(2)
        failures = {"n0": 99, "n1": 99}
        with pytest.raises(ProvisioningError):
            yarn.allocate(2, launch_failures=failures)
