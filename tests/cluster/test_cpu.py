"""Unit tests for CPU accounting and usage series."""

import pytest

from repro.cluster.cpu import BusyInterval, CpuAccount, UsageSeries, merge_series
from repro.errors import ClusterError


class TestBusyInterval:
    def test_duration_and_cpu_seconds(self):
        interval = BusyInterval(1.0, 3.0, 2.0, "load")
        assert interval.duration == 2.0
        assert interval.cpu_seconds == 4.0

    def test_rejects_reversed_interval(self):
        with pytest.raises(ClusterError):
            BusyInterval(3.0, 1.0, 1.0)

    def test_rejects_negative_cores(self):
        with pytest.raises(ClusterError):
            BusyInterval(0.0, 1.0, -0.5)

    def test_zero_length_interval_allowed(self):
        assert BusyInterval(1.0, 1.0, 4.0).cpu_seconds == 0.0

    def test_overlap_full_window(self):
        interval = BusyInterval(1.0, 3.0, 2.0)
        assert interval.overlap(0.0, 10.0) == 4.0

    def test_overlap_partial_window(self):
        interval = BusyInterval(1.0, 3.0, 2.0)
        assert interval.overlap(2.0, 10.0) == 2.0

    def test_overlap_disjoint_window(self):
        interval = BusyInterval(1.0, 3.0, 2.0)
        assert interval.overlap(5.0, 6.0) == 0.0


class TestCpuAccount:
    def test_requires_positive_cores(self):
        with pytest.raises(ClusterError):
            CpuAccount(0)

    def test_record_clamps_to_physical_cores(self):
        account = CpuAccount(4)
        interval = account.record(0.0, 1.0, 100.0)
        assert interval.cores == 4.0

    def test_cpu_seconds_between_sums_overlaps(self):
        account = CpuAccount(8)
        account.record(0.0, 2.0, 1.0)
        account.record(1.0, 3.0, 2.0)
        assert account.cpu_seconds_between(0.0, 3.0) == pytest.approx(6.0)
        assert account.cpu_seconds_between(1.0, 2.0) == pytest.approx(3.0)

    def test_busy_cores_at_instant(self):
        account = CpuAccount(8)
        account.record(0.0, 2.0, 1.0)
        account.record(1.0, 3.0, 2.0)
        assert account.busy_cores_at(0.5) == 1.0
        assert account.busy_cores_at(1.5) == 3.0
        assert account.busy_cores_at(2.5) == 2.0
        assert account.busy_cores_at(5.0) == 0.0

    def test_span_empty(self):
        assert CpuAccount(2).span() == (0.0, 0.0)

    def test_span_covers_all_intervals(self):
        account = CpuAccount(2)
        account.record(1.0, 2.0, 1.0)
        account.record(5.0, 9.0, 1.0)
        assert account.span() == (1.0, 9.0)

    def test_by_tag_aggregation(self):
        account = CpuAccount(8)
        account.record(0.0, 1.0, 2.0, "load")
        account.record(1.0, 2.0, 2.0, "load")
        account.record(2.0, 3.0, 1.0, "compute")
        totals = account.by_tag()
        assert totals["load"] == pytest.approx(4.0)
        assert totals["compute"] == pytest.approx(1.0)

    def test_clear_drops_intervals(self):
        account = CpuAccount(2)
        account.record(0.0, 1.0, 1.0)
        account.clear()
        assert account.cpu_seconds_between(0.0, 10.0) == 0.0

    def test_sample_average_cores(self):
        account = CpuAccount(8)
        account.record(0.0, 1.0, 4.0)
        series = account.sample(0.0, 2.0, step=1.0)
        assert series.values == [4.0, 0.0]

    def test_sample_sub_step_interval(self):
        account = CpuAccount(8)
        account.record(0.25, 0.75, 2.0)
        series = account.sample(0.0, 1.0, step=1.0)
        assert series.values == [pytest.approx(1.0)]

    def test_sample_rejects_bad_step(self):
        with pytest.raises(ClusterError):
            CpuAccount(2).sample(0.0, 1.0, step=0.0)

    def test_sample_rejects_reversed_window(self):
        with pytest.raises(ClusterError):
            CpuAccount(2).sample(1.0, 0.0)

    def test_sample_empty_window(self):
        series = CpuAccount(2).sample(0.0, 0.0)
        assert len(series) == 0


class TestUsageSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ClusterError):
            UsageSeries(times=[0.0], values=[], step=1.0)

    def test_total_cpu_seconds(self):
        series = UsageSeries(times=[0.0, 1.0], values=[2.0, 3.0], step=1.0)
        assert series.total_cpu_seconds == pytest.approx(5.0)

    def test_peak_and_mean(self):
        series = UsageSeries(times=[0.0, 1.0], values=[2.0, 4.0], step=1.0)
        assert series.peak == 4.0
        assert series.mean() == pytest.approx(3.0)

    def test_empty_series_stats(self):
        series = UsageSeries(times=[], values=[], step=1.0)
        assert series.peak == 0.0
        assert series.mean() == 0.0

    def test_iteration_pairs(self):
        series = UsageSeries(times=[0.0, 1.0], values=[1.0, 2.0], step=1.0)
        assert list(series) == [(0.0, 1.0), (1.0, 2.0)]

    def test_window_filters_samples(self):
        series = UsageSeries(
            times=[0.0, 1.0, 2.0], values=[1.0, 2.0, 3.0], step=1.0
        )
        window = series.window(1.0, 2.0)
        assert window.times == [1.0]
        assert window.values == [2.0]


class TestMergeSeries:
    def test_merge_empty_returns_none(self):
        assert merge_series([]) is None

    def test_merge_sums_values(self):
        a = UsageSeries(times=[0.0, 1.0], values=[1.0, 2.0], step=1.0)
        b = UsageSeries(times=[0.0, 1.0], values=[3.0, 4.0], step=1.0)
        merged = merge_series([a, b])
        assert merged.values == [4.0, 6.0]

    def test_merge_rejects_misaligned(self):
        a = UsageSeries(times=[0.0], values=[1.0], step=1.0)
        b = UsageSeries(times=[0.5], values=[1.0], step=1.0)
        with pytest.raises(ClusterError):
            merge_series([a, b])
