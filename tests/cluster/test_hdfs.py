"""Unit tests for the HDFS-like filesystem."""

import pytest

from repro.cluster.filesystem import StorageModel
from repro.cluster.hdfs import HdfsFileSystem
from repro.errors import FileSystemError

NODES = ["n0", "n1", "n2", "n3"]


def make_fs(block_size=100, replication=2) -> HdfsFileSystem:
    return HdfsFileSystem(NODES, block_size=block_size,
                          replication=replication)


class TestHdfsPut:
    def test_splits_into_blocks(self):
        fs = make_fs(block_size=100)
        f = fs.put("/x", 250)
        assert [b.size_bytes for b in f.blocks] == [100, 100, 50]

    def test_block_indices_sequential(self):
        fs = make_fs()
        f = fs.put("/x", 250)
        assert [b.index for b in f.blocks] == [0, 1, 2]

    def test_replicas_round_robin(self):
        fs = make_fs(block_size=100, replication=2)
        f = fs.put("/x", 300)
        assert list(f.blocks[0].replicas) == ["n0", "n1"]
        assert list(f.blocks[1].replicas) == ["n1", "n2"]
        assert f.blocks[0].primary == "n0"

    def test_replication_clamped_to_nodes(self):
        fs = HdfsFileSystem(["a", "b"], replication=5)
        assert fs.replication == 2

    def test_empty_file_single_empty_block(self):
        fs = make_fs()
        f = fs.put("/empty", 0)
        assert len(f.blocks) == 1
        assert f.blocks[0].size_bytes == 0

    def test_relative_path_rejected(self):
        with pytest.raises(FileSystemError):
            make_fs().put("x", 10)

    def test_negative_size_rejected(self):
        with pytest.raises(FileSystemError):
            make_fs().put("/x", -1)

    def test_requires_datanodes(self):
        with pytest.raises(FileSystemError):
            HdfsFileSystem([])

    def test_invalid_block_size_rejected(self):
        with pytest.raises(FileSystemError):
            HdfsFileSystem(NODES, block_size=0)


class TestHdfsNamespace:
    def test_get_and_exists(self):
        fs = make_fs()
        fs.put("/x", 10)
        assert fs.exists("/x")
        assert fs.get("/x").size_bytes == 10

    def test_get_missing_raises(self):
        with pytest.raises(FileSystemError):
            make_fs().get("/missing")

    def test_delete(self):
        fs = make_fs()
        fs.put("/x", 10)
        fs.delete("/x")
        assert not fs.exists("/x")

    def test_delete_missing_raises(self):
        with pytest.raises(FileSystemError):
            make_fs().delete("/x")

    def test_listdir(self):
        fs = make_fs()
        fs.put("/in/a", 1)
        fs.put("/in/b", 1)
        fs.put("/out/c", 1)
        assert fs.listdir("/in/") == ["/in/a", "/in/b"]

    def test_total_bytes_logical(self):
        fs = make_fs()
        fs.put("/x", 250)
        assert fs.total_bytes() == 250


class TestHdfsSplits:
    def test_blocks_on_node(self):
        fs = make_fs(block_size=100, replication=2)
        fs.put("/x", 400)
        blocks = fs.blocks_on("/x", "n1")
        # n1 holds replicas of blocks 0 (secondary) and 1 (primary).
        assert {b.index for b in blocks} == {0, 1}

    def test_assign_splits_covers_all_blocks(self):
        fs = make_fs(block_size=100)
        fs.put("/x", 950)
        assignment = fs.assign_splits("/x", NODES)
        assigned = [b for blocks in assignment.values() for b in blocks]
        assert len(assigned) == 10

    def test_assign_splits_prefers_locality(self):
        fs = make_fs(block_size=100, replication=1)
        fs.put("/x", 400)
        assignment = fs.assign_splits("/x", NODES)
        for reader, blocks in assignment.items():
            for block in blocks:
                assert reader in block.replicas

    def test_assign_splits_balances_load(self):
        fs = make_fs(block_size=100, replication=4)
        fs.put("/x", 1200)
        assignment = fs.assign_splits("/x", NODES)
        counts = sorted(len(blocks) for blocks in assignment.values())
        assert counts == [3, 3, 3, 3]

    def test_assign_splits_foreign_readers(self):
        fs = make_fs(block_size=100, replication=1)
        fs.put("/x", 300)
        assignment = fs.assign_splits("/x", ["other1", "other2"])
        total = sum(len(b) for b in assignment.values())
        assert total == 3

    def test_assign_splits_requires_readers(self):
        fs = make_fs()
        fs.put("/x", 10)
        with pytest.raises(FileSystemError):
            fs.assign_splits("/x", [])


class TestHdfsTiming:
    def test_remote_read_slower_than_local(self):
        fs = make_fs()
        assert fs.read_time(10_000_000, local=False) > fs.read_time(
            10_000_000, local=True
        )

    def test_write_time_scales_with_replication(self):
        storage = StorageModel(write_bps=1e6, seek_s=0.0)
        fs2 = HdfsFileSystem(NODES, replication=2, storage=storage)
        fs3 = HdfsFileSystem(NODES, replication=3, storage=storage)
        assert fs3.write_time(1_000_000) > fs2.write_time(1_000_000)

    def test_negative_sizes_rejected(self):
        fs = make_fs()
        with pytest.raises(FileSystemError):
            fs.read_time(-1, local=True)
        with pytest.raises(FileSystemError):
            fs.write_time(-1)
