"""Unit tests for the Cluster aggregate and tracing."""

import pytest

from repro.cluster.cluster import (
    Cluster,
    DAS5_GIRAPH_NODES,
    DAS5_POWERGRAPH_NODES,
    das5_cluster,
)
from repro.cluster.node import Node
from repro.cluster.tracing import Trace
from repro.errors import ClusterError


class TestCluster:
    def test_requires_nodes(self):
        with pytest.raises(ClusterError):
            Cluster([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ClusterError):
            Cluster([Node("a"), Node("a")])

    def test_size_and_names(self):
        cluster = das5_cluster(4)
        assert cluster.size == 4
        assert len(cluster.node_names) == 4

    def test_node_lookup(self):
        cluster = das5_cluster(2)
        name = cluster.node_names[0]
        assert cluster.node(name).name == name

    def test_node_lookup_missing(self):
        with pytest.raises(ClusterError):
            das5_cluster(2).node("nope")

    def test_custom_names(self):
        cluster = das5_cluster(8, node_names=DAS5_GIRAPH_NODES)
        assert cluster.node_names == list(DAS5_GIRAPH_NODES)

    def test_name_count_mismatch_rejected(self):
        with pytest.raises(ClusterError):
            das5_cluster(3, node_names=["a", "b"])

    def test_per_node_local_fs(self):
        cluster = das5_cluster(2)
        a, b = cluster.node_names
        cluster.local_fs[a].put("/x", 10)
        assert not cluster.local_fs[b].exists("/x")

    def test_hdfs_spans_all_nodes(self):
        cluster = das5_cluster(3)
        assert cluster.hdfs.datanodes == cluster.node_names

    def test_reset_clears_clock_and_cpu_but_keeps_data(self):
        cluster = das5_cluster(2)
        cluster.shared_fs.put("/data", 100)
        cluster.clock.advance(10)
        cluster.nodes[0].work(0.0, 1.0, 1.0)
        cluster.trace.emit(1.0, "test", "event")
        cluster.reset()
        assert cluster.clock.now() == 0.0
        assert cluster.nodes[0].cpu.cpu_seconds_between(0, 100) == 0.0
        assert len(cluster.trace) == 0
        assert cluster.shared_fs.exists("/data")

    def test_parallel_work_advances_to_max(self):
        cluster = das5_cluster(3)
        names = cluster.node_names
        span = cluster.parallel_work(
            {names[0]: 1.0, names[1]: 3.0, names[2]: 2.0}, 2.0, "phase"
        )
        assert span == 3.0
        assert cluster.clock.now() == 3.0

    def test_parallel_work_without_advance(self):
        cluster = das5_cluster(2)
        cluster.parallel_work({cluster.node_names[0]: 5.0}, 1.0, "x",
                              advance=False)
        assert cluster.clock.now() == 0.0

    def test_parallel_work_rejects_negative(self):
        cluster = das5_cluster(1)
        with pytest.raises(ClusterError):
            cluster.parallel_work({cluster.node_names[0]: -1.0}, 1.0, "x")

    def test_parallel_work_empty_is_noop(self):
        cluster = das5_cluster(1)
        assert cluster.parallel_work({}, 1.0, "x") == 0.0

    def test_paper_node_lists_are_disjoint(self):
        assert not set(DAS5_GIRAPH_NODES) & set(DAS5_POWERGRAPH_NODES)


class TestTrace:
    def test_emit_and_query(self):
        trace = Trace()
        trace.emit(1.0, "hdfs", "read", node="n1", nbytes=10)
        trace.emit(2.0, "yarn", "launch", node="n2")
        assert len(trace) == 2
        assert trace.by_category("hdfs")[0].payload == {"nbytes": 10}
        assert trace.by_node("n2")[0].name == "launch"

    def test_clear(self):
        trace = Trace()
        trace.emit(1.0, "a", "b")
        trace.clear()
        assert len(trace) == 0

    def test_iteration_order(self):
        trace = Trace()
        trace.emit(1.0, "c", "first")
        trace.emit(2.0, "c", "second")
        assert [e.name for e in trace] == ["first", "second"]
