"""Unit tests for the simulated clock."""

import pytest

from repro.cluster.clock import SimClock
from repro.errors import ClockError


class TestSimClock:
    def test_starts_at_origin(self):
        assert SimClock().now() == 0.0

    def test_custom_origin(self):
        clock = SimClock(origin=10.0)
        assert clock.now() == 10.0
        assert clock.origin == 10.0

    def test_negative_origin_rejected(self):
        with pytest.raises(ClockError):
            SimClock(origin=-1.0)

    def test_advance_moves_forward(self):
        clock = SimClock()
        assert clock.advance(2.5) == 2.5
        assert clock.now() == 2.5

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.0)
        clock.advance(0.5)
        assert clock.now() == pytest.approx(1.5)

    def test_advance_zero_allowed(self):
        clock = SimClock()
        clock.advance(0.0)
        assert clock.now() == 0.0

    def test_advance_negative_rejected(self):
        clock = SimClock()
        with pytest.raises(ClockError):
            clock.advance(-0.1)

    def test_advance_to_absolute(self):
        clock = SimClock()
        clock.advance_to(7.0)
        assert clock.now() == 7.0

    def test_advance_to_past_rejected(self):
        clock = SimClock()
        clock.advance(5.0)
        with pytest.raises(ClockError):
            clock.advance_to(4.9)

    def test_advance_to_now_allowed(self):
        clock = SimClock()
        clock.advance(3.0)
        clock.advance_to(3.0)
        assert clock.now() == 3.0

    def test_elapsed_relative_to_origin(self):
        clock = SimClock(origin=100.0)
        clock.advance(2.0)
        assert clock.elapsed() == pytest.approx(2.0)

    def test_reset_returns_to_origin(self):
        clock = SimClock(origin=5.0)
        clock.advance(10.0)
        clock.reset()
        assert clock.now() == 5.0

    def test_repr_mentions_time(self):
        clock = SimClock()
        clock.advance(1.25)
        assert "1.25" in repr(clock)
