"""Unit tests for simulated nodes."""

import pytest

from repro.cluster.node import Node, das5_node
from repro.errors import ClusterError


class TestNode:
    def test_requires_name(self):
        with pytest.raises(ClusterError):
            Node("")

    def test_requires_positive_memory(self):
        with pytest.raises(ClusterError):
            Node("n1", memory_bytes=0)

    def test_das5_node_shape(self):
        node = das5_node("node340")
        assert node.name == "node340"
        assert node.cores == 16
        assert node.memory_bytes == 64 << 30

    def test_work_records_interval(self):
        node = Node("n1", cores=4)
        node.work(1.0, 2.0, 3.0, "load")
        assert node.cpu.cpu_seconds_between(0.0, 10.0) == pytest.approx(6.0)

    def test_usage_sampling(self):
        node = Node("n1", cores=4)
        node.work(0.0, 1.0, 2.0)
        series = node.usage(0.0, 2.0)
        assert series.values == [2.0, 0.0]

    def test_memory_allocate_and_free(self):
        node = Node("n1", memory_bytes=1000)
        node.allocate_memory(400)
        assert node.memory_used == 400
        assert node.memory_free == 600
        node.free_memory(400)
        assert node.memory_used == 0

    def test_memory_peak_tracking(self):
        node = Node("n1", memory_bytes=1000)
        node.allocate_memory(700)
        node.free_memory(500)
        node.allocate_memory(100)
        assert node.memory_peak == 700

    def test_memory_overflow_rejected(self):
        node = Node("n1", memory_bytes=100)
        with pytest.raises(ClusterError):
            node.allocate_memory(101)

    def test_negative_allocation_rejected(self):
        node = Node("n1")
        with pytest.raises(ClusterError):
            node.allocate_memory(-1)

    def test_over_free_rejected(self):
        node = Node("n1")
        node.allocate_memory(10)
        with pytest.raises(ClusterError):
            node.free_memory(11)

    def test_negative_free_rejected(self):
        node = Node("n1")
        with pytest.raises(ClusterError):
            node.free_memory(-5)

    def test_reset_clears_state(self):
        node = Node("n1")
        node.work(0.0, 1.0, 1.0)
        node.allocate_memory(10)
        node.reset()
        assert node.memory_used == 0
        assert node.cpu.cpu_seconds_between(0.0, 10.0) == 0.0
