"""Unit tests for local/shared filesystems."""

import pytest

from repro.cluster.filesystem import (
    LocalFileSystem,
    SharedFileSystem,
    SimulatedFile,
    StorageModel,
)
from repro.errors import FileSystemError


class TestSimulatedFile:
    def test_relative_path_rejected(self):
        with pytest.raises(FileSystemError):
            SimulatedFile("relative/path", 10)

    def test_negative_size_rejected(self):
        with pytest.raises(FileSystemError):
            SimulatedFile("/x", -1)

    def test_payload_kept(self):
        f = SimulatedFile("/x", 3, payload=[1, 2, 3])
        assert f.payload == [1, 2, 3]


class TestStorageModel:
    def test_read_time_has_seek_and_stream(self):
        model = StorageModel(read_bps=1e6, seek_s=0.01)
        assert model.read_time(1_000_000) == pytest.approx(1.01)

    def test_write_time(self):
        model = StorageModel(write_bps=2e6, seek_s=0.0)
        assert model.write_time(1_000_000) == pytest.approx(0.5)

    def test_negative_sizes_rejected(self):
        model = StorageModel()
        with pytest.raises(FileSystemError):
            model.read_time(-1)
        with pytest.raises(FileSystemError):
            model.write_time(-1)


class TestLocalFileSystem:
    def test_put_and_get(self):
        fs = LocalFileSystem("node1")
        fs.put("/data/x", 100, payload="hello")
        assert fs.get("/data/x").payload == "hello"
        assert fs.exists("/data/x")
        assert "/data/x" in fs

    def test_get_missing_raises(self):
        fs = LocalFileSystem("node1")
        with pytest.raises(FileSystemError):
            fs.get("/nope")

    def test_put_replaces(self):
        fs = LocalFileSystem("node1")
        fs.put("/x", 10)
        fs.put("/x", 20)
        assert fs.get("/x").size_bytes == 20

    def test_delete(self):
        fs = LocalFileSystem("node1")
        fs.put("/x", 10)
        fs.delete("/x")
        assert not fs.exists("/x")

    def test_delete_missing_raises(self):
        fs = LocalFileSystem("node1")
        with pytest.raises(FileSystemError):
            fs.delete("/x")

    def test_listdir_prefix(self):
        fs = LocalFileSystem("node1")
        fs.put("/a/one", 1)
        fs.put("/a/two", 2)
        fs.put("/b/three", 3)
        assert fs.listdir("/a/") == ["/a/one", "/a/two"]

    def test_total_bytes(self):
        fs = LocalFileSystem("node1")
        fs.put("/a", 10)
        fs.put("/b", 5)
        assert fs.total_bytes() == 15

    def test_read_time_uses_file_size(self):
        fs = LocalFileSystem("node1", StorageModel(read_bps=1e6, seek_s=0.0))
        fs.put("/x", 500_000)
        assert fs.read_time("/x") == pytest.approx(0.5)

    def test_name_carries_node(self):
        assert LocalFileSystem("node7").node_name == "node7"


class TestSharedFileSystem:
    def test_contended_read_divides_bandwidth(self):
        fs = SharedFileSystem(StorageModel(read_bps=1e6, seek_s=0.0))
        fs.put("/x", 1_000_000)
        assert fs.contended_read_time("/x", 1) == pytest.approx(1.0)
        assert fs.contended_read_time("/x", 4) == pytest.approx(4.0)

    def test_contended_read_requires_reader(self):
        fs = SharedFileSystem()
        fs.put("/x", 10)
        with pytest.raises(FileSystemError):
            fs.contended_read_time("/x", 0)

    def test_iteration_yields_files(self):
        fs = SharedFileSystem()
        fs.put("/a", 1)
        fs.put("/b", 2)
        assert {f.path for f in fs} == {"/a", "/b"}
