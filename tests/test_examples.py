"""Smoke tests: every shipped example runs to completion.

Examples are a deliverable; these tests keep them working.  Each runs in
a subprocess exactly as a user would run it (the slowest one is skipped
by default; enable with ``-m ''`` patience or run it by hand).
"""

import os
import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).parent.parent / "examples"
SRC = Path(__file__).parent.parent / "src"


def run_example(name, *args, timeout=300, cwd=None):
    # Absolute src on PYTHONPATH so examples import ``repro`` regardless
    # of the working directory they run from.
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(SRC), env.get("PYTHONPATH")) if p
    )
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout, cwd=cwd, env=env,
    )


class TestExamples:
    def test_quickstart(self):
        proc = run_example("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "TOTAL" in proc.stdout
        assert "dominant superstep" in proc.stdout

    def test_incremental_analysis(self):
        proc = run_example("incremental_analysis.py")
        assert proc.returncode == 0, proc.stderr
        assert "iteration 1 (domain level)" in proc.stdout
        assert "iteration 3 (implementation level)" in proc.stdout
        assert "unmodeled operations remaining: 0" in proc.stdout

    def test_custom_algorithm(self):
        proc = run_example("custom_algorithm.py")
        assert proc.returncode == 0, proc.stderr
        assert "khop" in proc.stdout
        assert "ProcessGraph" in proc.stdout

    def test_failure_diagnosis(self):
        proc = run_example("failure_diagnosis.py")
        assert proc.returncode == 0, proc.stderr
        assert "recovery" in proc.stdout
        assert "straggler" in proc.stdout
        assert "FAIL (regressed)" in proc.stdout

    def test_compare_platforms_fast(self, tmp_path):
        proc = run_example("compare_platforms.py", "--fast", cwd=tmp_path)
        assert proc.returncode == 0, proc.stderr
        assert "Ts setup" in proc.stdout
        assert (tmp_path / "comparison_report.html").exists()
