"""Unit tests for the ExperimentResult container."""

from repro.experiments.common import ExperimentResult


class TestExperimentResult:
    def test_all_checks_pass(self):
        result = ExperimentResult(
            experiment_id="x", title="t",
            checks=[("a", True), ("b", True)],
        )
        assert result.all_checks_pass

    def test_any_failure_flags(self):
        result = ExperimentResult(
            experiment_id="x", title="t",
            checks=[("a", True), ("b", False)],
        )
        assert not result.all_checks_pass

    def test_empty_checks_pass(self):
        assert ExperimentResult(experiment_id="x", title="t").all_checks_pass

    def test_summary_line_ok(self):
        result = ExperimentResult(
            experiment_id="fig5", title="Decomposition",
            checks=[("a", True)],
        )
        line = result.summary_line()
        assert "[fig5]" in line
        assert "OK" in line
        assert "1/1" in line

    def test_summary_line_mismatch(self):
        result = ExperimentResult(
            experiment_id="fig5", title="Decomposition",
            checks=[("a", False), ("b", True)],
        )
        line = result.summary_line()
        assert "SHAPE MISMATCH" in line
        assert "1/2" in line
