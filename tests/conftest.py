"""Shared fixtures.

Expensive artifacts (graphs, monitored runs, the dg1000-scaled
experiment runner) are session-scoped: every test sees identical,
deterministic state without re-running the simulations.
"""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster, DAS5_GIRAPH_NODES, DAS5_POWERGRAPH_NODES
from repro.cluster.node import das5_node
from repro.core.archive.builder import build_archive
from repro.core.model.giraph_model import giraph_model
from repro.core.model.powergraph_model import powergraph_model
from repro.core.monitor.session import MonitoringSession
from repro.graph.generators.datagen import datagen_graph
from repro.graph.graph import Graph
from repro.platforms.base import JobRequest
from repro.platforms.gas.engine import PowerGraphPlatform
from repro.platforms.pregel.engine import GiraphPlatform

#: HDFS block size matching the scaled datasets.
TEST_HDFS_BLOCK = 1 << 16


def make_giraph_cluster() -> Cluster:
    """A fresh 8-node Giraph-style cluster."""
    return Cluster(
        [das5_node(n) for n in DAS5_GIRAPH_NODES],
        hdfs_block_size=TEST_HDFS_BLOCK,
    )


def make_powergraph_cluster() -> Cluster:
    """A fresh 8-node PowerGraph-style cluster."""
    return Cluster(
        [das5_node(n) for n in DAS5_POWERGRAPH_NODES],
        hdfs_block_size=TEST_HDFS_BLOCK,
    )


@pytest.fixture(scope="session")
def tiny_graph() -> Graph:
    """A small, connected Datagen-like graph (shared, do not mutate)."""
    return datagen_graph(600, avg_degree=6, seed=11)


@pytest.fixture(scope="session")
def small_graph() -> Graph:
    """A mid-size Datagen-like graph for engine validation."""
    return datagen_graph(3000, avg_degree=7, seed=5)


@pytest.fixture()
def line_graph() -> Graph:
    """0 -> 1 -> 2 -> 3 -> 4 (easy to reason about by hand)."""
    return Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])


@pytest.fixture()
def diamond_graph() -> Graph:
    """0 -> {1, 2} -> 3 plus an isolated vertex 4."""
    return Graph(5, [(0, 1), (0, 2), (1, 3), (2, 3)])


@pytest.fixture(scope="session")
def giraph_run(tiny_graph):
    """One monitored Giraph BFS run on the tiny graph (shared)."""
    platform = GiraphPlatform(make_giraph_cluster())
    platform.deploy_dataset("tiny", tiny_graph)
    session = MonitoringSession(platform)
    return session.run(JobRequest(
        algorithm="bfs", dataset="tiny", workers=8, params={"source": 0},
    ))


@pytest.fixture(scope="session")
def giraph_archive(giraph_run):
    """The archive of the shared Giraph run, built with the full model."""
    archive, _report = build_archive(giraph_run, giraph_model())
    return archive


@pytest.fixture(scope="session")
def powergraph_run(tiny_graph):
    """One monitored PowerGraph BFS run on the tiny graph (shared)."""
    platform = PowerGraphPlatform(make_powergraph_cluster())
    platform.deploy_dataset("tiny", tiny_graph)
    session = MonitoringSession(platform)
    return session.run(JobRequest(
        algorithm="bfs", dataset="tiny", workers=8, params={"source": 0},
    ))


@pytest.fixture(scope="session")
def powergraph_archive(powergraph_run):
    """The archive of the shared PowerGraph run."""
    archive, _report = build_archive(powergraph_run, powergraph_model())
    return archive
