"""Tests for the granula CLI."""

import pytest

from repro.cli import build_parser, main
from repro.core.archive.serialize import archive_to_json


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_subcommands(self):
        parser = build_parser()
        for argv in (["table1"], ["model", "Giraph"],
                     ["run", "Giraph", "bfs", "dg-tiny"],
                     ["experiments"], ["report", "x.json"],
                     ["validate", "x.json"], ["repair", "x.json"],
                     ["ingest", "x.log", "--salvage"],
                     ["serve", "store-dir"]):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "archives"])
        assert args.store == "archives"
        assert args.host == "127.0.0.1"
        assert args.port == 8737
        assert args.cache_size == 64

    def test_serve_overrides(self):
        args = build_parser().parse_args(
            ["serve", "archives", "--host", "0.0.0.0", "--port", "0",
             "--cache-size", "0"])
        assert (args.host, args.port, args.cache_size) == ("0.0.0.0", 0, 0)


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Giraph" in out and "PowerGraph" in out

    def test_model_tree(self, capsys):
        assert main(["model", "Giraph"]) == 0
        out = capsys.readouterr().out
        assert "GiraphJob" in out
        assert "[domain]" in out

    def test_model_unknown_platform(self, capsys):
        assert main(["model", "Spark"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_models_lists_library(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        for name in ("Giraph", "PowerGraph", "Hadoop", "GraphMat",
                     "PGX.D", "OpenG", "TOTEM"):
            assert name in out

    def test_run_prints_breakdown(self, capsys, tmp_path):
        code = main(["run", "Giraph", "bfs", "dg-tiny",
                     "--workers", "4", "--out", str(tmp_path / "store")])
        assert code == 0
        out = capsys.readouterr().out
        assert "TOTAL" in out
        assert "archive stored" in out
        assert (tmp_path / "store" / "index.json").exists()

    def test_run_unknown_dataset(self, capsys):
        assert main(["run", "Giraph", "bfs", "nope"]) == 2

    def test_run_matrix_prints_headers(self, capsys):
        code = main(["run", "Giraph,PGX.D", "bfs", "dg-tiny",
                     "--workers", "4", "--jobs", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "==== giraph-bfs-dg-tiny-w4 ====" in out
        assert "==== pgx.d-bfs-dg-tiny-w4 ====" in out

    def test_run_matrix_unsupported_platform(self, capsys):
        assert main(["run", "Giraph,Spark", "bfs", "dg-tiny"]) == 2
        assert "unsupported platform" in capsys.readouterr().err

    def test_run_matrix_rejects_empty_item(self, capsys):
        assert main(["run", "Giraph,", "bfs", "dg-tiny"]) == 2
        assert "empty platform" in capsys.readouterr().err

    def test_run_matrix_rejects_fault_plan(self, capsys, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text('{"events": [], "seed": 1}')
        code = main(["run", "Giraph", "bfs,wcc", "dg-tiny",
                     "--faults", str(plan)])
        assert code == 2
        assert "single run" in capsys.readouterr().err

    def test_bench_parser(self):
        args = build_parser().parse_args(["bench", "--small", "--jobs", "2"])
        assert args.small and args.jobs == 2 and callable(args.func)

    def test_report_from_archive(self, capsys, tmp_path, giraph_archive):
        path = tmp_path / "a.json"
        path.write_text(archive_to_json(giraph_archive))
        html = tmp_path / "report.html"
        assert main(["report", str(path), "--html", str(html)]) == 0
        assert html.exists()
        out = capsys.readouterr().out
        assert "GiraphJob" in out

    def test_diagnose_archive(self, capsys, tmp_path, giraph_archive):
        path = tmp_path / "a.json"
        path.write_text(archive_to_json(giraph_archive))
        assert main(["diagnose", str(path)]) == 0
        out = capsys.readouterr().out
        assert "choke points" in out

    def test_compare_same_platform_regression(self, capsys, tmp_path,
                                              giraph_archive):
        path = tmp_path / "a.json"
        path.write_text(archive_to_json(giraph_archive))
        # Identical archives: no regression, exit 0.
        assert main(["compare", str(path), str(path)]) == 0
        assert "regression report" in capsys.readouterr().out

    def test_compare_cross_platform(self, capsys, tmp_path,
                                    giraph_archive, powergraph_archive):
        a = tmp_path / "a.json"
        a.write_text(archive_to_json(giraph_archive))
        b = tmp_path / "b.json"
        b.write_text(archive_to_json(powergraph_archive))
        assert main(["compare", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "Ts setup" in out


class TestResilienceCommands:
    def test_validate_clean_archive(self, capsys, tmp_path, giraph_archive):
        path = tmp_path / "a.json"
        path.write_text(archive_to_json(giraph_archive))
        assert main(["validate", str(path)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_validate_tampered_archive_exits_1(self, capsys, tmp_path,
                                               giraph_archive):
        path = tmp_path / "a.json"
        path.write_text(archive_to_json(giraph_archive).replace(
            '"platform":"Giraph"', '"platform":"Xiraph"'))
        assert main(["validate", str(path)]) == 1
        assert "checksum-mismatch" in capsys.readouterr().out

    def test_validate_binary_garbage_exits_1(self, capsys, tmp_path):
        path = tmp_path / "a.json"
        path.write_bytes(b"\x00\xff\xfe not an archive")
        assert main(["validate", str(path)]) == 1
        assert "not-json" in capsys.readouterr().out

    def test_validate_missing_file(self, capsys):
        assert main(["validate", "/nonexistent/a.json"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_repair_truncated_archive(self, capsys, tmp_path,
                                      giraph_archive):
        text = archive_to_json(giraph_archive)
        path = tmp_path / "a.json"
        path.write_text(text[: int(len(text) * 0.6)])
        out = tmp_path / "fixed.json"
        assert main(["repair", str(path), "--out", str(out)]) == 0
        capsys.readouterr()
        assert main(["validate", str(out)]) == 0

    def test_repair_in_place(self, capsys, tmp_path, giraph_archive):
        text = archive_to_json(giraph_archive)
        path = tmp_path / "a.json"
        path.write_text(text[: int(len(text) * 0.7)])
        assert main(["repair", str(path)]) == 0
        capsys.readouterr()
        assert main(["validate", str(path)]) == 0

    def test_repair_unrecoverable_exits_2(self, capsys, tmp_path):
        path = tmp_path / "a.json"
        path.write_text("\x00 hopeless")
        assert main(["repair", str(path)]) == 2
        assert "nothing recoverable" in capsys.readouterr().err

    def test_serve_missing_store_exits_2(self, capsys, tmp_path):
        assert main(["serve", str(tmp_path / "nope")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_ingest_clean_log(self, capsys, tmp_path, giraph_run):
        log = tmp_path / "run.log"
        log.write_text("\n".join(giraph_run.result.log_lines) + "\n")
        store = tmp_path / "store"
        assert main(["ingest", str(log), "--out", str(store)]) == 0
        out = capsys.readouterr().out
        assert "completeness 100%" in out
        assert "archive stored" in out

    def test_ingest_damaged_log_requires_salvage(self, capsys, tmp_path,
                                                 giraph_run):
        lines = giraph_run.result.log_lines
        log = tmp_path / "run.log"
        log.write_text("\n".join(lines[: int(len(lines) * 0.6)]) + "\n")
        assert main(["ingest", str(log)]) == 2
        assert "--salvage" in capsys.readouterr().err
        assert main(["ingest", str(log), "--salvage"]) == 0
        out = capsys.readouterr().out
        assert "salvage ingest" in out
        assert "completeness" in out
