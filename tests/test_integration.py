"""Cross-module integration tests.

The strongest invariant in the system: both platform engines and the
reference implementations agree on every algorithm's output, and the full
pipeline (engine -> log -> parse -> archive -> visualize) preserves the
quantities the paper reports.
"""

import pytest

from repro.core.archive.builder import build_archive
from repro.core.archive.query import ArchiveQuery
from repro.core.model.giraph_model import giraph_model
from repro.core.model.powergraph_model import powergraph_model
from repro.core.monitor.session import MonitoringSession
from repro.core.visualize.breakdown import compute_breakdown
from repro.graph.algorithms import (
    bfs_levels,
    label_propagation,
    pagerank,
    sssp_distances,
    weakly_connected_components,
)
from repro.graph.validate import compare_exact, compare_numeric
from repro.platforms.base import JobRequest
from repro.platforms.gas.engine import PowerGraphPlatform
from repro.platforms.pregel.engine import GiraphPlatform

from tests.conftest import make_giraph_cluster, make_powergraph_cluster


@pytest.fixture(scope="module")
def platforms(small_graph):
    giraph = GiraphPlatform(make_giraph_cluster())
    giraph.deploy_dataset("small", small_graph)
    powergraph = PowerGraphPlatform(make_powergraph_cluster())
    powergraph.deploy_dataset("small", small_graph)
    return giraph, powergraph


class TestCrossPlatformAgreement:
    """Both engines and the reference produce identical results."""

    @pytest.mark.parametrize("algorithm,params,reference,compare", [
        ("bfs", {"source": 0}, lambda g: bfs_levels(g, 0), compare_exact),
        ("wcc", {}, weakly_connected_components, compare_exact),
        ("sssp", {"source": 0}, lambda g: sssp_distances(g, 0),
         compare_numeric),
        ("pagerank", {"iterations": 6},
         lambda g: pagerank(g, iterations=6), compare_numeric),
        ("cdlp", {"iterations": 4},
         lambda g: label_propagation(g, 4), compare_exact),
    ])
    def test_three_way_agreement(self, platforms, small_graph, algorithm,
                                 params, reference, compare):
        giraph, powergraph = platforms
        expected = reference(small_graph)
        for platform in (giraph, powergraph):
            result = platform.run_job(
                JobRequest(algorithm, "small", 8, params=params))
            report = compare(expected, result.output)
            assert report.ok, f"{platform.name}: {report.summary()}"


class TestPipelineConsistency:
    def test_archive_matches_job_result(self, platforms):
        giraph, _ = platforms
        session = MonitoringSession(giraph)
        run = session.run(JobRequest("bfs", "small", 8,
                                     params={"source": 0}))
        archive, report = build_archive(run, giraph_model())
        assert report.unmodeled == []
        assert archive.makespan == pytest.approx(run.result.makespan)
        # Superstep count in the archive equals the engine's own count.
        process = ArchiveQuery(archive).mission("ProcessGraph").one()
        assert process.infos["Supersteps"] == run.result.stats["supersteps"]

    def test_powergraph_archive_iterations(self, platforms):
        _, powergraph = platforms
        session = MonitoringSession(powergraph)
        run = session.run(JobRequest("bfs", "small", 8,
                                     params={"source": 0}))
        archive, report = build_archive(run, powergraph_model())
        assert report.unmodeled == []
        process = ArchiveQuery(archive).mission("ProcessGraph").one()
        assert process.infos["Iterations"] == run.result.stats["iterations"]

    def test_breakdown_sums_to_makespan(self, platforms):
        giraph, _ = platforms
        session = MonitoringSession(giraph)
        run = session.run(JobRequest("bfs", "small", 8,
                                     params={"source": 0}))
        archive, _ = build_archive(run, giraph_model())
        breakdown = compute_breakdown(archive)
        covered = sum(d for _m, d, _s in breakdown.operations)
        # Domain phases cover (almost) the whole job; small master
        # coordination gaps are allowed.
        assert covered == pytest.approx(breakdown.total, rel=0.05)

    def test_compute_infos_match_messages(self, platforms):
        """Per-superstep MessagesSent summed over the archive equals the
        engine's reported total."""
        giraph, _ = platforms
        session = MonitoringSession(giraph)
        run = session.run(JobRequest("bfs", "small", 8,
                                     params={"source": 0}))
        archive, _ = build_archive(run, giraph_model())
        total = ArchiveQuery(archive).mission("Compute").total("MessagesSent")
        assert total == run.result.stats["messages"]

    def test_env_cpu_matches_node_accounting(self, platforms):
        giraph, _ = platforms
        session = MonitoringSession(giraph)
        run = session.run(JobRequest("bfs", "small", 8,
                                     params={"source": 0}))
        t1 = run.result.finished_at
        for node_name, series in run.env_series.items():
            node = giraph.cluster.node(node_name)
            for t, value in series:
                hi = min(t + series.step, t1)
                width = hi - t
                expected = node.cpu.cpu_seconds_between(t, hi) / width
                assert value == pytest.approx(expected, rel=1e-9, abs=1e-9)
