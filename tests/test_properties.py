"""Property-based tests (hypothesis) on core data structures and
invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import logformat
from repro.cluster.cpu import CpuAccount
from repro.core.archive.archive import ArchivedOperation, PerformanceArchive
from repro.core.archive.serialize import archive_from_json, archive_to_json
from repro.graph.algorithms.bfs import UNREACHED, bfs_levels
from repro.graph.algorithms.pagerank import pagerank
from repro.graph.algorithms.wcc import weakly_connected_components
from repro.graph.csr import CsrGraph
from repro.graph.edgelist import EdgeList, parse_edge_list, render_edge_list
from repro.graph.graph import Graph
from repro.graph.partition.hash_partition import hash_partition
from repro.graph.partition.vertexcut import greedy_vertex_cut
from repro.graph.vertexstore import parse_vertex_store, render_vertex_store

# -- strategies -------------------------------------------------------------

@st.composite
def graphs(draw, max_vertices=24):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    m = draw(st.integers(min_value=0, max_value=3 * n))
    edges = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
        min_size=m, max_size=m,
    ))
    return Graph(n, edges)


field_values = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)),
    min_size=0, max_size=20,
)
field_keys = st.text(
    alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz_"),
    min_size=1, max_size=10,
)


# -- graph invariants ---------------------------------------------------------

class TestGraphProperties:
    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_edge_count_equals_degree_sums(self, g):
        assert sum(g.out_degree(v) for v in g.vertices()) == g.num_edges
        assert sum(g.in_degree(v) for v in g.vertices()) == g.num_edges

    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_reverse_preserves_counts(self, g):
        r = g.reversed()
        assert r.num_edges == g.num_edges
        assert r.reversed() == g

    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_undirected_neighbor_symmetry(self, g):
        for v in g.vertices():
            for u in g.neighbors_undirected(v):
                assert v in g.neighbors_undirected(u)

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_csr_roundtrip(self, g):
        assert CsrGraph.from_graph(g).to_graph() == g

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_edge_list_roundtrip(self, g):
        el = EdgeList.from_graph(g)
        text = render_edge_list(el)
        assert parse_edge_list(text, g.num_vertices).to_graph() == g
        assert el.text_size_bytes() == len(text)

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_vertex_store_roundtrip(self, g):
        assert parse_vertex_store(
            render_vertex_store(g), g.num_vertices) == g


class TestAlgorithmProperties:
    @given(graphs(), st.integers(0, 1000))
    @settings(max_examples=50, deadline=None)
    def test_bfs_levels_consistent(self, g, seed):
        source = seed % g.num_vertices
        levels = bfs_levels(g, source)
        assert levels[source] == 0
        for v in g.vertices():
            if levels[v] > 0:
                # Some in-neighbor sits exactly one level above.
                assert any(
                    levels[u] == levels[v] - 1 for u in g.in_neighbors(v)
                )
            # Edges never skip levels downward.
            if levels[v] != UNREACHED:
                for u in g.out_neighbors(v):
                    assert levels[u] != UNREACHED
                    assert levels[u] <= levels[v] + 1

    @given(graphs())
    @settings(max_examples=40, deadline=None)
    def test_pagerank_is_distribution(self, g):
        ranks = pagerank(g, iterations=10)
        assert abs(sum(ranks.values()) - 1.0) < 1e-9
        assert all(r > 0 for r in ranks.values())

    @given(graphs())
    @settings(max_examples=50, deadline=None)
    def test_wcc_labels_closed_under_edges(self, g):
        labels = weakly_connected_components(g)
        for src, dst in g.edges():
            assert labels[src] == labels[dst]
        # Labels are canonical minima.
        for v, label in labels.items():
            assert label <= v


class TestPartitionProperties:
    @given(graphs(), st.integers(1, 6))
    @settings(max_examples=50, deadline=None)
    def test_hash_partition_total(self, g, parts):
        assignment = hash_partition(g.num_vertices, parts)
        assert len(assignment) == g.num_vertices
        assert all(0 <= p < parts for p in assignment)

    @given(graphs(), st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_vertex_cut_invariants(self, g, parts):
        cut = greedy_vertex_cut(g, parts)
        # Every edge assigned to exactly one partition.
        assert len(cut.edge_assignment) == g.num_edges
        assert sum(cut.edge_counts()) == g.num_edges
        # Replica sets contain the edge's partition; masters are replicas.
        for (src, dst), p in zip(cut.edges, cut.edge_assignment):
            assert p in cut.replicas[src]
            assert p in cut.replicas[dst]
        for v, master in cut.masters.items():
            assert master in cut.replicas[v]
        # Replication factor bounded by partition count.
        if cut.replicas:
            assert 1.0 <= cut.replication_factor() <= parts


class TestLogFormatProperties:
    @given(st.dictionaries(field_keys, field_values, min_size=1, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_format_parse_roundtrip(self, fields):
        line = logformat.format_line(fields)
        assert logformat.parse_line(line) == {
            k: str(v) for k, v in fields.items()
        }


class TestCpuProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(0, 50, allow_nan=False),
                st.floats(0, 10, allow_nan=False),
                st.floats(0, 8, allow_nan=False),
            ),
            max_size=12,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_sampling_conserves_cpu_seconds(self, intervals):
        account = CpuAccount(16)
        for start, duration, cores in intervals:
            account.record(start, start + duration, cores)
        series = account.sample(0.0, 64.0, step=1.0)
        expected = account.cpu_seconds_between(0.0, 64.0)
        assert math.isclose(series.total_cpu_seconds, expected,
                            rel_tol=1e-9, abs_tol=1e-9)


class TestArchiveProperties:
    @st.composite
    @staticmethod
    def archives(draw):
        counter = [0]

        def build(depth, start, end):
            counter[0] += 1
            op = ArchivedOperation(
                uid=f"u{counter[0]}",
                mission=draw(st.sampled_from(
                    ["Load", "Compute-1", "Step-2", "Sync"])),
                actor=draw(st.sampled_from(["Master", "Worker-1"])),
                start_time=start, end_time=end,
                infos={"N": draw(st.integers(0, 100))},
            )
            for _ in range(draw(st.integers(0, 2)) if depth < 2 else 0):
                lo = draw(st.floats(start, end, allow_nan=False))
                hi = draw(st.floats(lo, end, allow_nan=False))
                child = build(depth + 1, lo, hi)
                child.parent = op
                op.children.append(child)
            return op

        root = build(0, 0.0, 100.0)
        return PerformanceArchive("job", root, platform="T")

    @given(archives())
    @settings(max_examples=50, deadline=None)
    def test_serialization_roundtrip(self, archive):
        clone = archive_from_json(archive_to_json(archive))
        assert clone.size() == archive.size()
        for original, copied in zip(archive.walk(), clone.walk()):
            assert original.mission == copied.mission
            assert original.actor == copied.actor
            assert original.infos == copied.infos
            assert original.start_time == copied.start_time
            assert original.end_time == copied.end_time

    @given(archives())
    @settings(max_examples=50, deadline=None)
    def test_children_nested_within_parents(self, archive):
        for op in archive.walk():
            for child in op.children:
                assert child.start_time >= op.start_time
                assert child.end_time <= op.end_time
