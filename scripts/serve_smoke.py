#!/usr/bin/env python3
"""CI smoke test for ``granula serve``.

Builds a fixture store with two real simulated runs, starts the server
as a genuine subprocess on an ephemeral port, then checks the public
contract end to end:

1. ``/healthz`` answers once the listener is up;
2. ``/jobs`` lists both archives;
3. ``/jobs/{id}/query`` aggregates a metric;
4. a repeated conditional GET with ``If-None-Match`` returns 304;
5. SIGTERM produces a clean shutdown (exit code 0).

Run from the repo root: ``PYTHONPATH=src python scripts/serve_smoke.py``.

With ``--chaos`` the smoke instead arms a fault plan (request latency,
one WAL disk-full, one ingestion-worker crash) and drives the *write*
path through it: every ``POST /jobs`` is retried per ``Retry-After``
until accepted, and the run only passes if the service ends healthy
with zero lost acknowledged jobs and a clean SIGTERM exit.

With ``--cluster`` the smoke drives the sharded tier instead
(``granula serve --workers 3``): archives POSTed through the
consistent-hash router, the merged ``/jobs`` listing, per-job reads,
and a clean SIGTERM of the whole fleet.  ``--cluster --chaos``
additionally SIGKILLs one shard worker mid-burst (pid taken from the
aggregated ``/healthz``), keeps writing through the outage honouring
``Retry-After``, and only passes if the cluster converges back to
``ok`` with every acknowledged job stored exactly once.

With ``--live`` the smoke drives live monitoring instead: a faulted
``granula run --live-port`` whose SSE stream is consumed while the job
executes.  It passes only if the stream was incremental (partial
snapshots with salvage-inferred closes) and the final streamed snapshot
is byte-for-byte the archive the store persisted.
"""

from __future__ import annotations

import json
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cli import main as granula_main  # noqa: E402

BANNER_RE = re.compile(r"(http://[\d.]+:\d+)")
STARTUP_TIMEOUT = 30.0


def fail(message: str) -> None:
    print(f"serve smoke: FAIL - {message}", file=sys.stderr)
    sys.exit(1)


def build_store(directory: Path, workloads=(("Giraph", "bfs"),
                                            ("PowerGraph", "pagerank"))) -> None:
    for platform, algorithm in workloads:
        code = granula_main([
            "run", platform, algorithm, "dg-tiny",
            "--workers", "4", "--out", str(directory),
        ])
        if code != 0:
            fail(f"granula run {platform} {algorithm} exited {code}")


def fetch(url: str, headers: dict | None = None):
    request = urllib.request.Request(url, headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def wait_for_banner(process: subprocess.Popen) -> str:
    deadline = time.monotonic() + STARTUP_TIMEOUT
    assert process.stdout is not None
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            fail(f"server exited early (code {process.poll()})")
        match = BANNER_RE.search(line)
        if match:
            return match.group(1)
    fail("no startup banner within timeout")
    raise AssertionError("unreachable")


def wait_healthy(base: str) -> None:
    deadline = time.monotonic() + STARTUP_TIMEOUT
    while time.monotonic() < deadline:
        try:
            status, _headers, _body = fetch(f"{base}/healthz")
            if status == 200:
                return
        except OSError:
            time.sleep(0.1)
    fail("/healthz never answered 200")


def post_with_retry(base: str, payload: bytes, attempts: int = 10):
    """POST one job, honouring ``Retry-After`` on 429/503 rejections.

    Returns ``(tracking_document, rejections_seen)``.
    """
    rejections = 0
    for _ in range(attempts):
        request = urllib.request.Request(
            f"{base}/jobs", data=payload, method="POST",
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=10) as response:
                if response.status != 202:
                    fail(f"POST /jobs answered {response.status}")
                return json.loads(response.read()), rejections
        except urllib.error.HTTPError as exc:
            if exc.code not in (429, 503):
                fail(f"POST /jobs answered {exc.code}: {exc.read()!r}")
            rejections += 1
            retry_after = float(exc.headers.get("Retry-After", "1"))
            print(f"chaos smoke: POST rejected with {exc.code}, "
                  f"retrying in {retry_after:.0f}s")
            time.sleep(min(retry_after, 6.0))
    fail(f"POST /jobs still rejected after {attempts} attempts")
    raise AssertionError("unreachable")


def chaos_main() -> int:
    """Drive the write path through an armed chaos plan."""
    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        store = Path(tmp) / "store"
        build_store(store)
        # Jobs to POST: two more real runs, serialized archive JSON on
        # disk is exactly the POST /jobs wire format.
        source = Path(tmp) / "source"
        build_store(source, workloads=(("Giraph", "wcc"),
                                       ("PowerGraph", "sssp")))
        payloads = {
            path.stem: path.read_bytes()
            for path in sorted(source.glob("*.json"))
            if path.name != "index.json"
        }

        plan_path = Path(tmp) / "chaos.json"
        plan_path.write_text(json.dumps({
            "events": [
                {"type": "latency", "op": "request",
                 "delay_s": 0.05, "after": 0, "count": 5},
                {"type": "disk_full", "after": 1, "count": 1},
                {"type": "worker_crash", "after": 0},
            ],
        }, indent=2))

        process = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro.cli", "serve", str(store),
             "--port", "0", "--chaos", str(plan_path)],
            cwd=REPO_ROOT,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            base = wait_for_banner(process)
            wait_healthy(base)

            acked = {}
            rejections = 0
            for job_id, payload in payloads.items():
                document, rejected = post_with_retry(base, payload)
                acked[job_id] = document["tracking_id"]
                rejections += rejected
            if rejections < 1:
                fail("the disk-full event never surfaced as a 503")
            print(f"chaos smoke: {len(acked)} job(s) acknowledged "
                  f"through {rejections} rejection(s)")

            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                _status, _headers, body = fetch(f"{base}/healthz")
                health = json.loads(body)
                if health["writes"]["wal_lag"] == 0:
                    break
                time.sleep(0.2)
            else:
                fail("WAL never drained to zero lag")
            if health["status"] != "ok":
                fail(f"service ended {health['status']!r}, expected ok")

            status, _headers, body = fetch(f"{base}/jobs?limit=100")
            if status != 200:
                fail(f"/jobs answered {status}")
            jobs = [job["job_id"] for job in json.loads(body)["jobs"]]
            for job_id in acked:
                if jobs.count(job_id) != 1:
                    fail(f"acknowledged job {job_id!r} appears "
                         f"{jobs.count(job_id)} times in {jobs}")
            print(f"chaos smoke: all acknowledged jobs stored: {jobs}")

            status, _headers, body = fetch(f"{base}/metrics")
            ingest = json.loads(body)["ingest"]
            injected = ingest["chaos"]["injected"]
            if injected.get("disk_full") != 1:
                fail(f"expected 1 injected disk_full, saw {injected}")
            if injected.get("worker_crash") != 1:
                fail(f"expected 1 injected worker_crash, saw {injected}")
            if ingest["counters"]["worker_restarts"] < 1:
                fail("worker crash did not surface as a restart")
            print("chaos smoke: faults fired "
                  f"{injected} and the worker recovered")

            process.send_signal(signal.SIGTERM)
            code = process.wait(timeout=30)
            if code != 0:
                fail(f"server exited {code} on SIGTERM")
            print("chaos smoke: clean shutdown (exit 0)")
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
    print("chaos smoke: PASS")
    return 0


def wait_cluster_ok(base: str, timeout: float = 60.0) -> dict:
    """Wait until the aggregated /healthz reports every shard ok."""
    deadline = time.monotonic() + timeout
    health = {}
    while time.monotonic() < deadline:
        try:
            status, _headers, body = fetch(f"{base}/healthz")
        except OSError:
            time.sleep(0.2)
            continue
        if status == 200:
            health = json.loads(body)
            if health.get("status") == "ok":
                return health
        time.sleep(0.2)
    fail(f"cluster never converged to ok; last health: {health}")
    raise AssertionError("unreachable")


def wait_cluster_drained(base: str, timeout: float = 60.0) -> None:
    """Wait until every live shard reports zero WAL lag."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _status, _headers, body = fetch(f"{base}/healthz")
        health = json.loads(body)
        lags = [
            shard.get("health", {}).get("writes", {}).get("wal_lag")
            for shard in health.get("shards", [])
        ]
        if health.get("status") == "ok" and all(lag == 0 for lag in lags):
            return
        time.sleep(0.2)
    fail("shard WALs never drained to zero lag")


def spawn_cluster(store: Path, workers: int = 3) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-u", "-m", "repro.cli", "serve", str(store),
         "--port", "0", "--workers", str(workers)],
        cwd=REPO_ROOT,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def cluster_main(chaos: bool) -> int:
    """Drive the sharded tier; with ``chaos``, kill a worker mid-burst."""
    import os

    label = "cluster chaos smoke" if chaos else "cluster smoke"
    workloads = (("Giraph", "bfs"), ("PowerGraph", "pagerank"),
                 ("Giraph", "wcc"), ("PowerGraph", "sssp"))
    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        source = Path(tmp) / "source"
        build_store(source, workloads=workloads)
        payloads = {
            path.stem: path.read_bytes()
            for path in sorted(source.glob("*.json"))
            if path.name != "index.json"
        }
        if len(payloads) < len(workloads):
            fail(f"fixture built only {sorted(payloads)}")

        store = Path(tmp) / "cluster"
        store.mkdir()
        process = spawn_cluster(store)
        try:
            base = wait_for_banner(process)
            health = wait_cluster_ok(base)
            pids = {shard["shard"]: shard["pid"]
                    for shard in health["shards"]}
            print(f"{label}: 3 shard workers live, pids {pids}")

            acked = {}
            victim = None
            for count, (job_id, payload) in enumerate(payloads.items()):
                if chaos and count == len(payloads) // 2:
                    # Mid-burst: SIGKILL one shard worker outright.
                    victim = sorted(pids)[0]
                    os.kill(pids[victim], signal.SIGKILL)
                    print(f"{label}: SIGKILLed shard {victim} "
                          f"(pid {pids[victim]}) mid-burst")
                document, rejected = post_with_retry(
                    base, payload, attempts=30)
                acked[job_id] = document["tracking_id"]
                if rejected:
                    print(f"{label}: {job_id} accepted after "
                          f"{rejected} rejection(s)")
            print(f"{label}: {len(acked)} job(s) acknowledged")

            wait_cluster_ok(base)
            wait_cluster_drained(base)
            if chaos:
                status, _headers, body = fetch(f"{base}/metrics")
                restarts = json.loads(body)["supervisor"]["counters"][
                    "restarts_total"]
                if restarts < 1:
                    fail("the killed worker never registered a restart")
                print(f"{label}: supervisor recorded "
                      f"{restarts} restart(s) and the fleet converged")

            status, _headers, body = fetch(f"{base}/jobs?limit=100")
            if status != 200:
                fail(f"/jobs answered {status}")
            listing = json.loads(body)
            if listing["degraded_shards"]:
                fail(f"converged cluster still lists degraded shards "
                     f"{listing['degraded_shards']}")
            jobs = [job["job_id"] for job in listing["jobs"]]
            for job_id in acked:
                if jobs.count(job_id) != 1:
                    fail(f"acknowledged job {job_id!r} appears "
                         f"{jobs.count(job_id)} times in {jobs}")
            print(f"{label}: all acknowledged jobs stored exactly "
                  f"once: {jobs}")

            some_job = next(iter(acked))
            status, headers, body = fetch(f"{base}/jobs/{some_job}")
            if status != 200:
                fail(f"/jobs/{some_job} answered {status}")
            etag = headers.get("ETag")
            if not etag:
                fail("routed per-job GET carried no ETag")
            status, _headers, body = fetch(
                f"{base}/jobs/{some_job}",
                headers={"If-None-Match": etag})
            if status != 304:
                fail(f"routed conditional GET answered {status}")
            print(f"{label}: routed read + 304 revalidation ok")

            process.send_signal(signal.SIGTERM)
            code = process.wait(timeout=40)
            if code != 0:
                fail(f"cluster exited {code} on SIGTERM")
            print(f"{label}: clean shutdown (exit 0)")
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
    print(f"{label}: PASS")
    return 0


def live_main() -> int:
    """Drive ``granula run --live-port`` and audit its SSE stream.

    Runs a *faulted* workload (one worker crash, so the tail of the log
    is salvaged and some operation ends are provenance-``inferred``),
    consumes ``/jobs/{id}/live`` while the run executes, and passes only
    if the stream was incremental (at least one partial snapshot), saw
    inferred closes mid-stream, terminated with a ``complete`` event,
    and the final streamed snapshot is byte-for-byte the archive the
    store persisted.
    """
    from repro.core.monitor.live import iter_sse_events

    job_id = "giraph-bfs-dg-tiny-w4"
    with tempfile.TemporaryDirectory(prefix="live-smoke-") as tmp:
        store = Path(tmp) / "store"
        plan_path = Path(tmp) / "faults.json"
        plan_path.write_text(json.dumps({
            "events": [
                {"type": "worker_crash", "worker": 1, "superstep": 2},
            ],
            "checkpoint_interval": 2,
            "seed": 13,
        }))

        process = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro.cli", "run",
             "Giraph", "bfs", "dg-tiny", "--workers", "4",
             "--out", str(store), "--faults", str(plan_path),
             "--live-port", "0", "--live-linger", "30"],
            cwd=REPO_ROOT,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            base = wait_for_banner(process)
            url = f"{base}/jobs/{job_id}/live"
            reply = None
            deadline = time.monotonic() + STARTUP_TIMEOUT
            while time.monotonic() < deadline:
                try:
                    reply = urllib.request.urlopen(url, timeout=30)
                    break
                except urllib.error.HTTPError as exc:
                    if exc.code != 404:
                        fail(f"GET {url} answered {exc.code}")
                    time.sleep(0.05)  # monitor not registered yet
                except OSError:
                    time.sleep(0.05)
            if reply is None:
                fail("live stream never became connectable")
            if reply.headers.get("Content-Type") != "text/event-stream":
                fail(f"unexpected Content-Type "
                     f"{reply.headers.get('Content-Type')!r}")

            snapshots = []
            completed = None
            with reply:
                for event in iter_sse_events(reply):
                    if event.event == "snapshot":
                        snapshots.append(event)
                    elif event.event == "complete":
                        completed = json.loads(event.data)
                        break
            if completed is None:
                fail("stream ended without a complete event")
            if completed.get("error"):
                fail(f"run aborted: {completed['error']}")
            if not snapshots:
                fail("stream carried no snapshots")

            ids = [int(event.event_id) for event in snapshots]
            if ids != sorted(set(ids)):
                fail(f"snapshot ids not strictly increasing: {ids}")
            if int(completed["final_seq"]) != ids[-1]:
                fail(f"complete final_seq {completed['final_seq']} != "
                     f"last snapshot id {ids[-1]}")

            partials = 0
            inferred_seen = 0
            for event in snapshots[:-1]:
                document = json.loads(event.data)
                live_meta = document["metadata"].get("live", {})
                if not live_meta.get("partial"):
                    fail(f"mid-stream snapshot {event.event_id} "
                         f"not marked partial")
                partials += 1
                inferred_seen += int(live_meta.get("inferred_ends", 0))
            if partials < 1:
                fail("stream was not incremental: no partial snapshots")
            if inferred_seen < 1:
                fail("no inferred closes observed in partial snapshots")

            stored = (store / f"{job_id}.json").read_bytes()
            if snapshots[-1].data != stored:
                fail("final streamed snapshot differs from stored archive")
            print(f"live smoke: {partials} partial snapshot(s), "
                  f"{inferred_seen} inferred close(s) observed, final "
                  f"snapshot byte-identical to the stored archive "
                  f"({len(stored)} bytes)")

            if process.wait(timeout=60) != 0:
                fail(f"granula run exited {process.returncode}")
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
    print("live smoke: PASS")
    return 0


def main() -> int:
    if "--live" in sys.argv[1:]:
        return live_main()
    if "--cluster" in sys.argv[1:]:
        return cluster_main(chaos="--chaos" in sys.argv[1:])
    if "--chaos" in sys.argv[1:]:
        return chaos_main()
    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        store = Path(tmp) / "store"
        build_store(store)

        process = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro.cli", "serve", str(store),
             "--port", "0"],
            cwd=REPO_ROOT,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            base = wait_for_banner(process)
            wait_healthy(base)

            status, _headers, body = fetch(f"{base}/jobs")
            if status != 200:
                fail(f"/jobs answered {status}")
            jobs = [job["job_id"] for job in json.loads(body)["jobs"]]
            if len(jobs) != 2:
                fail(f"expected 2 archived jobs, saw {jobs}")
            print(f"serve smoke: /jobs lists {jobs}")

            query = (f"{base}/jobs/{jobs[0]}/query"
                     "?mission=Superstep&agg=count")
            status, headers, body = fetch(query)
            if status != 200:
                fail(f"query answered {status}: {body!r}")
            result = json.loads(body)["result"]
            if not isinstance(result, int) or result < 1:
                fail(f"query result not a positive count: {result!r}")
            print(f"serve smoke: query counted {result} supersteps")

            etag = headers.get("ETag")
            if not etag:
                fail("query response carried no ETag")
            status, headers, body = fetch(
                query, headers={"If-None-Match": etag})
            if status != 304:
                fail(f"conditional GET answered {status}, expected 304")
            if body:
                fail("304 response carried a body")
            if headers.get("ETag") != etag:
                fail("304 response changed the ETag")
            print("serve smoke: conditional GET revalidated with 304")

            status, _headers, body = fetch(f"{base}/metrics")
            if status != 200 or json.loads(body)["not_modified_total"] < 1:
                fail("metrics did not record the 304")

            process.send_signal(signal.SIGTERM)
            code = process.wait(timeout=30)
            if code != 0:
                fail(f"server exited {code} on SIGTERM")
            print("serve smoke: clean shutdown (exit 0)")
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
    print("serve smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
