"""Ablation: edge-cut vs vertex-cut partitioning quality.

The design choice behind Table 1's Giraph/PowerGraph split: hash edge-cut
(Giraph) versus greedy vertex-cut (PowerGraph).  On power-law graphs the
vertex-cut's replication factor stays low while the edge-cut's cut
fraction and balance degrade — the PowerGraph paper's core claim, which
this bench reproduces on synthetic power-law and uniform graphs.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.core.visualize.render_text import table
from repro.graph.generators import powerlaw_graph, uniform_random_graph
from repro.graph.partition import (
    edge_balance,
    edge_cut_fraction,
    greedy_vertex_cut,
    hash_partition,
    random_vertex_cut,
    replication_factor,
)

PARTS = 8
GRAPHS = {
    "powerlaw": lambda: powerlaw_graph(4000, 32000, alpha=0.7, seed=11),
    "uniform": lambda: uniform_random_graph(4000, 32000, seed=11),
}


@pytest.mark.parametrize("family", list(GRAPHS))
def test_bench_greedy_vertex_cut(benchmark, family):
    graph = GRAPHS[family]()
    cut = benchmark(greedy_vertex_cut, graph, PARTS)
    assert sum(cut.edge_counts()) == graph.num_edges


@pytest.mark.parametrize("family", list(GRAPHS))
def test_bench_hash_edge_cut(benchmark, family):
    graph = GRAPHS[family]()
    assignment = benchmark(hash_partition, graph.num_vertices, PARTS)
    assert len(assignment) == graph.num_vertices


def test_partitioning_quality_table(benchmark, output_dir):
    """The qualitative result: greedy vertex-cut wins on power-law."""
    def measure_quality():
        rows = []
        quality = {}
        for family, build in GRAPHS.items():
            graph = build()
            hash_assign = hash_partition(graph.num_vertices, PARTS)
            greedy = greedy_vertex_cut(graph, PARTS)
            rand = random_vertex_cut(graph, PARTS)
            quality[family] = {
                "cut_fraction": edge_cut_fraction(graph, hash_assign),
                "edge_balance": edge_balance(graph, hash_assign, PARTS),
                "greedy_rf": replication_factor(greedy),
                "random_rf": replication_factor(rand),
            }
            rows.append((
                family,
                f"{quality[family]['cut_fraction'] * 100:.1f}%",
                f"{quality[family]['edge_balance']:.2f}",
                f"{quality[family]['greedy_rf']:.2f}",
                f"{quality[family]['random_rf']:.2f}",
            ))
        return rows, quality

    rows, quality = benchmark.pedantic(measure_quality, rounds=1,
                                       iterations=1)
    text = table(
        ("Graph", "hash cut frac", "hash edge balance",
         "greedy vertex-cut RF", "random vertex-cut RF"),
        rows,
    )
    print()
    print(text)
    write_artifact(output_dir, "ablation_partitioning.txt", text)

    # Shape assertions (PowerGraph's motivation).
    for family in GRAPHS:
        assert quality[family]["greedy_rf"] < quality[family]["random_rf"]
    # Greedy replicates less on power-law than on uniform graphs.
    assert quality["powerlaw"]["greedy_rf"] <= quality["uniform"]["greedy_rf"]
