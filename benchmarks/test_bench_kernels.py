"""Kernel micro-benchmarks and the scalar-vs-vectorized A/B comparison.

Two artifacts land in ``benchmarks/output/kernel_bench.json``:

* ``kernels`` — per-kernel throughput (vertices+edges processed per
  second) of every vectorized program on both engines at dg100-scaled
  size.  This is the PageRank-Pipeline-style unit of comparison: raw
  kernel rate, independent of the Granula analysis stages.
* ``fixtures`` — warm A/B wall-clock of the paper's dg1000-scaled BFS
  session fixtures in ``scalar`` vs ``auto`` engine mode, next to the
  pre-optimization cold baselines, with the speedup the fast path must
  sustain (>= 5x) asserted so regressions fail the build.

"Warm" means the shared, mode-independent preparation — dataset
generation, deployment, and the greedy vertex cut — is done before the
clock starts, so the measured interval isolates the execution path the
engine mode actually selects.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.experiments.common import GIRAPH_BFS, POWERGRAPH_BFS
from repro.graph.partition.vertexcut import greedy_vertex_cut
from repro.workloads.datasets import build_dataset
from repro.workloads.runner import WorkloadRunner
from repro.workloads.spec import WorkloadSpec

#: Cold full-fixture wall-clock on the pre-optimization scalar engines,
#: measured at the commit before this backend landed.
BASELINE_COLD_S = {"Giraph": 6.29, "PowerGraph": 12.94}

#: The speedup the vectorized path must sustain on the session fixtures.
MIN_SPEEDUP = 5.0

_ARTIFACT = "kernel_bench.json"


def _update_artifact(output_dir, section, payload):
    path = output_dir / _ARTIFACT
    doc = json.loads(path.read_text()) if path.exists() else {}
    doc[section] = payload
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def _prepared_runner(mode, spec):
    """A runner with all mode-independent preparation already done."""
    runner = WorkloadRunner(engine_mode=mode)
    platform = runner.platform(spec.platform)
    graph = build_dataset(spec.dataset)
    if not platform.has_dataset(spec.dataset):
        platform.deploy_dataset(spec.dataset, graph)
    if spec.platform == "PowerGraph":
        key = (spec.dataset, spec.workers, platform.ingress)
        platform._cut_cache[key] = greedy_vertex_cut(graph, spec.workers)
    return runner


def _timed_run(runner, spec):
    t0 = time.perf_counter()
    iteration = runner.run(spec, fresh=True)
    return time.perf_counter() - t0, iteration


def test_bench_kernel_throughput(output_dir):
    """Vertices+edges per second of each vectorized kernel, both engines."""
    graph = build_dataset("dg100-scaled")
    rows = {}
    for platform_name in ("Giraph", "PowerGraph"):
        for algo in ("bfs", "pagerank", "wcc", "sssp", "cdlp"):
            spec = WorkloadSpec(platform_name, algo, "dg100-scaled",
                                workers=8)
            runner = _prepared_runner("vectorized", spec)
            best = min(_timed_run(runner, spec)[0] for _ in range(2))
            _, iteration = _timed_run(runner, spec)
            stats = iteration.run.result.stats
            iters = stats.get("supersteps", stats.get("iterations", 1))
            work = (graph.num_vertices + graph.num_edges) * max(iters, 1)
            rows[f"{platform_name}/{algo}"] = {
                "seconds": round(best, 4),
                "iterations": iters,
                "vertices": graph.num_vertices,
                "edges": graph.num_edges,
                "vertex_edge_per_s": round(work / best),
            }
            assert best > 0
    _update_artifact(output_dir, "kernels", rows)


@pytest.mark.parametrize("spec", [GIRAPH_BFS, POWERGRAPH_BFS],
                         ids=["Giraph", "PowerGraph"])
def test_bench_fixture_speedup(output_dir, spec):
    """The dg1000-scaled BFS fixtures are >= 5x faster in auto mode."""
    timings = {}
    for mode in ("scalar", "auto"):
        runner = _prepared_runner(mode, spec)
        timings[mode] = min(_timed_run(runner, spec)[0] for _ in range(2))
    speedup = timings["scalar"] / timings["auto"]
    _update_artifact(output_dir, f"fixtures/{spec.platform}", {
        "workload": spec.label(),
        "before_cold_scalar_s": BASELINE_COLD_S[spec.platform],
        "warm_scalar_s": round(timings["scalar"], 3),
        "warm_auto_s": round(timings["auto"], 3),
        "speedup": round(speedup, 2),
        "min_required_speedup": MIN_SPEEDUP,
    })
    assert speedup >= MIN_SPEEDUP, (
        f"{spec.platform} fixture only {speedup:.2f}x faster in auto mode"
    )
