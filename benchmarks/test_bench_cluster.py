"""Cluster tier benchmark: routing overhead and failover recovery.

Measures the two numbers the sharded tier's robustness envelope is
tuned around:

- **routed-read latency** — p50/p99 of per-job GETs through the full
  front-router → loopback-HTTP → shard-worker path, against the same
  requests served by a single in-process service (the routing tax);
- **failover recovery** — wall-clock from SIGKILLing a shard worker to
  its keyspace answering 200 again (detect + backoff + respawn + WAL
  replay).

Writes ``benchmarks/output/cluster_bench.json``.  The floors are
deliberately loose (forked processes on shared CI runners); the
artifact is the signal, the assertions only catch collapse.

``GRANULA_BENCH_SMALL=1`` shrinks the read burst for CI smoke runs.
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.error
import urllib.request

from repro.core.archive.serialize import archive_to_json
from repro.core.archive.store import ArchiveStore
from repro.service.app import ArchiveService
from repro.service.cluster import create_cluster

from benchmarks.test_bench_serve import _make_archive

#: Collapse floors, not targets.
MAX_P99_ROUTED_READ_MS = 500.0
MAX_RECOVERY_S = 30.0


def small_mode() -> bool:
    return os.environ.get("GRANULA_BENCH_SMALL", "") not in ("", "0")


def _percentile(sorted_values, fraction: float) -> float:
    index = min(len(sorted_values) - 1,
                int(len(sorted_values) * fraction))
    return sorted_values[index]


def _get(url: str) -> int:
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            response.read()
            return response.status
    except urllib.error.HTTPError as exc:
        exc.read()
        return exc.code


def test_bench_cluster(tmp_path, output_dir):
    jobs = 12 if small_mode() else 40
    reads = 80 if small_mode() else 400
    supersteps = 4 if small_mode() else 8
    workers = 4 if small_mode() else 8
    shard_count = 3

    archives = [
        _make_archive(f"cbench-{i:03d}", supersteps, workers)
        for i in range(jobs)
    ]

    # Baseline: the identical reads through one in-process service —
    # no router, no HTTP hop, no process boundary.
    baseline_store = ArchiveStore(tmp_path / "baseline")
    for archive in archives:
        baseline_store.save(archive)
    baseline = ArchiveService(baseline_store)
    baseline_latencies = []
    for i in range(reads):
        job_id = f"cbench-{i % jobs:03d}"
        started = time.perf_counter()
        response = baseline.handle(f"/jobs/{job_id}")
        baseline_latencies.append(time.perf_counter() - started)
        assert response.status == 200

    dirs = [tmp_path / f"shard-{i}" for i in range(shard_count)]
    server = create_cluster(dirs, port=0, probe_interval=0.1)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    try:
        base = server.url
        ring = server.service.ring
        # Pre-place archives on their owner shards directly (the write
        # path is ingest's benchmark, not this one), then let the
        # workers see them on their next refresh.
        for archive in archives:
            owner = ring.shard_for(archive.job_id)
            ArchiveStore(dirs[owner]).save(archive, overwrite=True)

        routed_latencies = []
        for i in range(reads):
            job_id = f"cbench-{i % jobs:03d}"
            started = time.perf_counter()
            status = _get(f"{base}/jobs/{job_id}")
            routed_latencies.append(time.perf_counter() - started)
            assert status == 200, (job_id, status)

        # Failover: SIGKILL the owner of one keyspace and clock the
        # outage as its clients would see it.
        victim_job = f"cbench-{jobs // 2:03d}"
        victim = ring.shard_for(victim_job)
        server.supervisor.kill_worker(victim)
        outage_started = time.perf_counter()
        deadline = time.monotonic() + MAX_RECOVERY_S + 30.0
        saw_outage = False
        recovery_s = None
        while time.monotonic() < deadline:
            status = _get(f"{base}/jobs/{victim_job}")
            if status == 503:
                saw_outage = True
            elif status == 200 and saw_outage:
                recovery_s = time.perf_counter() - outage_started
                break
            elif status == 200 and \
                    time.perf_counter() - outage_started > 0.05:
                # Recovered between our polls — count what we saw.
                recovery_s = time.perf_counter() - outage_started
                break
            time.sleep(0.01)
        assert recovery_s is not None, "shard never recovered"
    finally:
        server.shutdown()
        server.server_close()
        server.supervisor.stop()

    baseline_latencies.sort()
    routed_latencies.sort()
    document = {
        "small_mode": small_mode(),
        "shards": shard_count,
        "jobs": jobs,
        "reads": reads,
        "baseline_read_ms": {
            "p50": round(_percentile(baseline_latencies, 0.5) * 1e3, 3),
            "p99": round(_percentile(baseline_latencies, 0.99) * 1e3, 3),
        },
        "routed_read_ms": {
            "p50": round(_percentile(routed_latencies, 0.5) * 1e3, 3),
            "p99": round(_percentile(routed_latencies, 0.99) * 1e3, 3),
        },
        "routing_overhead_p50_ms": round(
            (_percentile(routed_latencies, 0.5)
             - _percentile(baseline_latencies, 0.5)) * 1e3, 3),
        "failover": {
            "victim_shard": victim,
            "recovery_s": round(recovery_s, 3),
        },
    }
    (output_dir / "cluster_bench.json").write_text(
        json.dumps(document, indent=2) + "\n"
    )

    assert document["routed_read_ms"]["p99"] <= \
        MAX_P99_ROUTED_READ_MS, document
    assert recovery_s <= MAX_RECOVERY_S, document
