"""Archive query service benchmark: cold vs warm (checksum-keyed cache).

Drives the transport-independent service layer with a realistic request
mix against a store of mid-size archives, three ways:

- **cold** — cache disabled: every request re-parses the JSON and
  rebuilds the operation tree (the pre-cache behaviour);
- **warm** — LRU cache keyed by payload checksum, pre-warmed;
- **conditional** — repeated ``If-None-Match`` revalidations answered
  with 304s (no parse, no render, no body).

Writes ``benchmarks/output/serve_bench.json`` and asserts the warm
path clears the issue's >=2x throughput floor over cold.

``GRANULA_BENCH_SMALL=1`` shrinks the store for CI smoke runs.
"""

from __future__ import annotations

import json
import os
import time

from repro.core.archive.archive import ArchivedOperation, PerformanceArchive
from repro.core.archive.store import ArchiveStore
from repro.service.app import ArchiveService

#: Issue acceptance floor: warm (cached) throughput over cold.
WARM_OVER_COLD_X = 2.0
#: Revalidation must beat even the warm path — it renders nothing.
CONDITIONAL_OVER_COLD_X = 2.0


def small_mode() -> bool:
    return os.environ.get("GRANULA_BENCH_SMALL", "") not in ("", "0")


def _make_archive(job_id: str, supersteps: int, workers: int) -> PerformanceArchive:
    """A Giraph-shaped archive with supersteps x workers compute ops."""
    makespan = 4.0 + 2.0 * supersteps
    root = ArchivedOperation(f"{job_id}:root", "Job", "Client",
                             0.0, makespan)
    process = ArchivedOperation(f"{job_id}:process", "ProcessGraph",
                                "Master", 4.0, makespan, parent=root)
    root.children.append(process)
    for k in range(supersteps):
        step = ArchivedOperation(
            f"{job_id}:s{k}", f"Superstep-{k}", "Master",
            4.0 + 2.0 * k, 6.0 + 2.0 * k, infos={"Duration": 2.0},
            parent=process,
        )
        process.children.append(step)
        for w in range(workers):
            compute = ArchivedOperation(
                f"{job_id}:s{k}w{w}", f"Compute-{k}", f"Worker-{w + 1}",
                4.0 + 2.0 * k, 5.5 + 2.0 * k,
                infos={"Duration": 1.5, "MessagesSent": 10 * (w + 1)},
                parent=step,
            )
            step.children.append(compute)
    return PerformanceArchive(
        job_id, root, platform="Giraph",
        metadata={"algorithm": "bfs", "dataset": "dg-bench"},
    )


def _build_store(directory) -> ArchiveStore:
    jobs = 4 if small_mode() else 6
    supersteps = 8 if small_mode() else 16
    workers = 16 if small_mode() else 48
    store = ArchiveStore(directory)
    for i in range(jobs):
        store.save(_make_archive(f"bench-{i}", supersteps, workers))
    return store


def _request_mix(store: ArchiveStore):
    mix = []
    for job_id in store.list():
        mix.extend([
            (f"/jobs/{job_id}/query",
             {"mission": "Compute", "agg": "total"}),
            (f"/jobs/{job_id}/query",
             {"path": "Job/**/Compute-*", "agg": "mean"}),
            (f"/jobs/{job_id}/query",
             {"agg": "top", "metric": "MessagesSent", "n": "3"}),
            (f"/jobs/{job_id}", {}),
        ])
    return mix


def _run_mix(service: ArchiveService, mix, rounds: int,
             headers=None) -> float:
    """Requests per second over ``rounds`` passes of the mix."""
    started = time.perf_counter()
    handled = 0
    for _ in range(rounds):
        for path, params in mix:
            response = service.handle(path, params, headers)
            assert response.status in (200, 304), response.text
            handled += 1
    elapsed = time.perf_counter() - started
    return handled / elapsed


def test_bench_serve(tmp_path, output_dir):
    store = _build_store(tmp_path / "store")
    mix = _request_mix(store)
    rounds = 3 if small_mode() else 5

    cold_service = ArchiveService(store, cache_size=0)
    cold_rps = _run_mix(cold_service, mix, rounds)

    warm_service = ArchiveService(store, cache_size=64)
    _run_mix(warm_service, mix, 1)  # fill the cache
    warm_rps = _run_mix(warm_service, mix, rounds)

    # Conditional pass: revalidate every URL with its own ETag.
    etags = {
        (path, tuple(sorted(params.items()))):
            warm_service.handle(path, params).headers["ETag"]
        for path, params in mix
    }
    started = time.perf_counter()
    for _ in range(rounds):
        for path, params in mix:
            etag = etags[(path, tuple(sorted(params.items())))]
            response = warm_service.handle(
                path, params, {"If-None-Match": etag}
            )
            assert response.status == 304, response.text
    conditional_rps = (rounds * len(mix)) / (time.perf_counter() - started)

    document = {
        "small_mode": small_mode(),
        "store": {
            "jobs": len(store),
            "operations_per_archive":
                store.summary(store.list()[0])["operations"],
        },
        "requests_per_pass": len(mix),
        "rounds": rounds,
        "throughput_rps": {
            "cold": round(cold_rps, 1),
            "warm": round(warm_rps, 1),
            "conditional_304": round(conditional_rps, 1),
        },
        "speedup": {
            "warm_over_cold": round(warm_rps / cold_rps, 2),
            "conditional_over_cold": round(conditional_rps / cold_rps, 2),
        },
        "cache": warm_service.cache.stats(),
    }
    (output_dir / "serve_bench.json").write_text(
        json.dumps(document, indent=2) + "\n"
    )

    assert warm_service.cache.stats()["hit_rate"] > 0.9, document
    assert warm_rps / cold_rps >= WARM_OVER_COLD_X, document
    assert conditional_rps / cold_rps >= CONDITIONAL_OVER_COLD_X, document
