"""Benchmark + regeneration of Figure 7 (PowerGraph CPU utilization)."""

from benchmarks.conftest import write_artifact
from repro.core.visualize.utilization import compute_utilization
from repro.experiments.fig7_powergraph_cpu import run_fig7


def test_bench_fig7_chart(benchmark, powergraph_iteration):
    chart = benchmark(compute_utilization, powergraph_iteration.archive)
    assert chart.peak > 0


def test_bench_fig7_artifact(benchmark, runner, powergraph_iteration,
                             output_dir):
    result = benchmark(run_fig7, runner)
    assert result.all_checks_pass, [c for c in result.checks if not c[1]]
    print()
    print(result.text)
    write_artifact(output_dir, "fig7.txt", result.text)
    write_artifact(output_dir, "fig7.svg",
                   powergraph_iteration.utilization.render_svg())
