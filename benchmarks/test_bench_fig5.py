"""Benchmark + regeneration of Figure 5 (domain-level job decomposition).

The platform runs execute once (session fixture); the benchmark measures
the Granula analysis stage that produces the figure — rebuilding the
archive from the raw platform log and computing the decomposition — which
is the work an analyst repeats per job.
"""

from benchmarks.conftest import write_artifact
from repro.core.archive.builder import build_archive
from repro.core.model.giraph_model import giraph_model
from repro.core.visualize.breakdown import compute_breakdown
from repro.experiments.fig5_decomposition import run_fig5


def test_bench_fig5_analysis(benchmark, giraph_iteration, output_dir):
    """Archive build + decomposition of the Giraph run (per-job cost)."""
    model = giraph_model()
    run = giraph_iteration.run

    def analyze():
        archive, _report = build_archive(run, model)
        return compute_breakdown(archive)

    breakdown = benchmark(analyze)
    assert breakdown.total > 0


def test_bench_fig5_artifact(benchmark, runner, giraph_iteration,
                             powergraph_iteration, output_dir):
    """Full Figure 5 regeneration (both platforms, memoized runs)."""
    result = benchmark(run_fig5, runner)
    assert result.all_checks_pass, [c for c in result.checks if not c[1]]
    print()
    print(result.text)
    write_artifact(output_dir, "fig5.txt", result.text)
    write_artifact(output_dir, "fig5_giraph.svg",
                   giraph_iteration.breakdown.render_svg())
    write_artifact(output_dir, "fig5_powergraph.svg",
                   powergraph_iteration.breakdown.render_svg())
    # The paper's combined layout: both bars in one figure.
    from repro.core.visualize.compare import render_side_by_side_svg
    write_artifact(output_dir, "fig5_combined.svg", render_side_by_side_svg([
        giraph_iteration.breakdown, powergraph_iteration.breakdown,
    ]))
