"""End-to-end engine benchmarks: one full monitored job per platform.

Measures the wall-clock cost of the whole pipeline (engine execution,
log emission, parsing, archiving, visualization) at dg100-scaled size —
the practical per-job cost of a Granula evaluation iteration.
"""

import pytest

from repro.workloads.runner import WorkloadRunner
from repro.workloads.spec import WorkloadSpec


@pytest.mark.parametrize("platform", ["Giraph", "PowerGraph"])
def test_bench_full_pipeline(benchmark, platform):
    runner = WorkloadRunner()
    spec = WorkloadSpec(platform, "bfs", "dg100-scaled", workers=8)

    def one_iteration():
        return runner.run(spec, fresh=True)

    iteration = benchmark.pedantic(one_iteration, rounds=3, iterations=1,
                                   warmup_rounds=1)
    assert iteration.breakdown.total > 0
    assert iteration.report.unmodeled == []
