"""Benchmark + regeneration of the four-platform comparison."""

import pytest

from benchmarks.conftest import write_artifact
from repro.experiments.ext_cross_platform import PGXD_BFS, run_cross_platform
from repro.experiments.ext_hadoop_baseline import HADOOP_BFS


@pytest.fixture(scope="session")
def all_platform_runs(runner, giraph_iteration, powergraph_iteration):
    """Ensure all four dg1000-scaled runs exist (executed once each)."""
    runner.run(HADOOP_BFS)
    runner.run(PGXD_BFS)


def test_bench_ext_cross_platform(benchmark, runner, all_platform_runs,
                                  output_dir):
    result = benchmark(run_cross_platform, runner)
    assert result.all_checks_pass, [c for c in result.checks if not c[1]]
    print()
    print(result.text)
    write_artifact(output_dir, "ext_cross_platform.txt", result.text)
