"""Benchmark + regeneration of Figure 4 (the Giraph performance model)."""

from benchmarks.conftest import write_artifact
from repro.experiments.fig4_model import run_fig4


def test_bench_fig4(benchmark, output_dir):
    result = benchmark(run_fig4)
    assert result.all_checks_pass, result.checks
    print()
    print(result.text)
    write_artifact(output_dir, "fig4.txt", result.text)
