"""Write-path benchmark: submit (202 ack) latency and drain throughput.

Measures the two numbers the ingestion tier's robustness envelope is
tuned around:

- **submit latency** — the cost of a durable 202: envelope framing plus
  an fsync'd WAL append (p50/p99 over a burst);
- **drain throughput** — how fast the background worker moves records
  from the WAL into the archive store (records/s until zero lag).

Writes ``benchmarks/output/ingest_bench.json``.  The floors are
deliberately loose (CI shared runners have wild fsync variance); the
artifact is the signal, the assertions only catch collapse.

``GRANULA_BENCH_SMALL=1`` shrinks the burst for CI smoke runs.
"""

from __future__ import annotations

import json
import os
import time

from repro.core.archive.serialize import archive_to_json
from repro.core.archive.store import ArchiveStore
from repro.service.ingest import IngestPipeline

from benchmarks.test_bench_serve import _make_archive

#: Collapse floors, not targets: a durable ack must stay interactive,
#: and the drain must beat one record per second even on sad disks.
MAX_P99_SUBMIT_MS = 250.0
MIN_DRAIN_RPS = 1.0


def small_mode() -> bool:
    return os.environ.get("GRANULA_BENCH_SMALL", "") not in ("", "0")


def _percentile(sorted_values, fraction: float) -> float:
    index = min(len(sorted_values) - 1,
                int(len(sorted_values) * fraction))
    return sorted_values[index]


def test_bench_ingest(tmp_path, output_dir):
    jobs = 20 if small_mode() else 100
    supersteps = 4 if small_mode() else 8
    workers = 8 if small_mode() else 16

    ArchiveStore(tmp_path / "store")  # Create the served directory.
    payloads = [
        archive_to_json(
            _make_archive(f"ingest-{i:03d}", supersteps, workers)
        ).encode("utf-8")
        for i in range(jobs)
    ]

    pipeline = IngestPipeline(tmp_path / "store", capacity=jobs + 1)
    try:
        # Phase 1: the whole burst becomes durable before the worker
        # starts, so submit latency is measured without drain noise.
        submit_latencies = []
        for payload in payloads:
            started = time.perf_counter()
            pipeline.submit(payload)
            submit_latencies.append(time.perf_counter() - started)
        assert pipeline.wal.lag() == jobs

        # Phase 2: start the worker and time the drain to zero lag.
        drain_started = time.perf_counter()
        pipeline.start()
        deadline = time.monotonic() + 300.0
        while time.monotonic() < deadline and pipeline.wal.lag():
            time.sleep(0.005)
        drain_elapsed = time.perf_counter() - drain_started
        assert pipeline.wal.lag() == 0, pipeline.stats()
        counters = pipeline.stats()["counters"]
        assert counters["ingested"] == jobs, counters
    finally:
        pipeline.drain_and_stop(timeout=30.0)

    submit_latencies.sort()
    submit_p50_ms = _percentile(submit_latencies, 0.50) * 1000.0
    submit_p99_ms = _percentile(submit_latencies, 0.99) * 1000.0
    drain_rps = jobs / drain_elapsed

    store = ArchiveStore(tmp_path / "store")
    document = {
        "small_mode": small_mode(),
        "jobs": jobs,
        "payload_bytes": {
            "min": min(len(p) for p in payloads),
            "max": max(len(p) for p in payloads),
        },
        "submit_ms": {
            "p50": round(submit_p50_ms, 3),
            "p99": round(submit_p99_ms, 3),
            "max": round(submit_latencies[-1] * 1000.0, 3),
        },
        "drain": {
            "elapsed_s": round(drain_elapsed, 3),
            "records_per_s": round(drain_rps, 1),
        },
        "stored_jobs": len(store),
    }
    (output_dir / "ingest_bench.json").write_text(
        json.dumps(document, indent=2) + "\n"
    )

    assert len(store) == jobs, document
    assert submit_p99_ms <= MAX_P99_SUBMIT_MS, document
    assert drain_rps >= MIN_DRAIN_RPS, document
