"""Pipeline benchmark: generate→run→ingest→archive→analyze end to end.

Times the experiment suite's run matrix serially against a cold
artifact cache and again with a warm cache fanned out over worker
processes, plus the monitoring→archive ingest stage alone (legacy
per-record path vs streaming columnar path).  Writes
``benchmarks/output/pipeline_bench.json`` as the trajectory artifact
and asserts the accelerators actually pay off.

``GRANULA_BENCH_SMALL=1`` shrinks the matrix for CI smoke runs (and
relaxes the speedup floors — the dg100 matrix is too small to amortize
process fan-out).  ``GRANULA_BENCH_JOBS`` overrides the worker count
(default 4).
"""

from __future__ import annotations

import os

from repro.experiments.pipeline_bench import (
    run_pipeline_bench,
    small_mode,
    write_pipeline_bench,
)

#: Full-matrix speedup floors from the issue's acceptance criteria.
FULL_END_TO_END_X = 3.0
FULL_INGEST_X = 2.0

#: Smoke-matrix floors: the accelerators must still win, just not by
#: the full-matrix margin.
SMALL_END_TO_END_X = 1.2
SMALL_INGEST_X = 1.3

#: Warm archive queries through the mmap'd ``.gcol`` sidecar must beat
#: JSON tree materialization by at least 2x (both matrix sizes — the
#: ratio does not depend on the run matrix).
COLUMNAR_QUERY_X = 2.0

#: Doubling the fan-out workers must grow the dataset's physical
#: residency sublinearly.  Perfect sharing lands at 1.2 (each of W
#: workers owns 1/(W+1) of the pages, the parent the rest); a private
#: copy per worker lands at 2.0.
FANOUT_SHM_PSS_RATIO = 1.5


def test_bench_pipeline(output_dir):
    jobs = int(os.environ.get("GRANULA_BENCH_JOBS", "4"))
    document = run_pipeline_bench(jobs=jobs)
    write_pipeline_bench(output_dir / "pipeline_bench.json", document)

    assert document["byte_identical_archives"], (
        "parallel/warm archives diverged from the serial cold run"
    )
    assert document["ingest_archive"]["identical_archives"], (
        "streaming ingest produced a different archive than the "
        "legacy path"
    )
    end_to_end_floor = (
        SMALL_END_TO_END_X if small_mode() else FULL_END_TO_END_X
    )
    ingest_floor = SMALL_INGEST_X if small_mode() else FULL_INGEST_X
    assert document["end_to_end"]["speedup"] >= end_to_end_floor, document
    assert document["ingest_archive"]["speedup"] >= ingest_floor, document

    columnar = document["columnar_query"]
    assert "skipped" not in columnar, columnar
    assert columnar["identical_results"], (
        "the .gcol view answered the query battery differently than "
        "the materialized tree"
    )
    assert columnar["speedup"] >= COLUMNAR_QUERY_X, document

    fanout = document["fanout_rss"]
    if "skipped" not in fanout:  # fork + /proc/self/smaps only
        assert fanout["shm_pss_ratio_4v2"] <= FANOUT_SHM_PSS_RATIO, document
