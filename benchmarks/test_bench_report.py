"""Benchmark + regeneration of the full HTML performance report."""

from benchmarks.conftest import write_artifact
from repro.core.visualize.render_html import render_report_html


def test_bench_report_html(benchmark, giraph_iteration,
                           powergraph_iteration, output_dir):
    archives = [giraph_iteration.archive, powergraph_iteration.archive]

    html = benchmark(render_report_html, archives,
                     "Granula reproduction — dg1000-scaled BFS")
    assert html.startswith("<!DOCTYPE html>")
    assert "<svg" in html
    write_artifact(output_dir, "report.html", html)
