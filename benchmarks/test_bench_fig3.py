"""Benchmark + regeneration of Figure 3 (job phase breakdown)."""

from benchmarks.conftest import write_artifact
from repro.experiments.fig3_breakdown import run_fig3


def test_bench_fig3(benchmark, output_dir):
    result = benchmark(run_fig3)
    assert result.all_checks_pass, result.checks
    print()
    print(result.text)
    write_artifact(output_dir, "fig3.txt", result.text)
