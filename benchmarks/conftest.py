"""Benchmark fixtures.

The two dg1000-scaled platform runs (the paper's experiment) execute once
per session; the per-figure benchmarks then measure the Granula analysis
stages (archiving, decomposition, chart computation, rendering) against
those shared runs, and write every regenerated artifact under
``benchmarks/output/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.common import GIRAPH_BFS, POWERGRAPH_BFS
from repro.workloads.runner import WorkloadRunner

#: Where regenerated artifacts (text + SVG) land.
OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def runner() -> WorkloadRunner:
    return WorkloadRunner()


@pytest.fixture(scope="session")
def giraph_iteration(runner):
    """The paper's Giraph BFS run on dg1000-scaled (executed once)."""
    return runner.run(GIRAPH_BFS)


@pytest.fixture(scope="session")
def powergraph_iteration(runner):
    """The paper's PowerGraph BFS run on dg1000-scaled (executed once)."""
    return runner.run(POWERGRAPH_BFS)


def write_artifact(output_dir: Path, name: str, text: str) -> None:
    """Persist one regenerated artifact."""
    (output_dir / name).write_text(text)
