"""Ablation: sequential vs parallel data loading.

Figure 7's diagnosis is that PowerGraph's sequential single-rank loading
"is not a good fit for the distributed execution environment".  This
bench quantifies what parallel loading would buy: the simulated LoadGraph
time of the sequential path versus a hypothetical parallel path (every
rank streams and parses 1/N of the file), across dataset scales.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.cluster.filesystem import SharedFileSystem
from repro.core.visualize.render_text import table
from repro.graph.edgelist import EdgeList
from repro.graph.generators.datagen import datagen_graph
from repro.graph.partition.vertexcut import greedy_vertex_cut
from repro.platforms.costmodel import PowerGraphCostModel
from repro.platforms.gas.loader import plan_sequential_load
from repro.cluster.network import das5_network

RANKS = 8
SCALES = {"dg10-like": 1_000, "dg100-like": 10_000, "dg300-like": 30_000}


def _load_plans(num_vertices):
    graph = datagen_graph(num_vertices, avg_degree=8, seed=3)
    edge_list = EdgeList.from_graph(graph)
    shared = SharedFileSystem()
    shared.put("/g.el", edge_list.text_size_bytes(), payload=edge_list)
    cost = PowerGraphCostModel()
    cut = greedy_vertex_cut(graph, RANKS)
    plan = plan_sequential_load(shared, "/g.el", edge_list, cut,
                                das5_network(), cost)
    sequential = plan.stream_s + max(plan.finalize_s)
    # Hypothetical parallel path: each rank streams 1/RANKS of the file
    # (with shared-FS contention) and parses its share.
    read_s = shared.contended_read_time("/g.el", RANKS) / RANKS
    parse_s = (edge_list.num_edges / RANKS) * cost.parse_edge_s
    parallel = read_s + parse_s + max(plan.finalize_s)
    return sequential, parallel


@pytest.mark.parametrize("scale", list(SCALES))
def test_bench_sequential_load_plan(benchmark, scale):
    num_vertices = SCALES[scale]
    graph = datagen_graph(num_vertices, avg_degree=8, seed=3)
    edge_list = EdgeList.from_graph(graph)
    shared = SharedFileSystem()
    shared.put("/g.el", edge_list.text_size_bytes(), payload=edge_list)
    cost = PowerGraphCostModel()
    cut = greedy_vertex_cut(graph, RANKS)

    plan = benchmark(plan_sequential_load, shared, "/g.el", edge_list,
                     cut, das5_network(), cost)
    assert plan.stream_s > 0


def test_loader_comparison_table(benchmark, output_dir):
    def compare_loaders():
        rows = []
        speedups = []
        for scale, num_vertices in SCALES.items():
            sequential, parallel = _load_plans(num_vertices)
            speedup = sequential / parallel
            speedups.append(speedup)
            rows.append((
                scale, str(num_vertices), f"{sequential:.1f}s",
                f"{parallel:.1f}s", f"{speedup:.1f}x",
            ))
        return rows, speedups

    rows, speedups = benchmark.pedantic(compare_loaders, rounds=1,
                                        iterations=1)
    text = table(
        ("Dataset", "Vertices", "Sequential load", "Parallel load",
         "Speed-up"),
        rows,
    )
    print()
    print(text)
    write_artifact(output_dir, "ablation_loaders.txt", text)

    # Parallel loading wins at every scale; because both paths are
    # parse-dominated the speed-up saturates just below the rank count
    # (shared-FS contention eats the rest).
    assert all(2.0 < s <= RANKS for s in speedups)
    # The absolute time saved grows with dataset size — the Figure 7
    # penalty is size-proportional.
    saved = [seq - par for seq, par in
             (_load_plans(n) for n in SCALES.values())]
    assert saved == sorted(saved)
