"""Benchmark + regeneration of the fault-injection extension experiment.

Writes ``benchmarks/output/ext_faults.txt`` with the recovery-overhead
share per fault type and the diagnosis findings for each scenario.
"""

from benchmarks.conftest import write_artifact
from repro.core.analysis.diagnosis import diagnose, recovery_overhead
from repro.experiments.common import GIRAPH_BFS
from repro.experiments.ext_faults import run_faults
from repro.platforms.faults import (
    ContainerLaunchFailure,
    FaultPlan,
    HdfsReadError,
    LoaderCrash,
    NodeFailure,
    SlowDisk,
    SlowNode,
    WorkerCrash,
)
from repro.workloads.spec import WorkloadSpec


def test_bench_recovery_overhead(benchmark, giraph_iteration):
    """Cost of one recovery-overhead pass over a full (healthy) archive."""
    overhead = benchmark(recovery_overhead, giraph_iteration.archive)
    assert overhead == {"total": 0.0, "share": 0.0}


def test_bench_ext_faults(benchmark, runner, output_dir):
    result = benchmark(run_faults, runner)
    assert result.all_checks_pass, [c for c in result.checks if not c[1]]

    # Overhead share per single fault type, measured in isolation.
    nodes = runner.platform("Giraph").cluster.node_names
    single_faults = [
        ("SlowNode", GIRAPH_BFS, FaultPlan(
            events=(SlowNode(nodes[1], 2.0),))),
        ("SlowDisk", GIRAPH_BFS, FaultPlan(
            events=(SlowDisk(nodes[1], 2.0),))),
        ("ContainerLaunchFailure", GIRAPH_BFS, FaultPlan(
            events=(ContainerLaunchFailure(nodes[2], failures=2),))),
        ("NodeFailure", GIRAPH_BFS, FaultPlan(
            events=(NodeFailure(nodes[4]),))),
        ("HdfsReadError", GIRAPH_BFS, FaultPlan(
            events=(HdfsReadError(nodes[0], blocks=2),))),
        ("WorkerCrash", GIRAPH_BFS, FaultPlan(
            events=(WorkerCrash(worker=1, superstep=2),),
            checkpoint_interval=2)),
    ]
    pg_spec = WorkloadSpec("PowerGraph", "bfs", "dg1000-scaled", workers=8)
    single_faults.append(("LoaderCrash", pg_spec, FaultPlan(
        events=(LoaderCrash(at_fraction=0.5, restart_s=4.0),))))

    lines = [
        "Fault-type overhead on BFS dg1000-scaled (8 nodes):",
        "",
        f"{'fault':<24} {'recovery share':>14} {'findings':>9}",
    ]
    for name, spec, plan in single_faults:
        iteration = runner.run(spec, faults=plan)
        share = recovery_overhead(iteration.archive)["share"]
        findings = diagnose(iteration.archive)
        lines.append(f"{name:<24} {share * 100:>13.2f}% {len(findings):>9}")

    text = result.text + "\n\n" + "\n".join(lines)
    print()
    print(text)
    write_artifact(output_dir, "ext_faults.txt", text)
