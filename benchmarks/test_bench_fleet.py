"""Fleet analytics benchmark: columnar cross-archive scans vs trees.

Builds a synthetic multi-hundred-archive store, runs the fixed fleet
query battery (group-by aggregation with percentiles and top-k, an
info-metric aggregation, a time series, and a regression sweep) through
both scan modes, and asserts the columnar path is both *correct*
(value-identical documents, including on a store with corrupted and
missing sidecars) and *fast* (>=5x over tree materialization on the
full 500-archive fleet).  Writes ``benchmarks/output/fleet_bench.json``
as the trajectory artifact consumed by ``granula bench --suite fleet
--gate``.

``GRANULA_BENCH_SMALL=1`` shrinks the fleet for CI smoke runs (and
relaxes the speedup floor — fewer, colder scans amortize less).
"""

from __future__ import annotations

from repro.experiments.fleet_bench import (
    run_fleet_bench,
    small_mode,
)
from repro.experiments.pipeline_bench import write_pipeline_bench

#: The issue's acceptance floor: columnar fleet scans must beat the
#: tree-materialized reference by at least 5x on the 500-archive store.
FULL_FLEET_SCAN_X = 5.0

#: Smoke-fleet floor: the columnar path must still win clearly.
SMALL_FLEET_SCAN_X = 2.5


def test_bench_fleet(output_dir):
    document = run_fleet_bench()
    write_pipeline_bench(output_dir / "fleet_bench.json", document)

    scan = document["scan"]
    assert scan["identical_results"], (
        "columnar fleet scan answered the battery differently than "
        "the tree-materialized reference"
    )
    assert scan["clean_scan"], (
        "an undamaged store should produce no degraded jobs"
    )

    degraded = document["degraded"]
    assert degraded["reported"] == degraded["jobs"], (
        "damaged sidecars must surface in degraded_jobs"
    )
    assert degraded["identical_results"], (
        "fleet results on a damaged store diverged from the tree "
        "reference"
    )

    floor = SMALL_FLEET_SCAN_X if small_mode() else FULL_FLEET_SCAN_X
    assert scan["speedup"] >= floor, document
