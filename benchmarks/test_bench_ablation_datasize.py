"""Ablation: how the Figure 5 shares move with dataset scale.

The paper's decomposition is a property of one (platform, dataset,
cluster) point.  Sweeping the dataset confirms the mechanism behind it:
setup cost is constant, I/O and processing grow with the data — so
Giraph's setup share *shrinks* as the graph grows while the I/O share
grows toward the paper's 43%.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.core.visualize.render_text import table
from repro.workloads.runner import WorkloadRunner
from repro.workloads.spec import WorkloadSpec
from repro.workloads.sweep import ParameterSweep

DATASETS = ["dg-tiny", "dg100-scaled", "dg300-scaled"]


def test_bench_dataset_scaling(benchmark, output_dir):
    runner = WorkloadRunner()
    sweep = ParameterSweep(runner)
    base = WorkloadSpec("Giraph", "bfs", "dg-tiny", workers=8)

    def run_sweep():
        return sweep.run(base, "dataset", DATASETS)

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    setup_shares = []
    io_shares = []
    for result in results:
        breakdown = result.breakdown
        setup_shares.append(breakdown.phases["Setup"][1])
        io_shares.append(breakdown.phases["Input/output"][1])
        rows.append((
            result.spec.dataset,
            f"{breakdown.total:.1f}s",
            f"{breakdown.phases['Setup'][1] * 100:.1f}%",
            f"{breakdown.phases['Input/output'][1] * 100:.1f}%",
            f"{breakdown.phases['Processing'][1] * 100:.1f}%",
        ))
    text = table(
        ("Dataset", "Total", "Setup share", "I/O share",
         "Processing share"),
        rows,
    )
    print()
    print(text)
    write_artifact(output_dir, "ablation_datasize.txt", text)

    # Setup share falls, I/O share rises with scale.
    assert setup_shares == sorted(setup_shares, reverse=True)
    assert io_shares == sorted(io_shares)
