"""Benchmark + regeneration of the regression-testing workflow.

The CI-gate story end-to-end at benchmark scale: a healthy baseline run,
a degraded candidate (slow node + worker crash), the archive comparison
that catches it, and the diagnosis that names the causes.
"""

from benchmarks.conftest import write_artifact
from repro.core.analysis.diagnosis import diagnose, render_findings
from repro.core.analysis.regression import compare_archives
from repro.core.archive.builder import build_archive
from repro.core.model.giraph_model import giraph_model
from repro.core.monitor.session import MonitoringSession
from repro.platforms.base import JobRequest
from repro.platforms.faults import FaultPlan
from repro.platforms.pregel.engine import GiraphPlatform
from repro.workloads.datasets import build_dataset
from repro.workloads.runner import build_cluster

DATASET = "dg100-scaled"


def test_bench_regression_gate(benchmark, output_dir):
    platform = GiraphPlatform(build_cluster("Giraph"))
    platform.deploy_dataset(DATASET, build_dataset(DATASET))
    session = MonitoringSession(platform)
    model = giraph_model()
    request = JobRequest("bfs", DATASET, 8, params={"source": 0},
                         job_id="baseline")

    baseline, _ = build_archive(session.run(request), model)
    slow_node = platform.cluster.node_names[3]
    platform.inject_faults(FaultPlan(slow_nodes={slow_node: 2.5},
                                     crash_worker=0, crash_superstep=2))
    candidate, _ = build_archive(
        session.run(JobRequest("bfs", DATASET, 8, params={"source": 0},
                               job_id="candidate")),
        model,
    )
    platform.inject_faults(None)

    report = benchmark(compare_archives, baseline, candidate)
    assert not report.ok  # The gate catches the degradation.
    findings = diagnose(candidate)
    kinds = {f.kind for f in findings}
    assert "recovery" in kinds

    text = "\n\n".join([
        report.render_text(top_n=8),
        render_findings([f for f in findings if f.severity == "critical"]),
    ])
    print()
    print(text)
    write_artifact(output_dir, "regression_gate.txt", text)
