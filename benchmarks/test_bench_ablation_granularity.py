"""Ablation: archive cost vs model granularity (the R3 trade-off).

The paper's central knob: "balancing between the investment of effort and
the comprehensiveness of results".  This bench quantifies it — archive
build time and archive size as the Giraph model is truncated from the
domain level (1) down to the full implementation level (4).
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.core.archive.builder import build_archive
from repro.core.model.giraph_model import giraph_model
from repro.core.visualize.render_text import table

LEVELS = [1, 2, 3, 4]


@pytest.mark.parametrize("level", LEVELS)
def test_bench_archive_build_at_level(benchmark, level, giraph_iteration):
    model = giraph_model().truncated(level)
    run = giraph_iteration.run

    archive, _report = benchmark(build_archive, run, model)
    assert archive.size() > 0


def test_granularity_table(benchmark, giraph_iteration, output_dir):
    """Archive size and coverage per model level (the cost curve)."""
    run = giraph_iteration.run

    def build_cost_curve():
        rows = []
        sizes = {}
        for level in LEVELS:
            model = giraph_model().truncated(level)
            archive, report = build_archive(run, model)
            sizes[level] = archive.size()
            rows.append((
                str(level),
                str(model.size()),
                str(archive.size()),
                str(report.operations_filtered),
                str(len(report.unmodeled)),
                str(report.rules_applied),
            ))
        return rows, sizes

    rows, sizes = benchmark(build_cost_curve)
    text = table(
        ("Model level", "Model ops", "Archived ops", "Filtered ops",
         "Unmodeled kinds", "Rules applied"),
        rows,
    )
    print()
    print(text)
    write_artifact(output_dir, "ablation_granularity.txt", text)

    # The cost curve is monotone: deeper models archive more.
    assert sizes[1] < sizes[2] < sizes[3] < sizes[4]
    # The full model leaves nothing unmodeled.
    full_archive, full_report = build_archive(run, giraph_model())
    assert full_report.unmodeled == []
    assert full_archive.size() == sizes[4]
