"""Ablation: platform design options.

Three optional features of the reproduced platforms, each quantified on
the same workloads:

1. PowerGraph sync vs **async** engine — the PowerGraph paper's claim
   that asynchronous execution saves redundant work on convergence-driven
   algorithms (SSSP).
2. PowerGraph **ingress** (greedy vs random edge placement) — replication
   factor drives synchronization cost.
3. Giraph **message combiner** on vs off — sender-side combining cuts
   wire messages and runtime.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.core.visualize.render_text import table
from repro.graph.partition.vertexcut import greedy_vertex_cut
from repro.platforms.base import JobRequest
from repro.platforms.gas.algorithms import make_gas_program
from repro.platforms.gas.async_engine import AsyncGasEngine
from repro.platforms.gas.engine import PowerGraphPlatform
from repro.platforms.gas.sync_engine import SyncGasEngine
from repro.platforms.pregel.engine import GiraphPlatform
from repro.workloads.datasets import build_dataset
from repro.workloads.runner import build_cluster

DATASET = "dg100-scaled"
RANKS = 8


@pytest.fixture(scope="module")
def graph():
    return build_dataset(DATASET)


@pytest.fixture(scope="module")
def cut(graph):
    return greedy_vertex_cut(graph, RANKS)


def test_bench_sync_engine_sssp(benchmark, graph, cut):
    def run_sync():
        program = make_gas_program("sssp", {"source": 0}, graph)
        engine = SyncGasEngine(graph, cut, program)
        history = engine.run()
        return sum(sum(w.apply_vertices) for w in history)

    applies = benchmark.pedantic(run_sync, rounds=2, iterations=1)
    assert applies > 0


def test_bench_async_engine_sssp(benchmark, graph, cut):
    def run_async():
        program = make_gas_program("sssp", {"source": 0}, graph)
        engine = AsyncGasEngine(graph, cut, program)
        return engine.run().applies

    applies = benchmark.pedantic(run_async, rounds=2, iterations=1)
    assert applies > 0


def test_sync_vs_async_table(benchmark, graph, cut, output_dir):
    def compare_engines():
        rows = []
        savings = {}
        for algorithm in ("bfs", "sssp", "wcc"):
            params = {"source": 0} if algorithm in ("bfs", "sssp") else {}
            sync_engine = SyncGasEngine(
                graph, cut, make_gas_program(algorithm, params, graph))
            history = sync_engine.run()
            sync_applies = sum(sum(w.apply_vertices) for w in history)
            async_engine = AsyncGasEngine(
                graph, cut, make_gas_program(algorithm, params, graph))
            stats = async_engine.run()
            assert async_engine.output() == sync_engine.output()
            savings[algorithm] = sync_applies / stats.applies
            rows.append((
                algorithm, str(len(history)), str(sync_applies),
                str(stats.applies), f"{savings[algorithm]:.2f}x",
            ))
        return rows, savings

    rows, savings = benchmark.pedantic(compare_engines, rounds=1,
                                       iterations=1)
    text = table(
        ("Algorithm", "Sync iterations", "Sync applies", "Async applies",
         "Work ratio"),
        rows,
    )
    print()
    print(text)
    write_artifact(output_dir, "ablation_sync_async.txt", text)
    # The headline claim holds where it should: SSSP re-applies settled
    # vertices every synchronous round; async touches each mostly once.
    assert savings["sssp"] > 1.0


def test_ingress_comparison(benchmark, graph, output_dir):
    def compare_ingress():
        rows = []
        rf = {}
        for ingress in ("greedy", "random"):
            platform = PowerGraphPlatform(build_cluster("PowerGraph"),
                                          ingress=ingress)
            platform.deploy_dataset(DATASET, graph)
            result = platform.run_job(JobRequest(
                "bfs", DATASET, RANKS, params={"source": 0}))
            rf[ingress] = result.stats["replication_factor"]
            rows.append((
                ingress, f"{rf[ingress]:.2f}",
                f"{result.makespan:.1f}s",
                str(result.stats["iterations"]),
            ))
        return rows, rf

    rows, rf = benchmark.pedantic(compare_ingress, rounds=1, iterations=1)
    text = table(("Ingress", "Replication factor", "Makespan",
                  "Iterations"), rows)
    print()
    print(text)
    write_artifact(output_dir, "ablation_ingress.txt", text)
    assert rf["greedy"] < rf["random"]


def test_combiner_comparison(benchmark, graph, output_dir):
    def compare_combiner():
        platform = GiraphPlatform(build_cluster("Giraph"))
        platform.deploy_dataset(DATASET, graph)
        rows = []
        makespans = {}
        for label, params in (
            ("with combiner", {"source": 0}),
            ("without combiner", {"source": 0, "combiner": False}),
        ):
            result = platform.run_job(JobRequest("bfs", DATASET, 8,
                                                 params=params))
            makespans[label] = result.makespan
            rows.append((
                label, f"{result.makespan:.1f}s",
                str(result.stats["messages"]),
            ))
        return rows, makespans

    rows, makespans = benchmark.pedantic(compare_combiner, rounds=1,
                                         iterations=1)
    text = table(("Configuration", "Makespan", "Logical messages"), rows)
    print()
    print(text)
    write_artifact(output_dir, "ablation_combiner.txt", text)
    assert makespans["without combiner"] >= makespans["with combiner"]
