"""Benchmark + regeneration of Table 1 (platform diversity)."""

from benchmarks.conftest import write_artifact
from repro.experiments.table1_platforms import run_table1


def test_bench_table1(benchmark, output_dir):
    result = benchmark(run_table1)
    assert result.all_checks_pass, result.checks
    print()
    print(result.text)
    write_artifact(output_dir, "table1.txt", result.text)
