"""Ablation: strong scaling of one platform (worker-count sweep).

The trade-off the domain-level decomposition makes visible: processing
and I/O parallelize with more workers, while setup cost is constant (or
slightly growing) — so setup's *share* grows with scale-out, the effect
behind Giraph's 30.9% setup share on 8 nodes in Figure 5.
"""

from benchmarks.conftest import write_artifact
from repro.core.visualize.render_text import table
from repro.workloads.runner import WorkloadRunner
from repro.workloads.spec import WorkloadSpec
from repro.workloads.sweep import ParameterSweep

WORKER_COUNTS = [1, 2, 4, 8]


def test_bench_worker_scaling(benchmark, output_dir):
    runner = WorkloadRunner()
    sweep = ParameterSweep(runner)
    base = WorkloadSpec("Giraph", "bfs", "dg100-scaled", workers=1)

    def run_sweep():
        return sweep.run(base, "workers", WORKER_COUNTS)

    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    rows = []
    processing = {}
    setup = {}
    for result in results:
        breakdown = result.breakdown
        workers = result.spec.workers
        processing[workers] = breakdown.phases["Processing"][0]
        setup[workers] = breakdown.phases["Setup"][0]
        rows.append((
            str(workers),
            f"{breakdown.total:.1f}s",
            f"{setup[workers]:.1f}s",
            f"{breakdown.phases['Input/output'][0]:.1f}s",
            f"{processing[workers]:.1f}s",
            f"{breakdown.phases['Setup'][1] * 100:.1f}%",
        ))
    text = table(
        ("Workers", "Total", "Setup", "I/O", "Processing", "Setup share"),
        rows,
    )
    print()
    print(text)
    write_artifact(output_dir, "ablation_scaling.txt", text)

    # Strong scaling: processing shrinks with workers...
    assert processing[8] < processing[2] < processing[1]
    # ... while setup stays roughly constant, so its share grows.
    assert setup[8] < 1.5 * setup[1]
    share_1 = setup[1] / results[0].breakdown.total
    share_8 = setup[8] / results[-1].breakdown.total
    assert share_8 > share_1
