"""Benchmark + regeneration of Figure 8 (per-worker compute gantt)."""

from benchmarks.conftest import write_artifact
from repro.core.visualize.gantt import compute_gantt
from repro.experiments.fig8_superstep import run_fig8


def test_bench_fig8_gantt(benchmark, giraph_iteration):
    gantt = benchmark(compute_gantt, giraph_iteration.archive)
    assert gantt.spans


def test_bench_fig8_artifact(benchmark, runner, giraph_iteration, output_dir):
    result = benchmark(run_fig8, runner)
    assert result.all_checks_pass, [c for c in result.checks if not c[1]]
    print()
    print(result.text)
    write_artifact(output_dir, "fig8.txt", result.text)
    write_artifact(output_dir, "fig8.svg",
                   giraph_iteration.gantt.render_svg())
