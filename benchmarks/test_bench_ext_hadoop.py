"""Benchmark + regeneration of the Hadoop-baseline extension experiment."""

import pytest

from benchmarks.conftest import write_artifact
from repro.experiments.ext_hadoop_baseline import HADOOP_BFS, run_hadoop_baseline


@pytest.fixture(scope="session")
def hadoop_iteration(runner):
    """The Hadoop BFS run on dg1000-scaled (executed once)."""
    return runner.run(HADOOP_BFS)


def test_bench_ext_hadoop(benchmark, runner, giraph_iteration,
                          hadoop_iteration, output_dir):
    result = benchmark(run_hadoop_baseline, runner)
    assert result.all_checks_pass, [c for c in result.checks if not c[1]]
    print()
    print(result.text)
    write_artifact(output_dir, "ext_hadoop.txt", result.text)
    write_artifact(output_dir, "ext_hadoop_breakdown.svg",
                   hadoop_iteration.breakdown.render_svg())
