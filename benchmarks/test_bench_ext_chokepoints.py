"""Benchmark + regeneration of the choke-point extension experiment."""

from benchmarks.conftest import write_artifact
from repro.core.analysis.chokepoint import find_choke_points
from repro.experiments.ext_chokepoints import run_chokepoints


def test_bench_chokepoint_analysis(benchmark, giraph_iteration):
    """Cost of one choke-point analysis pass over a full archive."""
    points = benchmark(find_choke_points, giraph_iteration.archive)
    assert points


def test_bench_ext_chokepoints(benchmark, runner, output_dir):
    result = benchmark(run_chokepoints, runner)
    assert result.all_checks_pass, [c for c in result.checks if not c[1]]
    print()
    print(result.text)
    write_artifact(output_dir, "ext_chokepoints.txt", result.text)
