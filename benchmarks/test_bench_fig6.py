"""Benchmark + regeneration of Figure 6 (Giraph CPU utilization)."""

from benchmarks.conftest import write_artifact
from repro.core.visualize.utilization import compute_utilization
from repro.experiments.fig6_giraph_cpu import run_fig6


def test_bench_fig6_chart(benchmark, giraph_iteration):
    """Utilization-chart computation from the archived run."""
    chart = benchmark(compute_utilization, giraph_iteration.archive)
    assert chart.peak > 0


def test_bench_fig6_artifact(benchmark, runner, giraph_iteration, output_dir):
    result = benchmark(run_fig6, runner)
    assert result.all_checks_pass, [c for c in result.checks if not c[1]]
    print()
    print(result.text)
    write_artifact(output_dir, "fig6.txt", result.text)
    write_artifact(output_dir, "fig6.svg",
                   giraph_iteration.utilization.render_svg())
